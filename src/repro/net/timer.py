"""Timer-wheel workloads: the insert/cancel-heavy face of the circuit.

The grouped-sorting-queue NIC line of work (PAPERS.md) and Eiffel's
software schedulers stress priority queues with *timer management*
patterns: most entries never fire — they are cancelled (a TCP
retransmission timer dies with its ACK) or pushed back (a flow-expiry
timer resets on every packet) — so insert/cancel churn dominates and
serve-the-minimum is the rare path.  This module runs exactly those
patterns over the sort/retrieve circuit's dynamic-update primitives
(:meth:`~repro.net.hardware_store.HardwareTagStore.remove` /
:meth:`~repro.net.hardware_store.HardwareTagStore.retag`), as the
``python -m repro timer`` workload and the bench ``timer_churn`` phase.

:class:`TimerWheel` adapts a tag store (or a
:class:`~repro.fabric.fabric.ScheduleFabric` — same contract) into a
timer facade: ``arm`` returns a stable token, ``cancel`` and ``reset``
spend it, ``expire_until`` fires due timers in deadline order.  Tokens
survive ``reset`` (the underlying circuit handle changes; the token
mapping absorbs it), which is what a real timer API needs.

Three scenario families, deterministic per seed:

* ``churn`` — uniform arm/cancel/reset/fire mix at a configurable
  cancel ratio; the general stress shape.
* ``retransmit`` — per-connection TCP retransmission timers: armed at
  ``now + RTO`` on send, cancelled by ACK (most of the time), doubled
  (reset to ``now + 2·RTO``) on a lost ACK, fired on a dead peer.
* ``expiry`` — per-flow idle-expiry timers: every packet arrival
  *resets* the flow's timer to ``now + idle_timeout``; only flows that
  go quiet actually fire.  Nearly every operation is a repin.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.engine import resolve_mode
from ..hwsim.errors import ProtocolError
from .hardware_store import HardwareTagStore

PATTERNS = ("churn", "retransmit", "expiry")


class TimerWheel:
    """Timer facade over a tag store's dynamic-update primitives.

    ``backend`` is a
    :class:`~repro.net.hardware_store.HardwareTagStore` or a
    :class:`~repro.fabric.fabric.ScheduleFabric` — anything with the
    store contract (``push``/``remove``/``retag``/``peek_min_exact``/
    ``pop_min``/``__len__``).  The wheel stores its own *token* as the
    backend payload, so a fired entry maps straight back to the timer
    it belonged to; the token is what survives a :meth:`reset` (the
    underlying circuit handle changes, the token mapping absorbs it).
    """

    def __init__(self, backend) -> None:
        self.backend = backend
        #: fabric backends route on an int flow key and carry the token
        #: as opaque payload; plain stores take the token directly
        self._fabric = hasattr(backend, "handle_location")
        if self._fabric and hasattr(backend, "add_relocation_listener"):
            # Rebalancing may migrate live entries between shards; the
            # wheel's token ledger must follow the moved handles.
            backend.add_relocation_listener(self._apply_relocations)
        #: stable token -> current circuit handle (resets re-map it)
        self._handles: Dict[int, int] = {}
        #: token -> timer id, for cancel/fire reporting
        self._ids: Dict[int, object] = {}
        #: token -> effective deadline: the requested one, unless the
        #: store's behind-minimum clamp moved the entry up to the live
        #: minimum's quantum (Section III-A: the circuit serves it FCFS
        #: there instead of strictly first)
        self._effective: Dict[int, float] = {}
        self._next_token = 0
        self.armed = 0
        self.cancelled = 0
        self.repinned = 0
        self.fired = 0
        #: effective deadlines in fire order (the order-check witness)
        self.fired_effective: List[float] = []

    def _apply_relocations(self, relocations: Dict[int, int]) -> None:
        """Remap token handles after a fabric backlog migration."""
        if not relocations:
            return
        for token, handle in self._handles.items():
            moved = relocations.get(handle)
            if moved is not None:
                self._handles[token] = moved

    def _clamp_count(self) -> int:
        if self._fabric:
            return sum(s.clamped_inserts for s in self.backend.stores)
        return self.backend.clamped_inserts

    def _effective_deadline(
        self, requested: float, before: int, handle: int
    ) -> float:
        """Requested deadline, lifted to the head's if the push clamped.

        The clamp target is the *owning circuit's* minimum — on a fabric
        that is the entry's shard head, not the global tournament head.
        The head's own deadline is read from the wheel's effective
        ledger, not its exact tag: a head that was itself clamped sits
        above its requested deadline, and the lift must chain.
        """
        if self._clamp_count() > before:
            if self._fabric:
                shard, _ = self.backend.handle_location(handle)
                head = self.backend.stores[shard].peek_min_exact()
                head_token = head[1][1] if head is not None else None
            else:
                head = self.backend.peek_min_exact()
                head_token = head[1] if head is not None else None
            if head is not None:
                head_deadline = self._effective.get(head_token, head[0])
                return max(requested, head_deadline)
        return requested

    @property
    def pending(self) -> int:
        """Timers currently armed."""
        return len(self._handles)

    def arm(self, deadline: float, timer_id) -> int:
        """Arm a timer; returns a token valid until cancel/fire."""
        token = self._next_token
        before = self._clamp_count()
        if self._fabric:
            # Route on the timer id (keeps one connection/flow's timers
            # shard-local, like the scheduler pins flows), carry the
            # token as payload.
            handle = self.backend.push(deadline, int(timer_id), token)
        else:
            handle = self.backend.push(deadline, token)
        self._next_token += 1
        self._handles[token] = handle
        self._ids[token] = timer_id
        self._effective[token] = self._effective_deadline(
            deadline, before, handle
        )
        self.armed += 1
        return token

    def cancel(self, token: int) -> object:
        """Disarm a pending timer; returns its timer id."""
        try:
            handle = self._handles.pop(token)
        except KeyError:
            raise ProtocolError(
                f"timer token {token} is not armed"
            ) from None
        self.backend.remove(handle)
        self.cancelled += 1
        self._effective.pop(token, None)
        return self._ids.pop(token)

    def reset(self, token: int, new_deadline: float) -> int:
        """Move a pending timer to a new deadline; the token survives."""
        handle = self._handles.get(token)
        if handle is None:
            raise ProtocolError(f"timer token {token} is not armed")
        before = self._clamp_count()
        new_handle = self.backend.retag(handle, new_deadline)
        self._handles[token] = new_handle
        self._effective[token] = self._effective_deadline(
            new_deadline, before, new_handle
        )
        self.repinned += 1
        return token

    def expire_until(self, now: float) -> List[Tuple[float, object]]:
        """Fire every timer with deadline <= ``now``, in deadline order.

        Returns ``(deadline, timer_id)`` pairs; their tokens are spent.
        """
        due: List[Tuple[float, object]] = []
        while len(self.backend):
            head = self.backend.peek_min_exact()
            if head is None or head[0] > now:
                break
            deadline, token = self.backend.pop_min()
            self._handles.pop(token, None)
            self.fired_effective.append(self._effective.pop(token, deadline))
            due.append((deadline, self._ids.pop(token)))
            self.fired += 1
        return due


# ----------------------------------------------------------------------
# scenario drivers (deterministic per seed)


@dataclass
class TimerRun:
    """Telemetry of one timer-workload soak."""

    pattern: str
    events: int
    seed: int
    granularity: float
    mode: str
    shards: int
    armed: int
    cancelled: int
    repinned: int
    fired: int
    pending: int
    cycles: int
    operations: int
    fired_deadlines: List[float] = field(default_factory=list, repr=False)
    monitors: Optional[object] = None
    backend: Optional[object] = None
    live: Optional[Dict] = None
    auditor: Optional[object] = None

    @property
    def served_in_order(self) -> bool:
        """Effective deadlines fired nondecreasing up to one tag quantum.

        The circuit sorts *quantized* tags and serves intra-quantum ties
        FIFO, so effective deadlines (requested, or lifted to the live
        minimum's quantum by the store's behind-minimum clamp) can invert
        by strictly less than one granularity quantum — never more.
        """
        return all(
            earlier - later <= self.granularity
            for earlier, later in zip(
                self.fired_deadlines, self.fired_deadlines[1:]
            )
        )

    @property
    def conserved(self) -> bool:
        """Every armed timer is accounted: fired, cancelled, or pending."""
        return self.armed == self.fired + self.cancelled + self.pending

    def to_document(self) -> Dict:
        document = {
            "workload": {
                "pattern": self.pattern,
                "events": self.events,
                "seed": self.seed,
                "engine": self.mode,
                "shards": self.shards,
            },
            "timers": {
                "armed": self.armed,
                "cancelled": self.cancelled,
                "repinned": self.repinned,
                "fired": self.fired,
                "pending": self.pending,
            },
            "circuit": {
                "cycles": self.cycles,
                "operations": self.operations,
            },
            "checks": {
                "served_in_order": self.served_in_order,
                "conserved": self.conserved,
            },
        }
        if self.monitors is not None:
            document["monitors"] = {
                "checked": self.monitors.checked,
                "ok": self.monitors.ok,
                "violations": [
                    violation.to_dict()
                    for violation in self.monitors.violations
                ],
            }
        if self.live is not None:
            document["live"] = self.live
        if self.auditor is not None:
            document["serve_audit"] = self.auditor.summary()
        return document

    def report(self) -> str:
        lines = [
            f"timer soak: pattern={self.pattern}, {self.events} events, "
            f"seed {self.seed}, "
            f"{self.mode} engine"
            + (f", {self.shards} shards" if self.shards > 1 else ""),
            "",
            f"  armed      {self.armed:>8}",
            f"  cancelled  {self.cancelled:>8}",
            f"  repinned   {self.repinned:>8}",
            f"  fired      {self.fired:>8}",
            f"  pending    {self.pending:>8}",
            "",
            f"  circuit: {self.operations} operations, "
            f"{self.cycles} cycles",
            f"  fired in deadline order: {self.served_in_order}",
            f"  timer conservation: {self.conserved}",
        ]
        if self.monitors is not None:
            lines.append(f"  {self.monitors.summary()}")
        if self.live is not None:
            port = self.live.get("port")
            served_at = f" on port {port}" if port else ""
            lines.append(
                f"  live plane{served_at}: {self.live['windows']} windows "
                f"({self.live['skipped_ticks']} skipped), "
                f"{self.live['uptime_seconds']}s up"
            )
        if self.auditor is not None:
            summary = self.auditor.summary()
            lines.append(
                f"  serve audit: {summary['serves']} serves, "
                f"{summary['inversions']} rank inversions"
            )
        return "\n".join(lines) + "\n"


def _drive_churn(
    wheel: TimerWheel,
    events: int,
    rng: random.Random,
    *,
    cancel_ratio: float,
    pending_target: int = 1500,
    ramp: int = 0,
) -> List[Tuple[float, object]]:
    """Uniform arm/cancel/reset/fire mix; live set soft-capped.

    ``pending_target`` is the relief-valve threshold (the soft cap on
    concurrently armed timers).  ``ramp`` arms that many timers up
    front — spread over the usual deadline window — before the churn
    mix starts, which is how the million-timer preset reaches its
    concurrency without waiting for the mix's slow net drift.
    """
    now = 0.0
    live: List[int] = []
    due: List[Tuple[float, object]] = []
    for index in range(ramp):
        now += 0.001
        live.append(wheel.arm(now + 60.0 + rng.random() * 240.0, -index - 1))
    for index in range(events):
        now += rng.random() * 2.0
        roll = rng.random()
        if wheel.pending > pending_target:
            # Relief valve: fire everything due in the near future so the
            # circuit never hits capacity under an arm-heavy seed.  The
            # horizon stays below the arm offset floor, so relief never
            # advances the service floor past a deadline still being
            # armed (which would clamp it).
            due.extend(wheel.expire_until(now + 50.0))
            live = [t for t in live if t in wheel._handles]
        elif roll < 0.45 or not live:
            live.append(wheel.arm(now + 60.0 + rng.random() * 240.0, index))
        elif roll < 0.45 + cancel_ratio * 0.45:
            token = live.pop(rng.randrange(len(live)))
            if token in wheel._handles:
                wheel.cancel(token)
        elif roll < 0.88:
            token = rng.choice(live)
            if token in wheel._handles:
                wheel.reset(token, now + 60.0 + rng.random() * 240.0)
        else:
            due.extend(wheel.expire_until(now))
            live = [t for t in live if t in wheel._handles]
    due.extend(wheel.expire_until(float("inf")))
    return due


def _drive_retransmit(
    wheel: TimerWheel, events: int, rng: random.Random, *, connections: int
) -> List[Tuple[float, object]]:
    """TCP retransmission timers: arm on send, cancel on ACK."""
    now = 0.0
    rto = 30.0
    pending: Dict[int, int] = {}  # connection -> token
    due: List[Tuple[float, object]] = []
    for _ in range(events):
        now += rng.random() * 1.5
        connection = rng.randrange(connections)
        token = pending.get(connection)
        if token is None or token not in wheel._handles:
            # Segment sent: arm the retransmission timer.
            pending[connection] = wheel.arm(now + rto, connection)
            continue
        roll = rng.random()
        if roll < 0.80:
            # ACK arrived in time: the timer dies with it.
            wheel.cancel(token)
            del pending[connection]
        elif roll < 0.95:
            # Duplicate ACKs / reordering: exponential backoff repin.
            wheel.reset(token, now + 2 * rto)
        else:
            # Peer went quiet: let every due timer fire.
            due.extend(wheel.expire_until(now))
            pending = {
                c: t for c, t in pending.items() if t in wheel._handles
            }
    due.extend(wheel.expire_until(float("inf")))
    return due


def _drive_expiry(
    wheel: TimerWheel, events: int, rng: random.Random, *, flows: int
) -> List[Tuple[float, object]]:
    """Flow idle-expiry: packet arrivals repin, quiet flows fire."""
    now = 0.0
    idle_timeout = 200.0
    timers: Dict[int, int] = {}  # flow -> token
    due: List[Tuple[float, object]] = []
    for _ in range(events):
        now += rng.random() * 2.0
        # Harvest every expiry that came due before this arrival.
        expired = wheel.expire_until(now)
        if expired:
            due.extend(expired)
            timers = {
                f: t for f, t in timers.items() if t in wheel._handles
            }
        # Zipf-ish activity: a few flows carry most packets, so the
        # cold tail actually reaches its idle timeout.
        flow = min(int(rng.expovariate(1.0) * flows / 4), flows - 1)
        token = timers.get(flow)
        if token is not None and token in wheel._handles:
            wheel.reset(token, now + idle_timeout)
        else:
            timers[flow] = wheel.arm(now + idle_timeout, flow)
    due.extend(wheel.expire_until(float("inf")))
    return due


def run_timer_soak(
    *,
    pattern: str = "churn",
    events: int = 10_000,
    seed: int = 20060101,
    granularity: float = 1.0,
    turbo: bool = False,
    mode: Optional[str] = None,
    shards: int = 1,
    capacity: int = 4096,
    cancel_ratio: float = 0.6,
    pending_target: int = 1500,
    ramp: int = 0,
    trace_sink: Optional[str] = None,
    buffer_size: int = 65536,
    monitor: bool = False,
    serve_port: Optional[int] = None,
    serve_host: str = "127.0.0.1",
    serve_linger: float = 0.0,
    live_interval: float = 0.5,
    watchdog_timeout: Optional[float] = None,
) -> TimerRun:
    """Drive one timer scenario; returns its telemetry and checks.

    ``shards > 1`` runs the wheel over a
    :class:`~repro.fabric.fabric.ScheduleFabric` (cancel and repin stay
    shard-local — the shard-drain-free property the fabric tests pin).
    ``monitor=True`` screens the event stream through the online
    invariant monitors, including the dynamic-update pair
    (``handle_liveness``, ``free_list_removal``).  ``serve_port``
    attaches the live observability plane (``/metrics`` ``/health``
    ``/snapshot`` plus the tag-domain serve auditor) for the duration
    of the soak; it implies a tracer even without ``monitor`` or
    ``trace_sink``.
    """
    if pattern not in PATTERNS:
        raise ValueError(f"unknown timer pattern {pattern!r}")
    mode = resolve_mode(mode, turbo)
    from ..obs.events import build_trace_header
    from ..obs.monitors import MonitorSuite
    from ..obs.tracer import Tracer

    tracer = None
    suite = None
    if monitor or trace_sink is not None or serve_port is not None:
        tracer = Tracer(buffer_size=buffer_size, sink=trace_sink)
    if shards > 1:
        from ..fabric.fabric import ScheduleFabric

        backend = ScheduleFabric(
            shards=shards,
            granularity=granularity,
            capacity_per_shard=capacity,
            mode=mode,
            tracer=tracer,
        )
        describe = backend.stores[0].describe
        circuit_for_config = backend.stores[0].circuit
    else:
        backend = HardwareTagStore(
            granularity=granularity,
            capacity=capacity,
            mode=mode,
            tracer=tracer,
        )
        describe = backend.describe
        circuit_for_config = backend.circuit
    if tracer is not None:
        tracer.write_header(
            build_trace_header(
                seed=seed,
                mode="per_op",
                config=describe(),
                ops=events,
                purpose=f"timer_{pattern}",
                engine=mode,
            )
        )
        if monitor:
            suite = MonitorSuite.for_circuit(circuit_for_config, tracer=tracer)
            tracer.add_observer(suite)

    plane = None
    auditor = None
    if serve_port is not None:
        from ..obs.live import LivePlane
        from ..obs.monitors import MonitorConfig
        from ..obs.probes import StandardProbes
        from ..obs.slo import ServeStreamAuditor

        probes = StandardProbes()
        tracer.add_observer(probes)
        monitor_config = MonitorConfig.from_circuit_config(describe())
        auditor = ServeStreamAuditor(
            instruments=probes.instruments,
            modular=monitor_config.modular,
            tag_space=monitor_config.tag_space,
        )
        tracer.add_observer(
            auditor, kinds=ServeStreamAuditor.OBSERVED_KINDS
        )
        if shards > 1:
            stores = backend.stores
        else:
            stores = [backend]

        def timer_progress() -> float:
            return float(
                sum(
                    store.circuit.registry.total().total
                    for store in stores
                )
            )

        plane = LivePlane(
            instruments=probes.instruments,
            progress=timer_progress,
            occupancy=lambda: sum(len(store) for store in stores),
            shard_occupancies=(
                (lambda: [float(len(store)) for store in stores])
                if shards > 1
                else None
            ),
            free_list_depth=lambda: sum(
                store.circuit.free_list_depth for store in stores
            ),
            monitors=suite,
            tracer=tracer,
            auditor=auditor,
            serve_port=serve_port,
            serve_host=serve_host,
            interval=live_interval,
            watchdog_timeout=watchdog_timeout,
            extra_status=lambda: {
                "timer": {
                    "pattern": pattern,
                    "armed": wheel.armed,
                    "fired": wheel.fired,
                    "cancelled": wheel.cancelled,
                    "pending": wheel.pending,
                }
            },
        )

    wheel = TimerWheel(backend)
    rng = random.Random(seed)
    live_summary = None
    if plane is not None:
        plane.start()
    try:
        if pattern == "churn":
            due = _drive_churn(
                wheel,
                events,
                rng,
                cancel_ratio=cancel_ratio,
                pending_target=pending_target,
                ramp=ramp,
            )
        elif pattern == "retransmit":
            due = _drive_retransmit(wheel, events, rng, connections=256)
        else:
            due = _drive_expiry(wheel, events, rng, flows=512)
    finally:
        if plane is not None:
            if serve_linger > 0:
                time.sleep(serve_linger)
            live_summary = plane.finish()
        if tracer is not None:
            tracer.flush()
            tracer.close()
    return TimerRun(
        pattern=pattern,
        events=events,
        seed=seed,
        granularity=granularity,
        mode=mode,
        shards=shards,
        armed=wheel.armed,
        cancelled=wheel.cancelled,
        repinned=wheel.repinned,
        fired=wheel.fired,
        pending=wheel.pending,
        cycles=backend.cycles,
        operations=backend.operations,
        fired_deadlines=wheel.fired_effective,
        monitors=suite,
        backend=backend,
        live=live_summary,
        auditor=auditor,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro timer",
        description=(
            "Run a timer-wheel workload (insert/cancel churn, TCP "
            "retransmit, flow expiry) over the circuit's dynamic-update "
            "primitives."
        ),
    )
    parser.add_argument(
        "--pattern",
        choices=PATTERNS,
        default="churn",
        help="scenario family",
    )
    parser.add_argument(
        "--events", type=int, default=10_000, help="workload events"
    )
    parser.add_argument(
        "--seed", type=int, default=20060101, help="workload seed"
    )
    parser.add_argument(
        "--granularity", type=float, default=1.0, help="tag quantum"
    )
    parser.add_argument(
        "--mode",
        choices=("gate", "turbo", "vector"),
        default="gate",
        help="circuit engine (identical behaviour, different wall clock)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=4096,
        help="per-circuit tag-storage capacity (links)",
    )
    parser.add_argument(
        "--pending-target",
        type=int,
        default=1500,
        help="churn pattern: soft cap on concurrently armed timers",
    )
    parser.add_argument(
        "--ramp",
        type=int,
        default=0,
        help="churn pattern: timers armed up front before the mix starts",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run over a scheduling fabric of this many shards",
    )
    parser.add_argument(
        "--cancel-ratio",
        type=float,
        default=0.6,
        help="churn pattern: fraction of timers cancelled before firing",
    )
    parser.add_argument(
        "--trace", metavar="FILE", help="stream the JSONL event trace here"
    )
    parser.add_argument(
        "--buffer-size",
        type=int,
        default=65536,
        help="tracer ring-buffer capacity",
    )
    parser.add_argument(
        "--monitor",
        action="store_true",
        help=(
            "screen the event stream through the online invariant "
            "monitors; exit 1 on any violation"
        ),
    )
    parser.add_argument(
        "--serve",
        type=int,
        metavar="PORT",
        help=(
            "serve /metrics /health /snapshot on this port while the "
            "soak runs (0 = ephemeral port); implies a tracer"
        ),
    )
    parser.add_argument(
        "--serve-host",
        default="127.0.0.1",
        help="bind address for --serve (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--serve-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the endpoints up this long after the soak finishes",
    )
    parser.add_argument(
        "--live-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="windowed-collector rollup interval",
    )
    parser.add_argument(
        "--watchdog",
        type=float,
        metavar="SECONDS",
        help="declare a stall after this long without circuit progress",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the run report here (default: stdout)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="run-report format",
    )
    args = parser.parse_args(argv)

    run = run_timer_soak(
        pattern=args.pattern,
        events=args.events,
        seed=args.seed,
        granularity=args.granularity,
        mode=args.mode,
        shards=args.shards,
        capacity=args.capacity,
        cancel_ratio=args.cancel_ratio,
        pending_target=args.pending_target,
        ramp=args.ramp,
        trace_sink=args.trace,
        buffer_size=args.buffer_size,
        monitor=args.monitor,
        serve_port=args.serve,
        serve_host=args.serve_host,
        serve_linger=args.serve_linger,
        live_interval=args.live_interval,
        watchdog_timeout=args.watchdog,
    )

    if args.format == "json":
        report = json.dumps(run.to_document(), indent=2) + "\n"
    else:
        report = run.report()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    else:
        sys.stdout.write(report)

    status = 0
    if not run.served_in_order:
        print("FAIL: timers fired out of deadline order", file=sys.stderr)
        status = 1
    if not run.conserved:
        print(
            "FAIL: timer conservation broken (armed != fired + cancelled "
            "+ pending)",
            file=sys.stderr,
        )
        status = 1
    if run.monitors is not None and not run.monitors.ok:
        print(
            f"FAIL: {len(run.monitors.violations)} invariant violation(s) "
            f"— see the run report",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
