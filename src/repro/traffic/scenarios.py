"""Composed traffic scenarios used across the experiments.

Each scenario builds the per-flow generators, weight assignments, and a
merged trace in one call, so tests, examples, and benchmarks all share
identical workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from ..hwsim.errors import ConfigurationError
from ..sched.packet import Packet
from .generators import (
    CBRArrivals,
    OnOffArrivals,
    ParetoArrivals,
    PoissonArrivals,
    merge,
)
from .packet_sizes import (
    BoundedParetoSize,
    FixedSize,
    internet_mix,
    voice_heavy_mix,
)


@dataclass
class Scenario:
    """A reproducible workload: flows, weights, and the merged trace."""

    name: str
    rate_bps: float
    weights: Dict[int, float] = field(default_factory=dict)
    trace: List[Packet] = field(default_factory=list)
    #: ids of flows with tight delay expectations (VoIP-class)
    realtime_flows: List[int] = field(default_factory=list)

    @property
    def flow_count(self) -> int:
        return len(self.weights)

    def clone_trace(self) -> List[Packet]:
        """Fresh Packet objects (schedulers mutate departure fields)."""
        return [
            Packet(
                flow_id=p.flow_id,
                size_bytes=p.size_bytes,
                arrival_time=p.arrival_time,
                packet_id=p.packet_id,
            )
            for p in self.trace
        ]


def voip_video_data_mix(
    *,
    rate_bps: float = 10e6,
    voip_flows: int = 4,
    video_flows: int = 2,
    data_flows: int = 2,
    packets_per_flow: int = 300,
    load: float = 0.9,
    seed: int = 0,
) -> Scenario:
    """The paper's motivating workload: VoIP + streaming video + bulk data.

    VoIP flows are CBR with small fixed packets and a guaranteed share;
    video flows are bursty on-off; data flows are Poisson with the
    trimodal size mix.  Per-class offered load is split 20/40/40 and
    scaled so total offered load is ``load`` x link rate.
    """
    if load <= 0:
        raise ConfigurationError("load must be positive")
    total_flows = voip_flows + video_flows + data_flows
    if total_flows == 0:
        raise ConfigurationError("need at least one flow")
    scenario = Scenario(name="voip_video_data", rate_bps=rate_bps)
    offered = load * rate_bps
    voip_share, video_share, data_share = 0.2, 0.4, 0.4

    streams = []
    flow_id = 0
    for _ in range(voip_flows):
        bits_per_packet = 80 * 8
        rate_pps = offered * voip_share / max(voip_flows, 1) / bits_per_packet
        generator = CBRArrivals(
            flow_id, rate_pps, FixedSize(80), jitter_fraction=0.1, seed=seed
        )
        streams.append(generator.packets(packets_per_flow))
        scenario.weights[flow_id] = voip_share / max(voip_flows, 1)
        scenario.realtime_flows.append(flow_id)
        flow_id += 1
    for _ in range(video_flows):
        sizes = internet_mix()
        bits_per_packet = sizes.mean() * 8
        mean_pps = offered * video_share / max(video_flows, 1) / bits_per_packet
        generator = OnOffArrivals(
            flow_id,
            peak_rate_pps=mean_pps * 4,
            size_model=sizes,
            mean_on_s=0.05,
            mean_off_s=0.15,
            seed=seed,
        )
        streams.append(generator.packets(packets_per_flow))
        scenario.weights[flow_id] = video_share / max(video_flows, 1)
        flow_id += 1
    for _ in range(data_flows):
        sizes = BoundedParetoSize()
        bits_per_packet = sizes.mean() * 8
        rate_pps = offered * data_share / max(data_flows, 1) / bits_per_packet
        generator = PoissonArrivals(flow_id, rate_pps, sizes, seed=seed)
        streams.append(generator.packets(packets_per_flow))
        scenario.weights[flow_id] = data_share / max(data_flows, 1)
        flow_id += 1

    scenario.trace = merge(streams)
    return scenario


def uniform_poisson(
    *,
    rate_bps: float = 10e6,
    flows: int = 8,
    packets_per_flow: int = 250,
    load: float = 0.85,
    seed: int = 0,
) -> Scenario:
    """Equal-weight Poisson flows with the trimodal size mix."""
    scenario = Scenario(name="uniform_poisson", rate_bps=rate_bps)
    sizes = internet_mix()
    bits_per_packet = sizes.mean() * 8
    per_flow_pps = load * rate_bps / flows / bits_per_packet
    streams = []
    for flow_id in range(flows):
        generator = PoissonArrivals(flow_id, per_flow_pps, sizes, seed=seed)
        streams.append(generator.packets(packets_per_flow))
        scenario.weights[flow_id] = 1.0 / flows
    scenario.trace = merge(streams)
    return scenario


def voip_skewed(
    *,
    rate_bps: float = 10e6,
    flows: int = 16,
    packets_per_flow: int = 150,
    load: float = 0.8,
    seed: int = 0,
) -> Scenario:
    """A VoIP-dominated mix — the left-weighted tag profile of Fig. 6."""
    scenario = Scenario(name="voip_skewed", rate_bps=rate_bps)
    sizes = voice_heavy_mix()
    bits_per_packet = sizes.mean() * 8
    per_flow_pps = load * rate_bps / flows / bits_per_packet
    streams = []
    for flow_id in range(flows):
        generator = CBRArrivals(
            flow_id, per_flow_pps, sizes, jitter_fraction=0.3, seed=seed
        )
        streams.append(generator.packets(packets_per_flow))
        scenario.weights[flow_id] = 1.0 / flows
        scenario.realtime_flows.append(flow_id)
    scenario.trace = merge(streams)
    return scenario


def heavy_tail_stress(
    *,
    rate_bps: float = 10e6,
    flows: int = 6,
    packets_per_flow: int = 300,
    load: float = 1.1,
    seed: int = 0,
) -> Scenario:
    """Overloaded heavy-tailed arrivals — the classic bell becomes a smear."""
    scenario = Scenario(name="heavy_tail_stress", rate_bps=rate_bps)
    sizes = BoundedParetoSize()
    bits_per_packet = sizes.mean() * 8
    per_flow_pps = load * rate_bps / flows / bits_per_packet
    streams = []
    rng = random.Random(seed)
    for flow_id in range(flows):
        generator = ParetoArrivals(
            flow_id, per_flow_pps, sizes, alpha=1.4, seed=rng.randrange(2**30)
        )
        streams.append(generator.packets(packets_per_flow))
        scenario.weights[flow_id] = 1.0 / flows
    scenario.trace = merge(streams)
    return scenario
