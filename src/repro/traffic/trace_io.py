"""Trace persistence: save/load packet traces as CSV.

Reproducibility plumbing: experiments can pin a workload to a file and
rerun it bit-identically across machines, or import externally captured
traces (one row per packet: flow id, size in bytes, arrival time in
seconds) into the simulator.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Sequence, Union

from ..hwsim.errors import ConfigurationError
from ..sched.packet import Packet

_FIELDS = ("packet_id", "flow_id", "size_bytes", "arrival_time")


def save_trace(
    path: Union[str, Path], trace: Sequence[Packet]
) -> None:
    """Write a trace as CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS)
        for packet in trace:
            writer.writerow(
                (
                    packet.packet_id,
                    packet.flow_id,
                    packet.size_bytes,
                    repr(packet.arrival_time),
                )
            )


def load_trace(path: Union[str, Path]) -> List[Packet]:
    """Read a CSV trace back into fresh Packet objects.

    The file must carry the exact header :data:`_FIELDS`; rows are
    validated (sizes positive, times non-negative and sorted output is
    NOT required — the simulator sorts).
    """
    path = Path(path)
    packets: List[Packet] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != list(_FIELDS):
            raise ConfigurationError(
                f"{path}: expected header {_FIELDS}, got {header}"
            )
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(_FIELDS):
                raise ConfigurationError(
                    f"{path}:{line_number}: expected {len(_FIELDS)} fields"
                )
            try:
                packet_id = int(row[0])
                flow_id = int(row[1])
                size_bytes = int(row[2])
                arrival_time = float(row[3])
            except ValueError as error:
                raise ConfigurationError(
                    f"{path}:{line_number}: {error}"
                ) from error
            if size_bytes < 1:
                raise ConfigurationError(
                    f"{path}:{line_number}: size must be positive"
                )
            if arrival_time < 0:
                raise ConfigurationError(
                    f"{path}:{line_number}: negative arrival time"
                )
            packets.append(
                Packet(
                    flow_id=flow_id,
                    size_bytes=size_bytes,
                    arrival_time=arrival_time,
                    packet_id=packet_id,
                )
            )
    return packets
