"""Packet-size models.

The paper's throughput math rests on "a conservative estimate for an
average IP packet size of 140 bytes" (Section IV) — a voice-heavy mix.
Alongside that we provide the classic trimodal Internet distribution
(40/576/1500 bytes), fixed sizes (VoIP), and uniform/bounded-Pareto
variants for stress tests.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

from ..core.engine import numpy_or_none
from ..hwsim.errors import ConfigurationError

#: Shared optional-numpy probe (one source of truth with ``--mode vector``).
np = numpy_or_none()

#: The paper's conservative average IP packet size (Section IV).
PAPER_MEAN_PACKET_BYTES = 140

#: Classic Internet trimodal mix: (size, probability).
TRIMODAL_INTERNET_MIX: Tuple[Tuple[int, float], ...] = (
    (40, 0.55),
    (576, 0.25),
    (1500, 0.20),
)


class PacketSizeModel(ABC):
    """Draws packet sizes in bytes."""

    @abstractmethod
    def sample(self, rng: random.Random) -> int:
        """One packet size in bytes."""

    @abstractmethod
    def mean(self) -> float:
        """Expected size in bytes."""

    def sample_bulk(self, rng, count: int) -> Sequence[int]:
        """``count`` sizes in one call; ``rng`` is a numpy ``Generator``.

        The built-in models override this with a vectorized draw.  This
        fallback keeps third-party models working on the bulk path by
        looping over :meth:`sample` with a stdlib ``Random`` seeded from
        the bulk stream (a different — but equally deterministic —
        sequence than the vectorized overrides produce).
        """
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        fallback = random.Random(int(rng.integers(0, 2**63)))
        return [self.sample(fallback) for _ in range(count)]


class FixedSize(PacketSizeModel):
    """Constant packet size (VoIP frames, ATM-like cells)."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes < 1:
            raise ConfigurationError("packet size must be positive")
        self.size_bytes = size_bytes

    def sample(self, rng: random.Random) -> int:
        return self.size_bytes

    def sample_bulk(self, rng, count: int) -> Sequence[int]:
        return np.full(count, self.size_bytes, dtype=np.int64)

    def mean(self) -> float:
        return float(self.size_bytes)


class UniformSize(PacketSizeModel):
    """Uniform over [low, high] bytes."""

    def __init__(self, low: int, high: int) -> None:
        if not 1 <= low <= high:
            raise ConfigurationError("need 1 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    def sample_bulk(self, rng, count: int) -> Sequence[int]:
        return rng.integers(self.low, self.high + 1, size=count)

    def mean(self) -> float:
        return (self.low + self.high) / 2


class EmpiricalMix(PacketSizeModel):
    """Discrete (size, probability) mixture."""

    def __init__(self, mix: Sequence[Tuple[int, float]]) -> None:
        if not mix:
            raise ConfigurationError("mixture must not be empty")
        total = sum(probability for _, probability in mix)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ConfigurationError(f"probabilities sum to {total}, not 1")
        self.sizes: List[int] = [size for size, _ in mix]
        self.cumulative: List[float] = []
        running = 0.0
        for _, probability in mix:
            running += probability
            self.cumulative.append(running)

    def sample(self, rng: random.Random) -> int:
        draw = rng.random()
        for size, bound in zip(self.sizes, self.cumulative):
            if draw <= bound:
                return size
        return self.sizes[-1]

    def sample_bulk(self, rng, count: int) -> Sequence[int]:
        draws = rng.random(count)
        indices = np.searchsorted(self.cumulative, draws, side="left")
        indices = np.minimum(indices, len(self.sizes) - 1)
        return np.asarray(self.sizes, dtype=np.int64)[indices]

    def mean(self) -> float:
        means = zip(self.sizes, [self.cumulative[0]] + [
            b - a for a, b in zip(self.cumulative, self.cumulative[1:])
        ])
        return sum(size * probability for size, probability in means)


class BoundedParetoSize(PacketSizeModel):
    """Heavy-tailed sizes truncated to [low, high] bytes."""

    def __init__(
        self, low: int = 40, high: int = 1500, alpha: float = 1.2
    ) -> None:
        if not 1 <= low < high:
            raise ConfigurationError("need 1 <= low < high")
        if alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        self.low = low
        self.high = high
        self.alpha = alpha

    def sample(self, rng: random.Random) -> int:
        # Inverse-CDF sampling of the bounded Pareto.
        u = rng.random()
        la = self.low**self.alpha
        ha = self.high**self.alpha
        value = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / self.alpha)
        return max(self.low, min(self.high, int(round(value))))

    def sample_bulk(self, rng, count: int) -> Sequence[int]:
        u = rng.random(count)
        la = self.low**self.alpha
        ha = self.high**self.alpha
        values = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / self.alpha)
        return np.clip(np.rint(values), self.low, self.high).astype(np.int64)

    def mean(self) -> float:
        a, l, h = self.alpha, self.low, self.high
        if math.isclose(a, 1.0):
            return l * math.log(h / l) / (1 - (l / h))
        num = l**a / (1 - (l / h) ** a) * (a / (a - 1))
        return num * (1 / l ** (a - 1) - 1 / h ** (a - 1))


def internet_mix() -> EmpiricalMix:
    """The 40/576/1500 trimodal mix (mean ~466 bytes)."""
    return EmpiricalMix(TRIMODAL_INTERNET_MIX)


def voice_heavy_mix() -> EmpiricalMix:
    """A VoIP-dominated mix with mean close to the paper's 140 bytes."""
    return EmpiricalMix(((80, 0.70), (200, 0.20), (576, 0.10)))
