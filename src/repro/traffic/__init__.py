"""Workload generation: packet sizes, arrival processes, scenarios."""

from .generators import (
    ArrivalProcess,
    CBRArrivals,
    OnOffArrivals,
    ParetoArrivals,
    PoissonArrivals,
    merge,
)
from .packet_sizes import (
    PAPER_MEAN_PACKET_BYTES,
    TRIMODAL_INTERNET_MIX,
    BoundedParetoSize,
    EmpiricalMix,
    FixedSize,
    PacketSizeModel,
    UniformSize,
    internet_mix,
    voice_heavy_mix,
)
from .trace_io import load_trace, save_trace
from .scenarios import (
    Scenario,
    heavy_tail_stress,
    uniform_poisson,
    voip_skewed,
    voip_video_data_mix,
)

__all__ = [
    "ArrivalProcess",
    "CBRArrivals",
    "OnOffArrivals",
    "ParetoArrivals",
    "PoissonArrivals",
    "merge",
    "PAPER_MEAN_PACKET_BYTES",
    "TRIMODAL_INTERNET_MIX",
    "BoundedParetoSize",
    "EmpiricalMix",
    "FixedSize",
    "PacketSizeModel",
    "UniformSize",
    "internet_mix",
    "voice_heavy_mix",
    "load_trace",
    "save_trace",
    "Scenario",
    "heavy_tail_stress",
    "uniform_poisson",
    "voip_skewed",
    "voip_video_data_mix",
]
