"""Arrival-process generators.

Each generator produces a time-sorted stream of
:class:`~repro.sched.packet.Packet` for one flow; :func:`merge` interleaves
several flows into one trace.  The processes cover the paper's traffic
discussion (Section III-A / Fig. 6): smooth CBR voice, Poisson data,
Markov-modulated on-off video bursts, and heavy-tailed Pareto arrivals.
"""

from __future__ import annotations

import heapq
import random
from abc import ABC, abstractmethod
from typing import Iterable, Iterator, List

from ..hwsim.errors import ConfigurationError
from ..sched.packet import Packet
from .packet_sizes import FixedSize, PacketSizeModel


class ArrivalProcess(ABC):
    """A per-flow packet arrival generator."""

    def __init__(
        self,
        flow_id: int,
        size_model: PacketSizeModel,
        *,
        seed: int = 0,
    ) -> None:
        self.flow_id = flow_id
        self.size_model = size_model
        self.rng = random.Random((seed << 16) ^ flow_id ^ 0x9E3779B9)

    @abstractmethod
    def intervals(self) -> Iterator[float]:
        """Successive inter-arrival times in seconds."""

    def packets(
        self, count: int, *, start_time: float = 0.0
    ) -> List[Packet]:
        """Generate ``count`` packets starting at ``start_time``."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        out = []
        t = start_time
        gaps = self.intervals()
        for _ in range(count):
            t += next(gaps)
            out.append(
                Packet(
                    flow_id=self.flow_id,
                    size_bytes=self.size_model.sample(self.rng),
                    arrival_time=t,
                )
            )
        return out


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_pps`` packets per second."""

    def __init__(
        self,
        flow_id: int,
        rate_pps: float,
        size_model: PacketSizeModel,
        *,
        seed: int = 0,
    ) -> None:
        super().__init__(flow_id, size_model, seed=seed)
        if rate_pps <= 0:
            raise ConfigurationError("rate must be positive")
        self.rate_pps = rate_pps

    def intervals(self) -> Iterator[float]:
        while True:
            yield self.rng.expovariate(self.rate_pps)


class CBRArrivals(ArrivalProcess):
    """Constant-bit-rate arrivals (VoIP): fixed spacing, optional jitter."""

    def __init__(
        self,
        flow_id: int,
        rate_pps: float,
        size_model: PacketSizeModel = FixedSize(80),
        *,
        jitter_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(flow_id, size_model, seed=seed)
        if rate_pps <= 0:
            raise ConfigurationError("rate must be positive")
        if not 0 <= jitter_fraction < 1:
            raise ConfigurationError("jitter fraction must be in [0, 1)")
        self.period = 1.0 / rate_pps
        self.jitter_fraction = jitter_fraction

    def intervals(self) -> Iterator[float]:
        while True:
            jitter = 0.0
            if self.jitter_fraction:
                jitter = self.period * self.jitter_fraction * (
                    self.rng.random() - 0.5
                )
            yield max(1e-9, self.period + jitter)


class OnOffArrivals(ArrivalProcess):
    """Markov-modulated on-off bursts (streaming video / bursty data).

    In the ON state packets arrive at ``peak_rate_pps``; OFF emits
    nothing.  State holding times are exponential, so the process is the
    standard interrupted Poisson model of bursty sources.
    """

    def __init__(
        self,
        flow_id: int,
        peak_rate_pps: float,
        size_model: PacketSizeModel,
        *,
        mean_on_s: float = 0.1,
        mean_off_s: float = 0.3,
        seed: int = 0,
    ) -> None:
        super().__init__(flow_id, size_model, seed=seed)
        if peak_rate_pps <= 0 or mean_on_s <= 0 or mean_off_s <= 0:
            raise ConfigurationError("rates and durations must be positive")
        self.peak_rate_pps = peak_rate_pps
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s

    @property
    def mean_rate_pps(self) -> float:
        """Long-run average packet rate."""
        duty = self.mean_on_s / (self.mean_on_s + self.mean_off_s)
        return self.peak_rate_pps * duty

    def intervals(self) -> Iterator[float]:
        while True:
            burst_remaining = self.rng.expovariate(1.0 / self.mean_on_s)
            first_in_burst = True
            while True:
                gap = self.rng.expovariate(self.peak_rate_pps)
                if gap > burst_remaining:
                    break
                burst_remaining -= gap
                if first_in_burst:
                    # The silence preceding this burst rides on its first
                    # packet's gap.
                    yield gap + self.rng.expovariate(1.0 / self.mean_off_s)
                    first_in_burst = False
                else:
                    yield gap
            if first_in_burst:
                # Empty burst: fold the on+off period into the next one.
                continue


class ParetoArrivals(ArrivalProcess):
    """Heavy-tailed inter-arrival gaps (self-similar aggregate traffic)."""

    def __init__(
        self,
        flow_id: int,
        rate_pps: float,
        size_model: PacketSizeModel,
        *,
        alpha: float = 1.5,
        seed: int = 0,
    ) -> None:
        super().__init__(flow_id, size_model, seed=seed)
        if rate_pps <= 0:
            raise ConfigurationError("rate must be positive")
        if alpha <= 1:
            raise ConfigurationError("alpha must exceed 1 for a finite mean")
        self.alpha = alpha
        # Scale xm so the mean gap is 1/rate: mean = xm * a / (a - 1).
        self.scale = (1.0 / rate_pps) * (alpha - 1) / alpha

    def intervals(self) -> Iterator[float]:
        while True:
            yield self.scale * self.rng.paretovariate(self.alpha)


def merge(streams: Iterable[List[Packet]]) -> List[Packet]:
    """Merge per-flow packet lists into one time-sorted trace."""
    return list(
        heapq.merge(
            *streams, key=lambda packet: (packet.arrival_time, packet.packet_id)
        )
    )
