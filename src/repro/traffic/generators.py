"""Arrival-process generators.

Each generator produces a time-sorted stream of
:class:`~repro.sched.packet.Packet` for one flow; :func:`merge` interleaves
several flows into one trace.  The processes cover the paper's traffic
discussion (Section III-A / Fig. 6): smooth CBR voice, Poisson data,
Markov-modulated on-off video bursts, and heavy-tailed Pareto arrivals.

Two synthesis paths exist per process.  :meth:`ArrivalProcess.packets`
draws one packet at a time from the stdlib ``random`` stream — the
reference path, byte-stable across releases.  For 100k+-packet soaks
(the perf-regression benchmarks) :meth:`ArrivalProcess.packets_bulk`
draws every inter-arrival gap and packet size in single vectorized numpy
calls; the bulk stream is deterministic per ``(seed, flow_id)`` but
*distinct* from the per-packet stream (different RNG).  When numpy is
unavailable, or for processes whose state machine resists vectorization
(on-off), the bulk path transparently falls back to the per-packet one;
``strict=True`` turns that fallback into one clear ``ConfigurationError``
(the same contract as ``--mode vector``).
"""

from __future__ import annotations

import heapq
import random
from abc import ABC, abstractmethod
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from ..core.engine import numpy_or_none, require_numpy
from ..hwsim.errors import ConfigurationError

#: Shared optional-numpy probe (one source of truth with ``--mode vector``).
np = numpy_or_none()
from ..sched.packet import Packet
from .packet_sizes import FixedSize, PacketSizeModel


class ArrivalProcess(ABC):
    """A per-flow packet arrival generator."""

    def __init__(
        self,
        flow_id: int,
        size_model: PacketSizeModel,
        *,
        seed: int = 0,
    ) -> None:
        self.flow_id = flow_id
        self.size_model = size_model
        self._seed_word = (seed << 16) ^ flow_id ^ 0x9E3779B9
        self.rng = random.Random(self._seed_word)
        self._np_rng = None

    @property
    def bulk_rng(self):
        """Persistent numpy ``Generator`` for the vectorized path.

        Created lazily so constructing a process never requires numpy;
        successive :meth:`packets_bulk` calls continue one stream, just
        as :meth:`packets` calls continue ``self.rng``.
        """
        if self._np_rng is None:
            numpy = require_numpy("vectorized traffic synthesis")
            self._np_rng = numpy.random.default_rng(self._seed_word & (2**64 - 1))
        return self._np_rng

    @abstractmethod
    def intervals(self) -> Iterator[float]:
        """Successive inter-arrival times in seconds."""

    def bulk_intervals(self, count: int) -> Optional["np.ndarray"]:
        """``count`` inter-arrival gaps in one vectorized draw.

        Returns ``None`` when the process has no vectorized form (the
        on-off state machine) — :meth:`packets_bulk` then falls back to
        the per-packet generator.
        """
        return None

    def packets(
        self, count: int, *, start_time: float = 0.0
    ) -> List[Packet]:
        """Generate ``count`` packets starting at ``start_time``."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        out = []
        t = start_time
        gaps = self.intervals()
        for _ in range(count):
            t += next(gaps)
            out.append(
                Packet(
                    flow_id=self.flow_id,
                    size_bytes=self.size_model.sample(self.rng),
                    arrival_time=t,
                )
            )
        return out

    def packets_bulk(
        self, count: int, *, start_time: float = 0.0, strict: bool = False
    ) -> List[Packet]:
        """Generate ``count`` packets with vectorized synthesis.

        All inter-arrival gaps and packet sizes are drawn in single
        numpy calls, then cumulative-summed into arrival times — the
        100k+-packet soak path.  Falls back to :meth:`packets` when
        numpy is missing or the process has no vectorized form;
        ``strict=True`` demands the vectorized path instead, raising
        one clear :class:`ConfigurationError` when it is unavailable.
        """
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        if np is None:
            if strict:
                require_numpy("vectorized traffic synthesis")
            return self.packets(count, start_time=start_time)
        gaps = self.bulk_intervals(count)
        if gaps is None:
            if strict:
                raise ConfigurationError(
                    f"{type(self).__name__} has no vectorized form; drop "
                    "strict=True to use the per-packet fallback"
                )
            return self.packets(count, start_time=start_time)
        times = start_time + np.cumsum(gaps)
        sizes = self.size_model.sample_bulk(self.bulk_rng, count)
        flow_id = self.flow_id
        return [
            Packet(
                flow_id=flow_id,
                size_bytes=int(size),
                arrival_time=float(time),
            )
            for size, time in zip(sizes, times)
        ]


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_pps`` packets per second."""

    def __init__(
        self,
        flow_id: int,
        rate_pps: float,
        size_model: PacketSizeModel,
        *,
        seed: int = 0,
    ) -> None:
        super().__init__(flow_id, size_model, seed=seed)
        if rate_pps <= 0:
            raise ConfigurationError("rate must be positive")
        self.rate_pps = rate_pps

    def intervals(self) -> Iterator[float]:
        while True:
            yield self.rng.expovariate(self.rate_pps)

    def bulk_intervals(self, count: int) -> "np.ndarray":
        return self.bulk_rng.exponential(1.0 / self.rate_pps, size=count)


class CBRArrivals(ArrivalProcess):
    """Constant-bit-rate arrivals (VoIP): fixed spacing, optional jitter."""

    def __init__(
        self,
        flow_id: int,
        rate_pps: float,
        size_model: PacketSizeModel = FixedSize(80),
        *,
        jitter_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(flow_id, size_model, seed=seed)
        if rate_pps <= 0:
            raise ConfigurationError("rate must be positive")
        if not 0 <= jitter_fraction < 1:
            raise ConfigurationError("jitter fraction must be in [0, 1)")
        self.period = 1.0 / rate_pps
        self.jitter_fraction = jitter_fraction

    def intervals(self) -> Iterator[float]:
        while True:
            jitter = 0.0
            if self.jitter_fraction:
                jitter = self.period * self.jitter_fraction * (
                    self.rng.random() - 0.5
                )
            yield max(1e-9, self.period + jitter)

    def bulk_intervals(self, count: int) -> "np.ndarray":
        if not self.jitter_fraction:
            return np.full(count, self.period)
        jitter = self.period * self.jitter_fraction * (
            self.bulk_rng.random(count) - 0.5
        )
        return np.maximum(1e-9, self.period + jitter)


class OnOffArrivals(ArrivalProcess):
    """Markov-modulated on-off bursts (streaming video / bursty data).

    In the ON state packets arrive at ``peak_rate_pps``; OFF emits
    nothing.  State holding times are exponential, so the process is the
    standard interrupted Poisson model of bursty sources.
    """

    def __init__(
        self,
        flow_id: int,
        peak_rate_pps: float,
        size_model: PacketSizeModel,
        *,
        mean_on_s: float = 0.1,
        mean_off_s: float = 0.3,
        seed: int = 0,
    ) -> None:
        super().__init__(flow_id, size_model, seed=seed)
        if peak_rate_pps <= 0 or mean_on_s <= 0 or mean_off_s <= 0:
            raise ConfigurationError("rates and durations must be positive")
        self.peak_rate_pps = peak_rate_pps
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s

    @property
    def mean_rate_pps(self) -> float:
        """Long-run average packet rate."""
        duty = self.mean_on_s / (self.mean_on_s + self.mean_off_s)
        return self.peak_rate_pps * duty

    def intervals(self) -> Iterator[float]:
        while True:
            burst_remaining = self.rng.expovariate(1.0 / self.mean_on_s)
            first_in_burst = True
            while True:
                gap = self.rng.expovariate(self.peak_rate_pps)
                if gap > burst_remaining:
                    break
                burst_remaining -= gap
                if first_in_burst:
                    # The silence preceding this burst rides on its first
                    # packet's gap.
                    yield gap + self.rng.expovariate(1.0 / self.mean_off_s)
                    first_in_burst = False
                else:
                    yield gap
            if first_in_burst:
                # Empty burst: fold the on+off period into the next one.
                continue


class ParetoArrivals(ArrivalProcess):
    """Heavy-tailed inter-arrival gaps (self-similar aggregate traffic)."""

    def __init__(
        self,
        flow_id: int,
        rate_pps: float,
        size_model: PacketSizeModel,
        *,
        alpha: float = 1.5,
        seed: int = 0,
    ) -> None:
        super().__init__(flow_id, size_model, seed=seed)
        if rate_pps <= 0:
            raise ConfigurationError("rate must be positive")
        if alpha <= 1:
            raise ConfigurationError("alpha must exceed 1 for a finite mean")
        self.alpha = alpha
        # Scale xm so the mean gap is 1/rate: mean = xm * a / (a - 1).
        self.scale = (1.0 / rate_pps) * (alpha - 1) / alpha

    def intervals(self) -> Iterator[float]:
        while True:
            yield self.scale * self.rng.paretovariate(self.alpha)

    def bulk_intervals(self, count: int) -> "np.ndarray":
        # numpy's pareto() is the Lomax (shifted) form; +1 recovers the
        # classical Pareto I with x_m = 1 that paretovariate() draws.
        return self.scale * (self.bulk_rng.pareto(self.alpha, size=count) + 1.0)


def merge(streams: Iterable[List[Packet]]) -> List[Packet]:
    """Merge per-flow packet lists into one time-sorted trace."""
    return list(
        heapq.merge(
            *streams, key=lambda packet: (packet.arrival_time, packet.packet_id)
        )
    )


def bulk_trace(
    processes: Sequence[ArrivalProcess],
    counts: Union[int, Sequence[int]],
    *,
    start_time: float = 0.0,
    strict: bool = False,
) -> List[Packet]:
    """Vectorized multi-flow trace: bulk-generate each flow, then merge.

    ``counts`` is one packet count shared by every flow or a per-flow
    sequence aligned with ``processes``.  ``strict`` is forwarded to
    :meth:`ArrivalProcess.packets_bulk`.
    """
    if isinstance(counts, int):
        counts = [counts] * len(processes)
    if len(counts) != len(processes):
        raise ConfigurationError(
            f"{len(processes)} processes but {len(counts)} counts"
        )
    return merge(
        process.packets_bulk(count, start_time=start_time, strict=strict)
        for process, count in zip(processes, counts)
    )
