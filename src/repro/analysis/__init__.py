"""Experiment support: complexity measurement, distributions, sweeps."""

from .complexity import (
    MethodMeasurement,
    measure_all,
    measure_method,
    render_table1,
    scaling_exponent,
)
from .distributions import (
    TagDistributionProfiler,
    WindowProfile,
    mean_drift_per_window,
    render_windows,
)
from .timelines import (
    BusyPeriod,
    backlog_series,
    busy_periods,
    interleaving_index,
    peak_backlog,
    service_timeline,
    utilization,
)
from .sweeps import (
    SweepPoint,
    crossover,
    geometric_grid,
    monotone_nondecreasing,
    monotone_nonincreasing,
    render_series,
    sweep,
)

__all__ = [
    "MethodMeasurement",
    "measure_all",
    "measure_method",
    "render_table1",
    "scaling_exponent",
    "TagDistributionProfiler",
    "WindowProfile",
    "mean_drift_per_window",
    "render_windows",
    "BusyPeriod",
    "backlog_series",
    "busy_periods",
    "interleaving_index",
    "peak_backlog",
    "service_timeline",
    "utilization",
    "SweepPoint",
    "crossover",
    "geometric_grid",
    "monotone_nondecreasing",
    "monotone_nonincreasing",
    "render_series",
    "sweep",
]
