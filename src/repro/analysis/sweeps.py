"""Shared parameter-sweep helpers for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple, TypeVar

from ..hwsim.errors import ConfigurationError

T = TypeVar("T")


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter, value) measurement."""

    parameter: float
    value: float


def sweep(
    parameters: Iterable[float], measure: Callable[[float], float]
) -> List[SweepPoint]:
    """Evaluate ``measure`` at every parameter, in order."""
    return [SweepPoint(parameter=p, value=measure(p)) for p in parameters]


def monotone_nonincreasing(points: Sequence[SweepPoint], *, slack: float = 0.0) -> bool:
    """True when values never rise by more than ``slack``."""
    return all(
        later.value <= earlier.value + slack
        for earlier, later in zip(points, points[1:])
    )


def monotone_nondecreasing(points: Sequence[SweepPoint], *, slack: float = 0.0) -> bool:
    """True when values never drop by more than ``slack``."""
    return all(
        later.value >= earlier.value - slack
        for earlier, later in zip(points, points[1:])
    )


def crossover(points_a: Sequence[SweepPoint], points_b: Sequence[SweepPoint]) -> float:
    """First parameter where series A stops beating series B.

    Returns +inf when A wins everywhere, -inf when it never wins.
    Both series must share parameters.
    """
    if [p.parameter for p in points_a] != [p.parameter for p in points_b]:
        raise ConfigurationError("series must share their parameter grid")
    winning = False
    for a, b in zip(points_a, points_b):
        if a.value < b.value:
            winning = True
        elif winning:
            return a.parameter
    return float("inf") if winning else float("-inf")


def render_series(
    title: str, series: Dict[str, Sequence[SweepPoint]], *, unit: str = ""
) -> str:
    """Tabulate several sweeps side by side (one row per parameter)."""
    names = list(series)
    if not names:
        raise ConfigurationError("no series to render")
    grid = [p.parameter for p in series[names[0]]]
    lines = [title]
    header = f"  {'param':>10} " + " ".join(f"{name:>16}" for name in names)
    lines.append(header)
    for index, parameter in enumerate(grid):
        row = f"  {parameter:>10g} "
        row += " ".join(
            f"{series[name][index].value:>16.2f}" for name in names
        )
        lines.append(row)
    if unit:
        lines.append(f"  (values in {unit})")
    return "\n".join(lines)


def geometric_grid(start: float, stop: float, points: int) -> Tuple[float, ...]:
    """A geometric parameter grid inclusive of both ends."""
    if points < 2 or start <= 0 or stop <= start:
        raise ConfigurationError("need points >= 2 and 0 < start < stop")
    ratio = (stop / start) ** (1.0 / (points - 1))
    return tuple(start * ratio**i for i in range(points))
