"""One-call generators for every paper artifact (used by the CLI).

Each function returns the rendered text of one table/figure using the
same machinery as the benchmark harness, so
``python -m repro table1`` and ``pytest benchmarks/`` agree.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..baselines import make_all_queues
from ..core.matching import ALL_MATCHERS
from ..core.sizing import sweep_configurations
from ..core.words import PAPER_FORMAT
from ..net import (
    HardwareWFQSystem,
    out_of_order_service,
    throughput_shares,
    weighted_jain_index,
)
from ..net.scheduler_system import DEFAULT_CLOCK_HZ
from ..sched import DRRScheduler, VirtualClock, WFQScheduler, simulate
from ..silicon import (
    compare_technologies,
    estimate_sort_retrieve,
    render_table,
    required_random_cycle_ns,
)
from .complexity import measure_method, render_table1
from .distributions import TagDistributionProfiler, render_windows
from .sweeps import SweepPoint, render_series


def table1(populations: Sequence[int] = (256, 1024, 3072)) -> str:
    """Table I: worst-case accesses per method, measured."""
    measurements = []
    for population in populations:
        for name, queue in make_all_queues().items():
            measurements.append(
                measure_method(
                    queue,
                    population=population,
                    tag_range=4096,
                    seed=5,
                    workload="adversarial_high",
                )
            )
    return render_table1(measurements)


def table2() -> str:
    """Table II: the post-layout estimate."""
    return render_table(estimate_sort_retrieve())


def fig7() -> str:
    """Fig. 7: matcher delay vs word width."""
    series = {
        name: [
            SweepPoint(parameter=w, value=cls(w).delay())
            for w in (8, 16, 32, 64, 128)
        ]
        for name, cls in sorted(ALL_MATCHERS.items())
    }
    return render_series(
        "FIG. 7 (measured) — matcher delay vs word length",
        series,
        unit="unit-gate delays",
    )


def fig8() -> str:
    """Fig. 8: matcher area vs word width."""
    series = {
        name: [
            SweepPoint(parameter=w, value=cls(w).area_luts())
            for w in (8, 16, 32, 64, 128)
        ]
        for name, cls in sorted(ALL_MATCHERS.items())
    }
    return render_series(
        "FIG. 8 (measured) — matcher area vs word length",
        series,
        unit="equivalent 4-input LUTs",
    )


def fig6(windows: int = 8) -> str:
    """Fig. 6: the drifting new-tag distribution under WFQ."""
    from ..traffic import uniform_poisson

    scenario = uniform_poisson(flows=8, packets_per_flow=400, seed=4)
    clock = VirtualClock(scenario.rate_bps)
    for flow_id, weight in scenario.weights.items():
        clock.register(flow_id, weight)
    profiler = TagDistributionProfiler(window_s=0.05)
    for packet in scenario.trace:
        tags = clock.on_arrival(
            packet.flow_id, packet.size_bits, packet.arrival_time
        )
        profiler.record(packet.arrival_time, tags.finish_tag)
    return render_windows(profiler.profiles()[:windows])


def throughput() -> str:
    """Section IV: the 35.8 Mpps / 40 Gb/s chain."""
    system = HardwareWFQSystem(10e6)
    mpps = system.sustained_packets_per_second() / 1e6
    gbps = system.sustained_line_rate_bps(140) / 1e9
    estimate = estimate_sort_retrieve()
    return (
        "SECTION IV THROUGHPUT (measured)\n"
        f"  clock model:         {DEFAULT_CLOCK_HZ / 1e6:.1f} MHz / 4 "
        "cycles per operation\n"
        f"  packets per second:  {mpps:.1f} M   (paper: 35.8 M)\n"
        f"  line rate @140B:     {gbps:.1f} Gb/s (paper: 40)\n"
        f"  estimator clock:     {estimate.clock_mhz:.1f} MHz -> "
        f"{estimate.line_rate_gbps_at_140b:.1f} Gb/s\n"
        f"  vs 10 Gb/s vendors:  {gbps / 10:.1f}x (paper: ~4x)"
    )


def qos(seed: int = 7) -> str:
    """The WFQ-vs-round-robin QoS comparison on a mixed trace."""
    from ..traffic import voip_video_data_mix

    scenario = voip_video_data_mix(packets_per_flow=200, seed=seed)
    lines = [
        "QOS COMPARISON (measured)",
        f"  {'policy':<8} {'mean delay':>11} {'worst delay':>12} "
        f"{'inversions':>11} {'jain':>7}",
    ]
    builders = {
        "wfq": WFQScheduler,
        "hw_wfq": HardwareWFQSystem,
        "drr": DRRScheduler,
    }
    for name, cls in builders.items():
        scheduler = cls(scenario.rate_bps)
        for flow_id, weight in scenario.weights.items():
            scheduler.add_flow(flow_id, weight)
        result = simulate(scheduler, scenario.clone_trace())
        delays = [p.delay for p in result.packets]
        jain = weighted_jain_index(
            throughput_shares(result), scenario.weights
        )
        # Tag-order inversions only mean something for tag-based policies.
        has_tags = all(p.finish_tag is not None for p in result.packets)
        inversions = (
            f"{out_of_order_service(result)}" if has_tags else "n/a"
        )
        lines.append(
            f"  {name:<8} {sum(delays) / len(delays) * 1000:>9.2f}ms "
            f"{max(delays) * 1000:>10.2f}ms "
            f"{inversions:>11} {jain:>7.4f}"
        )
    return "\n".join(lines)


def memory() -> str:
    """External tag-storage technology comparison (Section III-C)."""
    lines = [
        "EXTERNAL TAG-STORAGE TECHNOLOGY (model)",
        f"  {'technology':<22} {'ns/op':>6} {'Gb/s @140B':>11} "
        f"{'links/device':>13}",
    ]
    for name, result in compare_technologies().items():
        lines.append(
            f"  {name:<22} {result.operation_time_ns:>6.1f} "
            f"{result.line_rate_gbps_at_140b:>11.1f} "
            f"{result.links_per_device:>13,}"
        )
    lines.append(
        f"  1 Tb/s would need {required_random_cycle_ns(1000.0, dual_port=True):.2f} ns "
        "QDR random cycles"
    )
    return "\n".join(lines)


def shapes() -> str:
    """Ablation A1: the 12-bit factorization sweep."""
    from ..core.matching import SelectLookaheadMatcher

    lines = [
        "BRANCHING-FACTOR SWEEP (12-bit tag space)",
        f"  {'levels x bits':>14} {'tree bits':>10} {'match delay':>12} "
        f"{'total delay':>12}",
    ]
    for budget in sweep_configurations(12):
        fmt = budget.fmt
        delay = SelectLookaheadMatcher(max(2, fmt.branching_factor)).delay()
        lines.append(
            f"  {fmt.levels:>7} x {fmt.literal_bits:<4} "
            f"{budget.total_bits:>10} {delay:>12.1f} "
            f"{delay * fmt.levels:>12.1f}"
        )
    return "\n".join(lines)


def fairness() -> str:
    """The WF²Q-vs-WFQ worst-case-fairness burst experiment."""
    from ..net.metrics import worst_work_lead
    from ..sched import GPSFluidSimulator, Packet, WF2QScheduler

    rate = 1e6
    lmax_bits = 1500 * 8

    def build(cls):
        scheduler = cls(rate)
        scheduler.add_flow(0, 0.5)
        for flow_id in range(1, 11):
            scheduler.add_flow(flow_id, 0.05)
        return scheduler

    trace = [Packet(0, 1500, 0.0) for _ in range(20)]
    for flow_id in range(1, 11):
        trace.extend(Packet(flow_id, 1500, 0.0) for _ in range(2))

    def clone(packets):
        return [
            Packet(p.flow_id, p.size_bytes, p.arrival_time,
                   packet_id=p.packet_id)
            for p in packets
        ]

    lines = [
        "WORST-CASE FAIRNESS (measured) — work served ahead of GPS",
        f"  {'policy':<6} {'heavy-flow lead':>16} {'any-flow lead':>14}",
    ]
    for cls in (WFQScheduler, WF2QScheduler):
        gps = GPSFluidSimulator(rate)
        gps.set_weight(0, 0.5)
        for flow_id in range(1, 11):
            gps.set_weight(flow_id, 0.05)
        gps.run(clone(trace))
        result = simulate(build(cls), clone(trace))
        leads = worst_work_lead(result, gps)
        lines.append(
            f"  {cls.name:<6} {leads[0] / lmax_bits:>13.2f} L "
            f"{max(leads.values()) / lmax_bits:>11.2f} L"
        )
    lines.append("  (L = one maximum packet; WF2Q bounds the lead at ~1 L)")
    return "\n".join(lines)


def e2e() -> str:
    """End-to-end delay bounds across chains of WFQ hops."""
    from ..net.multihop import (
        MultiHopNetwork,
        e2e_delay_bound,
        worst_flow_delay,
    )
    from ..traffic import CBRArrivals, FixedSize, PoissonArrivals, merge
    from ..traffic.packet_sizes import internet_mix

    rate = 10e6
    weights = {0: 0.2, 1: 0.4, 2: 0.4}

    def factory():
        scheduler = WFQScheduler(rate)
        for flow_id, weight in weights.items():
            scheduler.add_flow(flow_id, weight)
        return scheduler

    streams = [
        CBRArrivals(
            0, weights[0] * rate * 0.9 / (200 * 8), FixedSize(200), seed=9
        ).packets(100)
    ]
    for flow_id in (1, 2):
        streams.append(
            PoissonArrivals(
                flow_id,
                weights[flow_id] * rate * 0.9 / (internet_mix().mean() * 8),
                internet_mix(),
                seed=9,
            ).packets(100)
        )
    trace = merge(streams)
    lines = [
        "END-TO-END DELAY ACROSS WFQ HOPS (measured)",
        f"  {'hops':>5} {'worst e2e delay':>16} {'PG bound':>10}",
    ]
    for hops in (1, 2, 4):
        records = MultiHopNetwork([factory] * hops).run(trace)
        measured = worst_flow_delay(records, 0)
        bound = e2e_delay_bound(
            hops=hops,
            rate_bps=rate,
            guaranteed_rate_bps=weights[0] * rate,
            burst_bits=200 * 8,
            packet_bytes=200,
        )
        lines.append(
            f"  {hops:>5} {measured * 1000:>14.3f}ms {bound * 1000:>8.3f}ms"
        )
    return "\n".join(lines)


def demo() -> str:
    """A one-paragraph live proof: sorted service on the real circuit."""
    from ..core import TagSortRetrieveCircuit

    rng = random.Random(0)
    circuit = TagSortRetrieveCircuit(PAPER_FORMAT, capacity=4096)
    tag = 0
    for _ in range(500):
        tag = min(4095, tag + rng.randrange(0, 8))
        circuit.insert(tag)
    served = [circuit.dequeue_min().tag for _ in range(500)]
    assert served == sorted(served)
    return (
        "DEMO: 500 WFQ-ordered tags inserted and served in sorted order\n"
        f"  operations: {circuit.operations}, cycles: {circuit.cycles} "
        "(fixed 4 per op)\n"
        f"  total memory accesses: {circuit.total_stats().total}"
    )
