"""Tag-value distribution profiling over time (paper Fig. 6).

Fig. 6 shows the distribution of *new* tag values drifting forward as
virtual time advances: new tags range between roughly the current lowest
and highest live tags, with a traffic-dependent profile (VoIP skews left,
a diverse mix is bell-shaped).  :class:`TagDistributionProfiler` bins the
tag stream of a simulation into time windows and summarizes each window's
histogram so the drift and the shape can be checked quantitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..hwsim.errors import ConfigurationError


@dataclass(frozen=True)
class WindowProfile:
    """Histogram summary of the tags issued during one time window."""

    window_index: int
    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    skewness: float
    histogram: Tuple[int, ...]

    @property
    def spread(self) -> float:
        """max - min of the window's tags."""
        return self.maximum - self.minimum


class TagDistributionProfiler:
    """Bins (time, tag) samples into windows and profiles each."""

    def __init__(self, *, window_s: float, histogram_bins: int = 16) -> None:
        if window_s <= 0:
            raise ConfigurationError("window must be positive")
        if histogram_bins < 2:
            raise ConfigurationError("need at least two histogram bins")
        self.window_s = window_s
        self.histogram_bins = histogram_bins
        self._samples: List[Tuple[float, float]] = []

    def record(self, time_s: float, tag_value: float) -> None:
        """Add one (arrival time, new tag value) sample."""
        self._samples.append((time_s, tag_value))

    def record_many(self, samples: Sequence[Tuple[float, float]]) -> None:
        """Bulk add samples."""
        self._samples.extend(samples)

    def profiles(self) -> List[WindowProfile]:
        """Summarize every non-empty window in time order."""
        if not self._samples:
            return []
        windows: dict = {}
        for time_s, tag in self._samples:
            windows.setdefault(int(time_s / self.window_s), []).append(tag)
        out = []
        for index in sorted(windows):
            tags = windows[index]
            out.append(self._profile(index, tags))
        return out

    def _profile(self, index: int, tags: List[float]) -> WindowProfile:
        count = len(tags)
        mean = sum(tags) / count
        variance = sum((t - mean) ** 2 for t in tags) / count
        std = math.sqrt(variance)
        low, high = min(tags), max(tags)
        if std > 0:
            skewness = sum((t - mean) ** 3 for t in tags) / count / std**3
        else:
            skewness = 0.0
        histogram = [0] * self.histogram_bins
        span = max(high - low, 1e-12)
        for t in tags:
            bucket = min(
                self.histogram_bins - 1,
                int((t - low) / span * self.histogram_bins),
            )
            histogram[bucket] += 1
        return WindowProfile(
            window_index=index,
            count=count,
            mean=mean,
            std=std,
            minimum=low,
            maximum=high,
            skewness=skewness,
            histogram=tuple(histogram),
        )


def mean_drift_per_window(profiles: Sequence[WindowProfile]) -> Optional[float]:
    """Average forward movement of the window mean (Fig. 6's arrow).

    Positive for any live scheduler: virtual time only moves forward.
    """
    if len(profiles) < 2:
        return None
    deltas = [
        later.mean - earlier.mean
        for earlier, later in zip(profiles, profiles[1:])
    ]
    return sum(deltas) / len(deltas)


def render_windows(profiles: Sequence[WindowProfile], *, bar_width: int = 40) -> str:
    """ASCII rendition of the drifting histograms (a printable Fig. 6)."""
    lines = ["FIG. 6 (measured) — new-tag distribution per time window"]
    for profile in profiles:
        peak = max(profile.histogram) or 1
        bars = "".join(
            " .:-=+*#%@"[min(9, value * 9 // peak)] for value in profile.histogram
        )
        lines.append(
            f"  w{profile.window_index:<3} n={profile.count:<5} "
            f"mean={profile.mean:>12.1f} skew={profile.skewness:>+6.2f} |{bars}|"
        )
    return "\n".join(lines)
