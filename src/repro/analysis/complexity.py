"""Measured worst-case access counts per lookup method (Table I harness).

For each :class:`~repro.baselines.base.TagQueue` the harness drives
adversarial and random workloads, records per-operation memory-access
deltas with :class:`~repro.hwsim.stats.OperationProbe`, and reports the
worst case alongside the method's theoretical Table I complexity — the
measurement that regenerates the table rather than asserting it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..baselines.base import TagQueue
from ..hwsim.errors import ConfigurationError
from ..hwsim.stats import OperationProbe


@dataclass(frozen=True)
class MethodMeasurement:
    """Worst/average accesses for one method at one population size."""

    method: str
    model: str
    complexity: str
    population: int
    worst_insert: int
    worst_extract: int
    average_insert: float
    average_extract: float

    @property
    def worst_total(self) -> int:
        """Worst accesses of the method's binding operation.

        For sort-model methods the insert carries the lookup; for
        search-model methods the extract does.
        """
        if self.model == "sort":
            return self.worst_insert
        return self.worst_extract


def measure_method(
    queue: TagQueue,
    *,
    population: int,
    tag_range: int,
    seed: int = 0,
    churn_operations: int = 200,
    workload: str = "mixed",
) -> MethodMeasurement:
    """Measure one queue instance at a steady-state population.

    The workload fills the queue to ``population`` tags, then performs a
    churn phase of paired insert/extract operations (the steady state of
    a scheduler at full load) while probing each operation's access
    delta.  ``workload`` selects the tag distribution:

    * ``"mixed"`` — random values plus low-end clusters and extremes;
    * ``"adversarial_high"`` — tags cluster near the top of the range,
      the worst case for search-model methods (CAM probes and bin scans
      must walk the whole empty low range to find the minimum).
    """
    if population < 1:
        raise ConfigurationError("population must be positive")
    if workload not in ("mixed", "adversarial_high"):
        raise ConfigurationError(f"unknown workload {workload!r}")
    rng = random.Random(seed)
    insert_probe = OperationProbe()
    extract_probe = OperationProbe()

    def draw() -> int:
        choice = rng.random()
        if workload == "adversarial_high":
            if choice < 0.9:
                return tag_range - 1 - rng.randrange(max(1, tag_range // 8))
            return rng.randrange(tag_range)
        if choice < 0.6:
            return rng.randrange(tag_range)
        if choice < 0.8:
            # clustered: collide near a random hot spot
            return min(tag_range - 1, rng.randrange(tag_range // 8))
        # adjacent to the extremes
        return rng.choice((0, tag_range - 1, tag_range // 2))

    def probed(probe: OperationProbe, operation) -> None:
        # queue.stats may be a freshly aggregated view (the tree queue
        # sums several internal memories), so deltas are taken between
        # two snapshots of the *property*, not a held object.
        before = queue.stats.total
        operation()
        probe.samples.append(queue.stats.total - before)

    for _ in range(population):
        probed(insert_probe, lambda: queue.insert(draw()))
    for _ in range(churn_operations):
        probed(extract_probe, queue.extract_min)
        probed(insert_probe, lambda: queue.insert(draw()))
    return MethodMeasurement(
        method=queue.name,
        model=queue.model,
        complexity=queue.complexity,
        population=population,
        worst_insert=insert_probe.worst_case,
        worst_extract=extract_probe.worst_case,
        average_insert=insert_probe.average,
        average_extract=extract_probe.average,
    )


def measure_all(
    factories: Dict[str, Callable[[], TagQueue]],
    *,
    populations: Sequence[int] = (256, 1024, 3072),
    tag_range: int = 4096,
    seed: int = 0,
) -> List[MethodMeasurement]:
    """Measure every method at every population size."""
    results = []
    for name, factory in factories.items():
        for population in populations:
            queue = factory()
            results.append(
                measure_method(
                    queue,
                    population=population,
                    tag_range=tag_range,
                    seed=seed,
                )
            )
    return results


def scaling_exponent(measurements: List[MethodMeasurement]) -> float:
    """Log-log slope of worst-case accesses vs population.

    ~1.0 means O(N) (lists, CAM probes in the worst gap), ~0 means
    population-independent (the tree, TCAM) — the qualitative split of
    Table I.
    """
    import math

    points = sorted(
        (m.population, max(m.worst_total, 1)) for m in measurements
    )
    if len(points) < 2:
        raise ConfigurationError("need at least two population sizes")
    (n0, a0), (n1, a1) = points[0], points[-1]
    return math.log(a1 / a0) / math.log(n1 / n0)


def render_table1(measurements: List[MethodMeasurement]) -> str:
    """Format the measurements like the paper's Table I."""
    header = (
        f"{'method':<18} {'model':<7} {'N':>6} {'worst ins':>10} "
        f"{'worst ext':>10} {'complexity'}"
    )
    lines = ["TABLE I (measured) — worst-case accesses per operation", header]
    for m in measurements:
        lines.append(
            f"{m.method:<18} {m.model:<7} {m.population:>6} "
            f"{m.worst_insert:>10} {m.worst_extract:>10} {m.complexity}"
        )
    return "\n".join(lines)
