"""Timeline analysis over simulation results.

Reconstructs time-domain views from a
:class:`~repro.sched.base.SimulationResult`: link busy periods, backlog
(in packets and bits) over time, and per-flow service timelines.  These
are the views a router operator would plot — and the quantities behind
the paper's queueing arguments (busy-period boundaries are where the
WFQ/GPS coupling resets, backlog peaks size the packet buffer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..hwsim.errors import ConfigurationError
from ..sched.base import SimulationResult


@dataclass(frozen=True)
class BusyPeriod:
    """One maximal interval with the link continuously transmitting."""

    start: float
    end: float
    packets: int

    @property
    def duration(self) -> float:
        return self.end - self.start


def busy_periods(
    result: SimulationResult, *, gap_tolerance: float = 1e-12
) -> List[BusyPeriod]:
    """Maximal back-to-back transmission intervals.

    A packet whose transmission starts exactly when the previous one
    ends extends the current busy period; any positive idle gap closes
    it.  Transmission start is reconstructed as
    ``departure - size/rate``, using each packet's observed service time
    via its neighbors (the result carries departures only), so this
    needs the packets' delays to be consistent, which ``simulate``
    guarantees.
    """
    if not result.packets:
        return []
    periods: List[BusyPeriod] = []
    start: Optional[float] = None
    previous_end = None
    count = 0
    ordered = sorted(result.packets, key=lambda p: p.departure_time)
    for packet in ordered:
        service_start = max(
            packet.arrival_time,
            previous_end if previous_end is not None else packet.arrival_time,
        )
        if start is None:
            start = service_start
            count = 1
        elif service_start > previous_end + gap_tolerance:
            periods.append(
                BusyPeriod(start=start, end=previous_end, packets=count)
            )
            start = service_start
            count = 1
        else:
            count += 1
        previous_end = packet.departure_time
    periods.append(BusyPeriod(start=start, end=previous_end, packets=count))
    return periods


def backlog_series(
    result: SimulationResult, *, in_bits: bool = False
) -> List[Tuple[float, float]]:
    """(time, backlog) steps: +1 at each arrival, -1 at each departure.

    With ``in_bits`` the series counts queued bits instead of packets.
    The returned list is the right-continuous step function sampled at
    every event instant.
    """
    events: List[Tuple[float, float]] = []
    for packet in result.packets:
        amount = packet.size_bits if in_bits else 1
        events.append((packet.arrival_time, amount))
        if packet.departure_time is None:
            raise ConfigurationError("all packets must have departed")
        events.append((packet.departure_time, -amount))
    events.sort()
    series: List[Tuple[float, float]] = []
    level = 0.0
    for time, delta in events:
        level += delta
        if series and series[-1][0] == time:
            series[-1] = (time, level)
        else:
            series.append((time, level))
    return series


def peak_backlog(result: SimulationResult, *, in_bits: bool = False) -> float:
    """The buffer-sizing number: the largest simultaneous backlog."""
    series = backlog_series(result, in_bits=in_bits)
    return max((level for _, level in series), default=0.0)


def service_timeline(result: SimulationResult) -> Dict[int, List[float]]:
    """Per-flow departure instants, in service order."""
    timeline: Dict[int, List[float]] = {}
    for packet in sorted(result.packets, key=lambda p: p.departure_time):
        timeline.setdefault(packet.flow_id, []).append(packet.departure_time)
    return timeline


def utilization(result: SimulationResult) -> float:
    """Fraction of the makespan the link spent transmitting."""
    if result.finish_time <= 0:
        return 0.0
    busy = sum(period.duration for period in busy_periods(result))
    first_arrival = min(p.arrival_time for p in result.packets)
    horizon = result.finish_time - first_arrival
    if horizon <= 0:
        return 1.0
    return min(busy / horizon, 1.0)


def interleaving_index(result: SimulationResult) -> float:
    """How finely flows interleave on the wire: 0 = long per-flow runs,
    1 = every consecutive departure pair is from different flows.

    Fair queueing interleaves finely (GPS-like); round-robin with large
    quanta produces runs.  A direct, distribution-free fairness probe.
    """
    ordered = sorted(result.packets, key=lambda p: p.departure_time)
    if len(ordered) < 2:
        return 1.0
    switches = sum(
        1
        for earlier, later in zip(ordered, ordered[1:])
        if earlier.flow_id != later.flow_id
    )
    return switches / (len(ordered) - 1)
