"""Cycle clock and clocked-component protocol.

The sort/retrieve circuit of the paper is a synchronous design: the tree +
translation table consume four clock cycles per tag, matching the four
cycles (two reads, two writes) the tag storage memory needs per insert
(paper Section III-A).  This module provides the minimal synchronous
machinery: a :class:`Clock` that counts cycles and a
:class:`ClockedComponent` protocol whose ``tick`` is invoked once per cycle.
"""

from __future__ import annotations

from typing import List, Protocol, runtime_checkable

from .errors import ConfigurationError


@runtime_checkable
class ClockedComponent(Protocol):
    """Anything driven by the system clock."""

    def tick(self, cycle: int) -> None:
        """Advance the component by one clock cycle."""
        ...


class Clock:
    """A cycle counter driving a set of registered components.

    Components tick in registration order, which models a single-phase
    synchronous design with a deterministic evaluation order.
    """

    def __init__(self, frequency_hz: float = 150e6, *, tracer=None) -> None:
        if frequency_hz <= 0:
            raise ConfigurationError("clock frequency must be positive")
        self.frequency_hz = frequency_hz
        self.cycle = 0
        self._components: List[ClockedComponent] = []
        #: optional telemetry tracer; when enabled, each :meth:`step`
        #: call emits one ``clock_step`` event (per call, not per cycle,
        #: so long advances stay cheap).
        self.tracer = tracer

    @property
    def period_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.frequency_hz

    def register(self, component: ClockedComponent) -> None:
        """Attach a component so it ticks on every cycle."""
        self._components.append(component)

    def step(self, cycles: int = 1) -> int:
        """Advance the clock ``cycles`` cycles, ticking all components.

        Returns the cycle counter after advancing.
        """
        if cycles < 0:
            raise ConfigurationError("cannot step a negative number of cycles")
        for _ in range(cycles):
            for component in self._components:
                component.tick(self.cycle)
            self.cycle += 1
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.event("clock_step", cycles=cycles, cycle=self.cycle)
        return self.cycle

    def elapsed_s(self) -> float:
        """Wall-clock time represented by the cycles elapsed so far."""
        return self.cycle * self.period_s

    def cycles_for_seconds(self, seconds: float) -> int:
        """Number of whole cycles covering ``seconds`` of simulated time."""
        if seconds < 0:
            raise ConfigurationError("duration must be non-negative")
        return int(seconds * self.frequency_hz)
