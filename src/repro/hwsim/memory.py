"""Behavioral memory models with access accounting.

Three memory classes model the storage elements of the paper's circuit:

* :class:`RegisterFile` — the first two tree levels (272 bits total) are
  implemented in registers; any number of same-cycle accesses is legal.
* :class:`SinglePortSRAM` — the third tree level (4 kbit on-chip SRAM),
  the translation table and the off-chip tag storage SRAM; one access per
  cycle, and a second same-cycle access raises
  :class:`~repro.hwsim.errors.PortConflictError`.
* :class:`DualPortSRAM` — one read port plus one write port per cycle,
  used for ablation experiments on memory organisation.

All models store arbitrary Python objects per word so higher layers can
keep structured link records without bit packing, while the *accounting*
(reads, writes, port usage) stays faithful to the hardware.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .errors import AddressError, ConfigurationError, PortConflictError
from .stats import AccessStats


class _MemoryBase:
    """Common storage, bounds checking, and accounting."""

    def __init__(self, size: int, *, name: str = "mem", word_bits: int = 32) -> None:
        if size <= 0:
            raise ConfigurationError(f"{name}: size must be positive, got {size}")
        if word_bits <= 0:
            raise ConfigurationError(f"{name}: word_bits must be positive")
        self.name = name
        self.size = size
        self.word_bits = word_bits
        self.stats = AccessStats()
        self._cells: List[Any] = [None] * size

    @property
    def total_bits(self) -> int:
        """Capacity in bits (words x word width)."""
        return self.size * self.word_bits

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.size:
            raise AddressError(
                f"{self.name}: address {address} out of range [0, {self.size})"
            )

    def peek(self, address: int) -> Any:
        """Debug read that bypasses ports and accounting."""
        self._check_address(address)
        return self._cells[address]

    def poke(self, address: int, value: Any) -> None:
        """Debug write that bypasses ports and accounting."""
        self._check_address(address)
        self._cells[address] = value

    def clear(self) -> None:
        """Zero the contents (accounting is preserved)."""
        self._cells = [None] * self.size


class RegisterFile(_MemoryBase):
    """Register-based storage: unlimited same-cycle accesses.

    Models the top two tree levels, which the paper implements as flip-flop
    registers precisely because they need unconstrained parallel access.
    """

    def read(self, address: int) -> Any:
        """Read one word."""
        self._check_address(address)
        self.stats.record_read()
        return self._cells[address]

    def write(self, address: int, value: Any) -> None:
        """Write one word."""
        self._check_address(address)
        self.stats.record_write()
        self._cells[address] = value


class SinglePortSRAM(_MemoryBase):
    """One access (read *or* write) per clock cycle.

    The component must be ticked by the system clock (or have
    ``end_cycle`` called) to release the port between accesses.  When
    ``enforce_port`` is False the port rule is not checked, which lets
    pure-algorithm experiments reuse the same accounting without driving
    a clock.
    """

    def __init__(
        self,
        size: int,
        *,
        name: str = "sram",
        word_bits: int = 32,
        enforce_port: bool = True,
    ) -> None:
        super().__init__(size, name=name, word_bits=word_bits)
        self.enforce_port = enforce_port
        self._port_busy = False

    def tick(self, cycle: int) -> None:
        """Clock edge: release the access port."""
        self._port_busy = False

    def end_cycle(self) -> None:
        """Manually release the port (equivalent to one clock tick)."""
        self._port_busy = False

    def _claim_port(self) -> None:
        if self.enforce_port:
            if self._port_busy:
                raise PortConflictError(
                    f"{self.name}: second access in one cycle on a single port"
                )
            self._port_busy = True

    def read(self, address: int) -> Any:
        """Read one word, claiming the port for this cycle."""
        self._check_address(address)
        self._claim_port()
        self.stats.record_read()
        return self._cells[address]

    def write(self, address: int, value: Any) -> None:
        """Write one word, claiming the port for this cycle."""
        self._check_address(address)
        self._claim_port()
        self.stats.record_write()
        self._cells[address] = value


class DualPortSRAM(_MemoryBase):
    """One read port and one write port per cycle."""

    def __init__(
        self,
        size: int,
        *,
        name: str = "dpram",
        word_bits: int = 32,
        enforce_port: bool = True,
    ) -> None:
        super().__init__(size, name=name, word_bits=word_bits)
        self.enforce_port = enforce_port
        self._read_busy = False
        self._write_busy = False

    def tick(self, cycle: int) -> None:
        """Clock edge: release both ports."""
        self._read_busy = False
        self._write_busy = False

    def end_cycle(self) -> None:
        """Manually release both ports."""
        self.tick(0)

    def read(self, address: int) -> Any:
        """Read one word through the read port."""
        self._check_address(address)
        if self.enforce_port:
            if self._read_busy:
                raise PortConflictError(f"{self.name}: read port already used")
            self._read_busy = True
        self.stats.record_read()
        return self._cells[address]

    def write(self, address: int, value: Any) -> None:
        """Write one word through the write port."""
        self._check_address(address)
        if self.enforce_port:
            if self._write_busy:
                raise PortConflictError(f"{self.name}: write port already used")
            self._write_busy = True
        self.stats.record_write()
        self._cells[address] = value


def make_tree_level_memory(
    level: int,
    node_bits: int,
    node_count: int,
    *,
    register_levels: int = 2,
) -> _MemoryBase:
    """Build the storage for one tree level per the paper's layout.

    The first ``register_levels`` levels (the paper uses two: 272 bits in
    total for the 3-level/16-bit configuration) are registers; deeper
    levels are single-port on-chip SRAM.
    """
    name = f"tree_level_{level}"
    if level < register_levels:
        return RegisterFile(node_count, name=name, word_bits=node_bits)
    return SinglePortSRAM(
        node_count, name=name, word_bits=node_bits, enforce_port=False
    )


__all__ = [
    "RegisterFile",
    "SinglePortSRAM",
    "DualPortSRAM",
    "make_tree_level_memory",
]
