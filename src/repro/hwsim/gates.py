"""Unit-gate delay and area model for combinational matching circuits.

The paper's Figs. 7 and 8 compare five closest-match circuit topologies by
propagation delay and logic area (FPGA LUTs).  To regenerate those curves
without a synthesis flow we use the classic *unit-gate model* from the
adder-design literature the circuits derive from (the circuits are
"based on modified adder carry chain acceleration techniques", paper
Section III-B):

* a 2-input monotone gate (AND/OR/NAND/NOR) costs 1 delay unit, 1 area unit;
* XOR/XNOR and a 2:1 MUX cost 2 delay units, 2 area units;
* an n-input gate decomposes into a balanced tree of 2-input gates:
  ceil(log2(n)) delay, (n - 1) area;
* an inverter is free in delay terms (absorbed into adjacent gates) and
  costs 0.5 area units.

For Fig. 8 the paper measures *FPGA LUTs* (Altera Stratix II, 4-input
fracturable ALMs).  We map gate-level area onto LUTs with
:func:`gates_to_luts`, using the standard heuristic that one 4-LUT absorbs
roughly the logic of three 2-input gates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import ConfigurationError

GATE_DELAY = 1.0
XOR_DELAY = 2.0
MUX_DELAY = 2.0
GATE_AREA = 1.0
XOR_AREA = 2.0
MUX_AREA = 2.0
INVERTER_AREA = 0.5
GATES_PER_LUT = 3.0


@dataclass(frozen=True)
class Cost:
    """A (delay, area) pair in unit-gate terms.

    ``delay`` composes along the critical path (serial = add, parallel =
    max); ``area`` always adds.
    """

    delay: float
    area: float

    def then(self, other: "Cost") -> "Cost":
        """Serial composition: other's logic follows this one."""
        return Cost(self.delay + other.delay, self.area + other.area)

    def alongside(self, other: "Cost") -> "Cost":
        """Parallel composition: both evaluate concurrently."""
        return Cost(max(self.delay, other.delay), self.area + other.area)

    @staticmethod
    def zero() -> "Cost":
        """The identity for both compositions."""
        return Cost(0.0, 0.0)


def gate(inputs: int = 2) -> Cost:
    """Cost of an ``inputs``-input monotone gate (balanced-tree decomposed)."""
    if inputs < 1:
        raise ConfigurationError("a gate needs at least one input")
    if inputs == 1:
        return Cost(0.0, INVERTER_AREA)
    depth = math.ceil(math.log2(inputs))
    return Cost(depth * GATE_DELAY, (inputs - 1) * GATE_AREA)


def and_gate(inputs: int = 2) -> Cost:
    """n-input AND."""
    return gate(inputs)


def or_gate(inputs: int = 2) -> Cost:
    """n-input OR."""
    return gate(inputs)


def xor_gate() -> Cost:
    """2-input XOR."""
    return Cost(XOR_DELAY, XOR_AREA)


def mux2() -> Cost:
    """2:1 multiplexer."""
    return Cost(MUX_DELAY, MUX_AREA)


def mux(ways: int) -> Cost:
    """``ways``:1 multiplexer built as a tree of 2:1 muxes."""
    if ways < 1:
        raise ConfigurationError("mux needs at least one input")
    if ways == 1:
        return Cost.zero()
    depth = math.ceil(math.log2(ways))
    return Cost(depth * MUX_DELAY, (ways - 1) * MUX_AREA)


def priority_chain(length: int) -> Cost:
    """Cost of a ripple priority chain of ``length`` cells.

    Each cell is one AND-OR pair propagating a "not found yet" signal,
    which is the fundamental structure of the ripple matcher.
    """
    if length < 0:
        raise ConfigurationError("chain length must be non-negative")
    cell = gate(2).then(gate(2))
    return Cost(length * cell.delay, length * cell.area)


def gates_to_luts(area_units: float) -> float:
    """Convert unit-gate area to an equivalent 4-input LUT count."""
    if area_units < 0:
        raise ConfigurationError("area must be non-negative")
    return area_units / GATES_PER_LUT


def fanout_buffer(fanout: int) -> Cost:
    """Delay/area of buffering a signal to ``fanout`` loads.

    Modeled as a balanced buffer tree: log4 stages of unit delay.
    High-fanout select lines dominate select & look-ahead circuits at
    large word widths, which is why its curve flattens but never reaches
    zero slope in Fig. 7.
    """
    if fanout < 1:
        raise ConfigurationError("fanout must be at least 1")
    if fanout == 1:
        return Cost.zero()
    stages = math.ceil(math.log(fanout, 4))
    return Cost(stages * GATE_DELAY, stages * GATE_AREA)


__all__ = [
    "Cost",
    "gate",
    "and_gate",
    "or_gate",
    "xor_gate",
    "mux",
    "mux2",
    "priority_chain",
    "fanout_buffer",
    "gates_to_luts",
    "GATE_DELAY",
    "GATE_AREA",
    "GATES_PER_LUT",
]
