"""Access and cycle accounting shared by every simulated component.

The paper's Table I compares lookup methods by their *worst-case number of
memory accesses per operation*.  To regenerate that table we instrument
every memory model and every baseline sorter with an :class:`AccessStats`
counter, and track per-operation peaks with :class:`OperationProbe`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class AccessStats:
    """Running totals of memory traffic for one component."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Total accesses (reads + writes)."""
        return self.reads + self.writes

    def record_read(self, count: int = 1) -> None:
        """Account for ``count`` read accesses."""
        self.reads += count

    def record_write(self, count: int = 1) -> None:
        """Account for ``count`` write accesses."""
        self.writes += count

    def record_bulk(self, *, reads: int = 0, writes: int = 0) -> None:
        """Flush one batch of accumulated accesses in a single update.

        The batched fast paths count their memory traffic in local
        integers and deposit it here once per batch, instead of paying
        one attribute increment per access.
        """
        if reads < 0 or writes < 0:
            raise ValueError("bulk access counts must be non-negative")
        self.reads += reads
        self.writes += writes

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready ``{"reads": ..., "writes": ...}`` view."""
        return {"reads": self.reads, "writes": self.writes}

    def snapshot(self) -> "AccessStats":
        """Return an independent copy of the current totals."""
        return AccessStats(reads=self.reads, writes=self.writes)

    def delta_since(self, earlier: "AccessStats") -> "AccessStats":
        """Return accesses accumulated since ``earlier`` was snapshotted."""
        return AccessStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
        )

    def reset(self) -> None:
        """Zero the counters."""
        self.reads = 0
        self.writes = 0


@dataclass
class OperationProbe:
    """Tracks per-operation access costs and their worst case.

    Usage::

        probe = OperationProbe()
        with probe.operation(stats):
            queue.insert(tag)
        probe.worst_case  # max accesses any single insert needed

    An operation that raises still consumed memory bandwidth up to the
    failure point, so its partial delta is recorded too — in
    :attr:`samples` (worst-case accounting must see error paths) and in
    :attr:`failed_samples`, which tags it as failed.
    """

    samples: List[int] = field(default_factory=list)
    failed_samples: List[int] = field(default_factory=list)

    class _Scope:
        def __init__(self, probe: "OperationProbe", stats: AccessStats):
            self._probe = probe
            self._stats = stats
            self._before: Optional[AccessStats] = None

        def __enter__(self) -> "OperationProbe._Scope":
            self._before = self._stats.snapshot()
            return self

        def __exit__(self, exc_type, exc, tb) -> None:
            if self._before is None:
                return
            delta = self._stats.delta_since(self._before)
            self._probe.samples.append(delta.total)
            if exc_type is not None:
                self._probe.failed_samples.append(delta.total)

    def operation(self, stats: AccessStats) -> "_Scope":
        """Context manager recording one operation's access delta."""
        return OperationProbe._Scope(self, stats)

    @property
    def failure_count(self) -> int:
        """Number of recorded operations that raised."""
        return len(self.failed_samples)

    @property
    def worst_case(self) -> int:
        """Largest access count observed for a single operation."""
        return max(self.samples) if self.samples else 0

    @property
    def average(self) -> float:
        """Mean access count per operation."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def count(self) -> int:
        """Number of operations observed."""
        return len(self.samples)

    def reset(self) -> None:
        """Forget all samples."""
        self.samples.clear()
        self.failed_samples.clear()


class StatsRegistry:
    """Aggregates named :class:`AccessStats` across a composed system.

    Composite components (the sort/retrieve circuit, the full scheduler)
    register the counters of their internal memories under descriptive
    names so experiments can attribute traffic to individual structures.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, AccessStats] = {}

    def register(
        self, name: str, stats: AccessStats, *, replace: bool = False
    ) -> AccessStats:
        """Register ``stats`` under ``name``; returns the same object.

        A duplicate name is rejected unless ``replace=True``, which swaps
        the counter in place — the escape hatch for re-created circuits
        that want to keep publishing under a stable name in long-running
        sessions.
        """
        if name in self._entries and not replace:
            raise ValueError(f"duplicate stats registration: {name!r}")
        self._entries[name] = stats
        return stats

    def unregister(self, name: str) -> AccessStats:
        """Drop (and return) the counter registered under ``name``."""
        try:
            return self._entries.pop(name)
        except KeyError:
            raise KeyError(f"no stats registered under {name!r}") from None

    def __getitem__(self, name: str) -> AccessStats:
        return self._entries[name]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def names(self) -> List[str]:
        """Registered component names, in registration order."""
        return list(self._entries)

    def total(self) -> AccessStats:
        """Sum of all registered counters."""
        combined = AccessStats()
        for stats in self._entries.values():
            combined.reads += stats.reads
            combined.writes += stats.writes
        return combined

    def record_bulk(self, name: str, *, reads: int = 0, writes: int = 0) -> None:
        """Deposit one batch of accesses on the named component."""
        self._entries[name].record_bulk(reads=reads, writes=writes)

    def snapshot_all(self) -> Dict[str, AccessStats]:
        """Independent copies of every registered counter, by name.

        The returned dict is the argument :meth:`deltas_since` expects;
        together they let a tracer attribute a span's memory traffic to
        individual structures without resetting anything.
        """
        return {name: stats.snapshot() for name, stats in self._entries.items()}

    def deltas_since(
        self, earlier: Dict[str, AccessStats]
    ) -> Dict[str, AccessStats]:
        """Per-structure traffic accumulated since :meth:`snapshot_all`.

        Structures registered after the snapshot contribute their full
        totals (delta from zero); structures unregistered since are
        absent.  Zero-delta entries are omitted so sparse spans stay
        sparse.
        """
        deltas: Dict[str, AccessStats] = {}
        for name, stats in self._entries.items():
            before = earlier.get(name)
            delta = stats.delta_since(before) if before is not None else stats.snapshot()
            if delta.reads or delta.writes:
                deltas[name] = delta
        return deltas

    def reset_all(self) -> None:
        """Zero every registered counter."""
        for stats in self._entries.values():
            stats.reset()
