"""Error hierarchy for the hardware behavioral-simulation substrate.

Every failure raised by a simulated hardware component derives from
:class:`HardwareSimulationError`, so callers can distinguish modelling
errors (bad parameters, misuse of a component) from genuine Python bugs.
"""

from __future__ import annotations


class HardwareSimulationError(Exception):
    """Base class for all simulated-hardware failures."""


class ConfigurationError(HardwareSimulationError):
    """A component was constructed with invalid parameters."""


class AddressError(HardwareSimulationError):
    """A memory access targeted an address outside the component."""


class PortConflictError(HardwareSimulationError):
    """Two accesses contended for a single memory port in one cycle.

    The paper's level-3 tree memory and the translation table are
    single-port SRAMs; issuing two accesses in the same cycle is a
    design bug the simulator must surface rather than silently serialize.
    """


class CapacityError(HardwareSimulationError):
    """A bounded structure (linked list memory, buffer) overflowed."""


class ProtocolError(HardwareSimulationError):
    """A component was driven outside its legal cycle protocol.

    Example: reading the tag sort/retrieve result before the fixed
    four-cycle operation window has elapsed.
    """


class EmptyStructureError(HardwareSimulationError):
    """A dequeue/extract-min was issued against an empty structure."""
