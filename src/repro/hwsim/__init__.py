"""Hardware behavioral-simulation substrate.

Clocked components, memory models with access accounting, a unit-gate
delay/area model, and hardware counters.  Everything the circuit models in
:mod:`repro.core` are built from lives here.
"""

from .clock import Clock, ClockedComponent
from .counters import SaturatingCounter, WrappingCounter
from .errors import (
    AddressError,
    CapacityError,
    ConfigurationError,
    EmptyStructureError,
    HardwareSimulationError,
    PortConflictError,
    ProtocolError,
)
from .gates import Cost, gates_to_luts
from .memory import (
    DualPortSRAM,
    RegisterFile,
    SinglePortSRAM,
    make_tree_level_memory,
)
from .stats import AccessStats, OperationProbe, StatsRegistry

__all__ = [
    "Clock",
    "ClockedComponent",
    "SaturatingCounter",
    "WrappingCounter",
    "AddressError",
    "CapacityError",
    "ConfigurationError",
    "EmptyStructureError",
    "HardwareSimulationError",
    "PortConflictError",
    "ProtocolError",
    "Cost",
    "gates_to_luts",
    "DualPortSRAM",
    "RegisterFile",
    "SinglePortSRAM",
    "make_tree_level_memory",
    "AccessStats",
    "OperationProbe",
    "StatsRegistry",
]
