"""Hardware counter models.

The tag storage memory allocates fresh linked-list slots from an
initialization counter that increments from 0 to M-1 and then stops
(paper Section III-C / Fig. 10); after that, free slots come only from the
empty list.  The WFQ tag space itself wraps around a finite maximum
(Fig. 6), which :class:`WrappingCounter` models.
"""

from __future__ import annotations

from .errors import ConfigurationError


class SaturatingCounter:
    """Counts 0..limit and then holds at ``limit``."""

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ConfigurationError("limit must be non-negative")
        self.limit = limit
        self.value = 0

    @property
    def saturated(self) -> bool:
        """True once the counter has reached its limit."""
        return self.value >= self.limit

    def increment(self) -> int:
        """Advance by one (no-op when saturated); returns the new value."""
        if not self.saturated:
            self.value += 1
        return self.value

    def take(self) -> int:
        """Return the current value and advance.

        This is the allocation idiom: the pre-increment value is the
        address handed out.  Raises once saturated.
        """
        if self.saturated:
            raise ConfigurationError("allocation counter exhausted")
        current = self.value
        self.value += 1
        return current

    def reset(self) -> None:
        """Return to zero."""
        self.value = 0


class WrappingCounter:
    """Counts modulo ``modulus``, reporting wrap events."""

    def __init__(self, modulus: int, *, start: int = 0) -> None:
        if modulus <= 0:
            raise ConfigurationError("modulus must be positive")
        if not 0 <= start < modulus:
            raise ConfigurationError("start must lie in [0, modulus)")
        self.modulus = modulus
        self.value = start
        self.wraps = 0

    def increment(self, amount: int = 1) -> int:
        """Advance by ``amount`` (which may exceed the modulus)."""
        if amount < 0:
            raise ConfigurationError("amount must be non-negative")
        raw = self.value + amount
        self.wraps += raw // self.modulus
        self.value = raw % self.modulus
        return self.value

    def distance_to(self, other: int) -> int:
        """Forward (modular) distance from the current value to ``other``."""
        if not 0 <= other < self.modulus:
            raise ConfigurationError("target must lie in [0, modulus)")
        return (other - self.value) % self.modulus
