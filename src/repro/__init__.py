"""repro — behavioral reproduction of McLaughlin et al., "A Scalable
Packet Sorting Circuit for High-Speed WFQ Packet Scheduling".

Packages:

* :mod:`repro.core` — the tag sort/retrieve circuit (multi-bit tree,
  matching circuits, translation table, linked-list tag storage).
* :mod:`repro.hwsim` — the clocked-hardware simulation substrate.
* :mod:`repro.baselines` — every Table I lookup method.
* :mod:`repro.sched` — GPS/WFQ/WF²Q/WF²Q+/SCFQ/FBFQ and the round-robin
  family, plus the single-link simulator.
* :mod:`repro.traffic` — packet-size models, arrival processes, scenarios.
* :mod:`repro.net` — the full Fig. 1 scheduler system and QoS metrics.
* :mod:`repro.silicon` — the Table II area/power/timing estimator.
* :mod:`repro.analysis` — complexity measurement, distribution profiling,
  sweep utilities.

Quick start::

    from repro.core import TagSortRetrieveCircuit

    circuit = TagSortRetrieveCircuit()
    circuit.insert(15, payload="pkt-a")
    circuit.insert(17, payload="pkt-b")
    circuit.insert(16, payload="pkt-c")   # the Fig. 9 walkthrough
    served = circuit.dequeue_min()        # tag 15, in fixed time
"""

__version__ = "1.0.0"

from .core import TagSortRetrieveCircuit  # noqa: F401  (primary entry point)

__all__ = ["TagSortRetrieveCircuit", "__version__"]
