"""Shard occupancy management: overflow spill and online rebalancing.

A static partition is only as good as the workload is uniform.  Two
mechanisms keep a skewed fabric serviceable:

* **Spill-to-neighbor** — when a flow's pinned shard is nearly full
  (``spill_threshold`` of its capacity), the *enqueue* is diverted to
  the shard with the most free room instead of dropping or blocking.
  Spilled tags still compete in the tournament, so global service order
  is unaffected; only the within-flow FCFS tie discipline can shift by
  one quantum, which the paper already concedes to quantization.

* **Threshold rebalancing** — when occupancies diverge past
  ``rebalance_ratio`` (and the fabric holds enough backlog for the move
  to matter), the hottest flows of the fullest shard are re-pinned to
  the emptiest shard via partitioner overrides.  By default
  (``migrate_backlog``) the moved flows' queued entries migrate too —
  remove-by-handle on the old shard, re-enqueue at the identical tag on
  the new — so the skew that armed the rebalance shrinks immediately;
  every relocation is announced to registered listeners so outstanding
  handles stay valid.  With ``migrate_backlog=False`` moves affect
  *future arrivals only*: live tags drain where they sit, and
  within-flow order is preserved because the old shard's tags for that
  flow all precede the new shard's.

Both mechanisms are deterministic (pure functions of occupancy and flow
ids) so traced fabric runs replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hwsim.errors import ConfigurationError
from .partitioner import FlowPartitioner


@dataclass(frozen=True)
class FabricPolicy:
    """Tunable thresholds for spill and rebalancing.

    Attributes:
        spill_threshold: home-shard fill fraction above which an enqueue
            diverts to the roomiest shard (1.0 disables spilling until
            the shard is literally full).
        rebalance_ratio: occupancy ratio ``(max+1)/(min+1)`` that arms a
            rebalance.
        rebalance_min_backlog: total live tags required before a
            rebalance may fire (tiny backlogs self-correct).
        rebalance_cooldown_ops: fabric operations that must elapse
            between rebalances (hysteresis).
        max_moves_per_rebalance: flow re-pins per rebalance event.
        migrate_backlog: when re-pinning a flow, also move its queued
            entries from the old shard to the new one (remove-by-handle
            + re-enqueue at the same tag), so the occupancy skew that
            armed the rebalance actually shrinks instead of waiting for
            the hot shard to drain.  Disable to restore the legacy
            future-arrivals-only behavior.
    """

    spill_threshold: float = 0.9
    rebalance_ratio: float = 4.0
    rebalance_min_backlog: int = 512
    rebalance_cooldown_ops: int = 1024
    max_moves_per_rebalance: int = 4
    migrate_backlog: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.spill_threshold <= 1.0:
            raise ConfigurationError("spill_threshold must be in (0, 1]")
        if self.rebalance_ratio < 1.0:
            raise ConfigurationError("rebalance_ratio must be >= 1")
        if self.rebalance_min_backlog < 0:
            raise ConfigurationError("rebalance_min_backlog must be >= 0")
        if self.rebalance_cooldown_ops < 0:
            raise ConfigurationError("rebalance_cooldown_ops must be >= 0")
        if self.max_moves_per_rebalance < 1:
            raise ConfigurationError("max_moves_per_rebalance must be >= 1")

    def to_dict(self) -> dict:
        return {
            "spill_threshold": self.spill_threshold,
            "rebalance_ratio": self.rebalance_ratio,
            "rebalance_min_backlog": self.rebalance_min_backlog,
            "rebalance_cooldown_ops": self.rebalance_cooldown_ops,
            "max_moves_per_rebalance": self.max_moves_per_rebalance,
            "migrate_backlog": self.migrate_backlog,
        }


@dataclass
class RebalancePlan:
    """One rebalance decision: which flows move where, and why."""

    source: int
    target: int
    moves: List[Tuple[int, int]] = field(default_factory=list)
    ratio_before: float = 0.0

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "target": self.target,
            "moves": [list(move) for move in self.moves],
            "ratio_before": self.ratio_before,
        }


class ShardManager:
    """Routes enqueues and plans rebalances for a shard set."""

    def __init__(
        self,
        partitioner: FlowPartitioner,
        *,
        shard_capacity: int,
        policy: Optional[FabricPolicy] = None,
    ) -> None:
        if shard_capacity < 1:
            raise ConfigurationError("shard_capacity must be positive")
        self.partitioner = partitioner
        self.shard_capacity = shard_capacity
        self.policy = policy if policy is not None else FabricPolicy()
        self.shards = partitioner.shards
        #: enqueues diverted off their pinned shard
        self.spill_count = 0
        #: rebalance events fired
        self.rebalance_count = 0
        #: flow re-pins applied across all rebalances
        self.flows_moved = 0
        #: queued entries physically migrated between shards
        self.entries_migrated = 0
        self._last_rebalance_ops: Optional[int] = None

    # ------------------------------------------------------------------
    # routing

    def route(
        self, flow_id: int, occupancies: List[int]
    ) -> Tuple[int, bool]:
        """Pick the shard for one enqueue.

        Returns ``(shard, spilled)``.  The pinned shard wins unless it
        sits at or above the spill threshold, in which case the enqueue
        diverts to the shard with the most free room (lowest index on
        ties).  If every shard is equally pressed the pin stands — the
        per-shard circuit's own capacity check is the final arbiter.
        """
        home = self.partitioner.shard_for(flow_id)
        if self.shards == 1:
            return home, False
        limit = self.policy.spill_threshold * self.shard_capacity
        if occupancies[home] < limit:
            return home, False
        roomiest = min(range(self.shards), key=lambda s: (occupancies[s], s))
        if roomiest == home or occupancies[roomiest] >= occupancies[home]:
            return home, False
        self.spill_count += 1
        return roomiest, True

    # ------------------------------------------------------------------
    # rebalancing

    def plan_rebalance(
        self,
        occupancies: List[int],
        flow_live: Dict[int, int],
        total_ops: int,
    ) -> Optional[RebalancePlan]:
        """Decide whether (and how) to rebalance; apply the overrides.

        ``flow_live`` maps flow id → live tag count across the fabric.
        A returned plan has already been applied to the partitioner.
        """
        if self.shards == 1:
            return None
        policy = self.policy
        if sum(occupancies) < policy.rebalance_min_backlog:
            return None
        if (
            self._last_rebalance_ops is not None
            and total_ops - self._last_rebalance_ops
            < policy.rebalance_cooldown_ops
        ):
            return None
        hot = max(range(self.shards), key=lambda s: (occupancies[s], -s))
        cool = min(range(self.shards), key=lambda s: (occupancies[s], s))
        ratio = (occupancies[hot] + 1) / (occupancies[cool] + 1)
        if ratio < policy.rebalance_ratio:
            return None
        # Hottest flows currently pinned to the hot shard, busiest first;
        # flow id breaks ties so the plan is deterministic.
        candidates = sorted(
            (
                (live, flow_id)
                for flow_id, live in flow_live.items()
                if live > 0 and self.partitioner.shard_for(flow_id) == hot
            ),
            key=lambda item: (-item[0], item[1]),
        )
        if not candidates:
            return None
        plan = RebalancePlan(source=hot, target=cool, ratio_before=ratio)
        for live, flow_id in candidates[: policy.max_moves_per_rebalance]:
            self.partitioner.assign(flow_id, cool)
            plan.moves.append((flow_id, live))
        self.rebalance_count += 1
        self.flows_moved += len(plan.moves)
        self._last_rebalance_ops = total_ops
        return plan

    # ------------------------------------------------------------------
    # introspection / checkpoint

    def describe(self) -> dict:
        return {
            "shards": self.shards,
            "shard_capacity": self.shard_capacity,
            "policy": self.policy.to_dict(),
            "spill_count": self.spill_count,
            "rebalance_count": self.rebalance_count,
            "flows_moved": self.flows_moved,
            "entries_migrated": self.entries_migrated,
        }

    def to_state(self) -> dict:
        return {
            "kind": "shard_manager",
            "shard_capacity": self.shard_capacity,
            "policy": self.policy.to_dict(),
            "spill_count": self.spill_count,
            "rebalance_count": self.rebalance_count,
            "flows_moved": self.flows_moved,
            "entries_migrated": self.entries_migrated,
            "last_rebalance_ops": self._last_rebalance_ops,
        }

    def load_state(self, state: dict) -> None:
        if state.get("kind") != "shard_manager":
            raise ConfigurationError(
                f"not a shard manager snapshot: kind={state.get('kind')!r}"
            )
        if state["shard_capacity"] != self.shard_capacity:
            raise ConfigurationError(
                "shard manager snapshot capacity does not match"
            )
        self.policy = FabricPolicy(**state["policy"])
        self.spill_count = state["spill_count"]
        self.rebalance_count = state["rebalance_count"]
        self.flows_moved = state["flows_moved"]
        self.entries_migrated = state.get("entries_migrated", 0)
        self._last_rebalance_ops = state["last_rebalance_ops"]
