"""Sharded multi-circuit scheduling fabric.

The paper scales one sort/retrieve circuit vertically (wider tags,
deeper trie); this package adds the orthogonal axis: **N independent
circuits side by side** behind a single scheduler facade, the way
software schedulers partition flows across cheap priority structures
(Eiffel) and programmable ones compose sorted queues behind one dequeue
point (the PIFO line).

* :mod:`repro.fabric.partitioner` — :class:`FlowPartitioner`: hash and
  range flow-to-shard pinning, with per-flow overrides for rebalancing;
* :mod:`repro.fabric.tournament` — :class:`TournamentAggregator`: a
  reduction tree over per-shard head registers selecting the global
  minimum tag in O(log N) wrap-aware comparisons — the paper's
  multi-bit tree idea applied one level up;
* :mod:`repro.fabric.manager` — :class:`ShardManager` and
  :class:`FabricPolicy`: overflow spill-to-neighbor and threshold-
  triggered online rebalancing;
* :mod:`repro.fabric.fabric` — :class:`ScheduleFabric`: the facade
  wiring shards, tournament, manager, telemetry, and
  checkpoint/restore together;
* :mod:`repro.fabric.workers` — the optional process-parallel batch
  backend built on the circuit state snapshots;
* :mod:`repro.fabric.runner` — the ``python -m repro fabric`` driver
  (imported lazily by the CLI).
"""

from .fabric import ScheduleFabric
from .manager import FabricPolicy, ShardManager
from .partitioner import FlowPartitioner
from .tournament import TournamentAggregator

__all__ = [
    "FabricPolicy",
    "FlowPartitioner",
    "ScheduleFabric",
    "ShardManager",
    "TournamentAggregator",
]
