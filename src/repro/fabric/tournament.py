"""The tournament aggregator: a reduction tree over shard head registers.

Every shard's sort/retrieve circuit latches its minimum tag in a head
register (:meth:`repro.core.sort_retrieve.TagSortRetrieveCircuit.peek_min`
— zero memory cost).  Selecting the *global* minimum across N shards is
then a pure register problem, and this module solves it the same way the
paper's multi-bit tree solves the within-circuit problem: a balanced
binary reduction tree whose internal nodes cache their subtree's winner.

When one shard's head changes (a push or pop on that shard), only the
nodes on its leaf-to-root path are recomputed — **O(log N) comparisons
per update**, counted in :attr:`TournamentAggregator.comparisons` so the
benchmarks can report aggregation overhead exactly.

Ordering is **wrap-aware**: raw tags live in the circuits' cyclical
Fig. 6 tag space, so comparisons use the serial-number rule — ``a``
precedes ``b`` iff the wrapped distance ``(a - b) mod space`` is at
least half the space — which is unambiguous exactly while the live span
stays under half the tag space (the same window the per-circuit span
guard enforces).  Ties break toward the lower shard index, giving the
fabric a deterministic FCFS-by-shard discipline for equal quanta.
"""

from __future__ import annotations

from typing import List, Optional

from ..hwsim.errors import ConfigurationError


class TournamentAggregator:
    """Incremental winner tree over per-shard minimum tags."""

    def __init__(self, leaves: int, *, space: Optional[int] = None) -> None:
        if leaves < 1:
            raise ConfigurationError("tournament needs at least one leaf")
        if space is not None and space < 2:
            raise ConfigurationError("tag space must be at least 2")
        self.leaves = leaves
        self.space = space
        self._half = space // 2 if space is not None else None
        size = 1
        while size < leaves:
            size <<= 1
        self._size = size
        #: per-leaf head tag (None = shard empty)
        self._tags: List[Optional[int]] = [None] * leaves
        #: heap-shaped winner tree: node i's children are 2i and 2i+1,
        #: leaves occupy [size, size+leaves); cells hold the winning
        #: *leaf index* (None = empty subtree).  The root is node 1.
        self._nodes: List[Optional[int]] = [None] * (2 * size)
        #: head-to-head comparisons performed over the aggregator's life
        self.comparisons = 0
        #: leaf updates processed
        self.updates = 0

    # ------------------------------------------------------------------
    # ordering

    def precedes(self, a: int, b: int) -> bool:
        """True when tag ``a`` strictly precedes ``b`` in service order."""
        if self.space is None:
            return a < b
        return (a - b) % self.space >= self._half

    def _pick(self, left: Optional[int], right: Optional[int]) -> Optional[int]:
        """Winner of two leaf indices (left always has the lower index)."""
        if left is None:
            return right
        if right is None:
            return left
        self.comparisons += 1
        # Tie → left, i.e. the lower shard index (FCFS across shards).
        if self.precedes(self._tags[right], self._tags[left]):
            return right
        return left

    # ------------------------------------------------------------------
    # updates

    def update(self, leaf: int, tag: Optional[int]) -> int:
        """Set one shard's head tag; replays its leaf-to-root path.

        Returns the number of comparisons this update performed
        (<= ceil(log2 N); empty siblings compare for free, as in
        hardware where a valid bit gates the comparator).
        """
        if not 0 <= leaf < self.leaves:
            raise ConfigurationError(
                f"leaf {leaf} outside [0, {self.leaves})"
            )
        before = self.comparisons
        self.updates += 1
        self._tags[leaf] = tag
        node = self._size + leaf
        self._nodes[node] = leaf if tag is not None else None
        node >>= 1
        while node:
            self._nodes[node] = self._pick(
                self._nodes[2 * node], self._nodes[2 * node + 1]
            )
            node >>= 1
        return self.comparisons - before

    def rebuild(self, tags: List[Optional[int]]) -> None:
        """Reload every leaf at once (restore / worker-return path)."""
        if len(tags) != self.leaves:
            raise ConfigurationError(
                f"expected {self.leaves} head tags, got {len(tags)}"
            )
        for leaf, tag in enumerate(tags):
            self.update(leaf, tag)

    # ------------------------------------------------------------------
    # queries (registers only — no memory traffic anywhere here)

    @property
    def winner(self) -> Optional[int]:
        """Shard index holding the global minimum (None = all empty)."""
        return self._nodes[1]

    def winner_tag(self) -> Optional[int]:
        """The global minimum tag itself (None = all empty)."""
        winner = self._nodes[1]
        return None if winner is None else self._tags[winner]

    def leaf_tag(self, leaf: int) -> Optional[int]:
        """The head tag currently recorded for one shard."""
        return self._tags[leaf]

    def runner_up(self) -> Optional[int]:
        """The best shard *excluding* the current winner.

        Walks the winner's root path once, comparing the siblings'
        cached winners — O(log N) comparisons, the classic
        replacement-selection trick.  Lets a batched dequeue drain the
        winner shard in a run: every head at or before the runner-up's
        tag (ties included only when the winner has the lower index) is
        globally minimal without re-running the tournament.
        """
        winner = self._nodes[1]
        if winner is None:
            return None
        best: Optional[int] = None
        node = self._size + winner
        while node > 1:
            sibling = self._nodes[node ^ 1]
            if sibling is not None:
                if best is None:
                    best = sibling
                else:
                    self.comparisons += 1
                    sib_tag = self._tags[sibling]
                    best_tag = self._tags[best]
                    if self.precedes(sib_tag, best_tag) or (
                        sib_tag == best_tag and sibling < best
                    ):
                        best = sibling
            node >>= 1
        return best

    def describe(self) -> dict:
        """Machine-readable configuration and counters."""
        return {
            "leaves": self.leaves,
            "space": self.space,
            "depth": self._size.bit_length() - 1,
            "comparisons": self.comparisons,
            "updates": self.updates,
        }
