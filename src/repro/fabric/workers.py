"""Process-parallel batch enqueue, built on the checkpoint API.

The shards of a :class:`~repro.fabric.fabric.ScheduleFabric` are
independent circuits, so a batched enqueue's per-shard groups have no
shared state — they can run in separate OS processes.  Each job ships a
shard's full :meth:`~repro.net.hardware_store.HardwareTagStore.to_state`
snapshot (plain dicts and lists: picklable by construction) to a worker,
which restores the store, runs the group as one ordinary
``push_batch``, and ships the post-batch snapshot back.  The parent
then :meth:`load_state`\\ s the result — the in-place stats restore
means the parent's registries and any attached tracer views stay live.

Workers run untraced (a tracer cannot cross the process boundary), so
each job also returns the per-structure read/write deltas its batch
produced; the fabric attaches them to the ``shard_enqueue`` event so a
traced run still reconciles event deltas against registry totals
exactly.

This backend demonstrates shard *migration* more than wall-clock speed:
snapshot shipping costs more than the simulated insert work it
parallelizes for all but very large batches.  The modeled (cycle-count)
scale-out is identical to the in-process backend's.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Tuple

from ..hwsim.errors import ConfigurationError
from ..hwsim.stats import AccessStats
from ..net.hardware_store import HardwareTagStore


def _push_batch_worker(job) -> Tuple[dict, Dict[str, dict]]:
    """One worker job: restore a shard, push its group, snapshot back.

    Module-level (not a closure) so every multiprocessing start method
    can pickle it.  Returns ``(new_state, deltas)`` where ``deltas``
    maps structure name → ``{"reads": int, "writes": int}`` for the
    batch's memory traffic (the parent re-wraps them as
    :class:`~repro.hwsim.stats.AccessStats`).
    """
    state, items = job
    store = HardwareTagStore.from_state(state)
    before = store.circuit.registry.snapshot_all()
    store.push_batch(items)
    deltas = store.circuit.registry.deltas_since(before)
    return store.to_state(), {
        name: {"reads": delta.reads, "writes": delta.writes}
        for name, delta in deltas.items()
    }


class FabricWorkerPool:
    """A small multiprocessing pool running :func:`_push_batch_worker`.

    Prefers the ``fork`` start method (cheap, inherits ``sys.path``) and
    falls back to the platform default where fork is unavailable.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError("worker pool needs at least 1 process")
        self.workers = workers
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        self._pool = context.Pool(processes=workers)

    def push_batches(
        self, jobs: List[Tuple[dict, list]]
    ) -> List[Tuple[dict, Dict[str, AccessStats]]]:
        """Run the jobs across the pool, preserving job order."""
        results = self._pool.map(_push_batch_worker, jobs)
        return [
            (
                state,
                {
                    name: AccessStats(
                        reads=entry["reads"], writes=entry["writes"]
                    )
                    for name, entry in deltas.items()
                },
            )
            for state, deltas in results
        ]

    def close(self) -> None:
        """Shut the pool down and reap the worker processes."""
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "FabricWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
