"""Process-parallel batch enqueue, built on the checkpoint API.

The shards of a :class:`~repro.fabric.fabric.ScheduleFabric` are
independent circuits, so a batched enqueue's per-shard groups have no
shared state — they can run in separate OS processes.  Each job ships a
shard's full :meth:`~repro.net.hardware_store.HardwareTagStore.to_state`
snapshot (plain dicts and lists: picklable by construction) to a worker,
which restores the store, runs the group as one ordinary
``push_batch``, and ships the post-batch snapshot back.  The parent
then :meth:`load_state`\\ s the result — the in-place stats restore
means the parent's registries and any attached tracer views stay live.

A tracer object cannot cross the process boundary, but its *events*
can: traced jobs run against a worker-local ring
:class:`~repro.obs.tracer.Tracer` (behind a per-shard
:class:`~repro.obs.tracer.ComponentTracer` view) and ship the serialized
events home alongside the state.  The parent re-emits them via
:meth:`~repro.obs.tracer.Tracer.ingest` — span ids remapped, component
stamped — so a traced ``--workers`` soak carries the same per-op events
as the in-process backend and reconciles event-for-event.  Each job also
returns the *residual* per-structure deltas (the batch's registry
traffic minus what the shipped events claim, i.e. ring-dropped events'
traffic); the fabric attaches the residual to the ``shard_enqueue``
event so attribution stays exact even when the worker ring overflows.

This backend demonstrates shard *migration* more than wall-clock speed:
snapshot shipping costs more than the simulated insert work it
parallelizes for all but very large batches.  The modeled (cycle-count)
scale-out is identical to the in-process backend's.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Tuple

from ..hwsim.errors import ConfigurationError
from ..hwsim.stats import AccessStats
from ..net.hardware_store import HardwareTagStore
from ..obs.tracer import ComponentTracer, Tracer

#: Worker-local ring capacity.  Large enough that realistic batch sizes
#: ship every event; overflow degrades gracefully to residual-delta
#: attribution (lossy events, exact totals), surfaced via ``dropped``.
WORKER_RING_SIZE = 65536

#: One worker job: ``(state, items, traced, component)``.
WorkerJob = Tuple[dict, list, bool, str]

#: One worker result: ``(new_state, residual_deltas, events, dropped)``.
WorkerResult = Tuple[dict, Dict[str, dict], List[Dict[str, Any]], int]


def _push_batch_worker(job: WorkerJob) -> WorkerResult:
    """One worker job: restore a shard, push its group, snapshot back.

    Module-level (not a closure) so every multiprocessing start method
    can pickle it.  Returns ``(new_state, residual, events, dropped)``:
    ``events`` is the serialized shard-local event stream (empty for
    untraced jobs) and ``residual`` maps structure name →
    ``{"reads": int, "writes": int}`` for whatever batch traffic the
    shipped events do *not* claim — the full batch deltas when
    untraced, only ring-dropped traffic when traced.
    """
    state, items, traced, component = job
    store = HardwareTagStore.from_state(state)
    tracer = None
    if traced:
        tracer = Tracer(buffer_size=WORKER_RING_SIZE)
        store.attach_tracer(ComponentTracer(tracer, component))
    before = store.circuit.registry.snapshot_all()
    store.push_batch(items)
    deltas = store.circuit.registry.deltas_since(before)
    events: List[Dict[str, Any]] = []
    dropped = 0
    if tracer is not None:
        store.detach_tracer()
        shipped = tracer.events()
        dropped = tracer.dropped
        events = [event.to_dict() for event in shipped]
        # Residual = batch traffic minus what the shipped events claim
        # (ring-dropped events contributed to the registry but are not
        # going home, so their traffic rides the residual instead).
        for event in shipped:
            for name, claimed in event.deltas.items():
                slot = deltas.get(name)
                if slot is not None:
                    slot.reads -= claimed.reads
                    slot.writes -= claimed.writes
    residual = {
        name: {"reads": delta.reads, "writes": delta.writes}
        for name, delta in deltas.items()
        if delta.reads or delta.writes
    }
    return store.to_state(), residual, events, dropped


class FabricWorkerPool:
    """A small multiprocessing pool running :func:`_push_batch_worker`.

    Prefers the ``fork`` start method (cheap, inherits ``sys.path``) and
    falls back to the platform default where fork is unavailable.

    The pool owns OS processes, so it must be reaped: call
    :meth:`close` (graceful) or :meth:`terminate` (immediate), or use
    the pool as a context manager — a clean exit closes, an exception
    terminates, so worker processes never outlive a crashed driver.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError("worker pool needs at least 1 process")
        self.workers = workers
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        self._pool = context.Pool(processes=workers)

    def push_batches(self, jobs: List[WorkerJob]) -> List[
        Tuple[dict, Dict[str, AccessStats], List[Dict[str, Any]], int]
    ]:
        """Run the jobs across the pool, preserving job order."""
        if self._pool is None:
            raise ConfigurationError("worker pool is closed")
        results = self._pool.map(_push_batch_worker, jobs)
        return [
            (
                state,
                {
                    name: AccessStats(
                        reads=entry["reads"], writes=entry["writes"]
                    )
                    for name, entry in residual.items()
                },
                events,
                dropped,
            )
            for state, residual, events, dropped in results
        ]

    def close(self) -> None:
        """Shut the pool down gracefully and reap the worker processes."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Kill the worker processes without draining in-flight jobs."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    @property
    def closed(self) -> bool:
        """True once the pool has been closed or terminated."""
        return self._pool is None

    def __enter__(self) -> "FabricWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.terminate()
        else:
            self.close()
        return False
