"""Flow-to-shard pinning policies.

WFQ service order must stay FCFS *within* a flow, so a flow's tags must
all land in circuits whose relative order is stable — the simplest
sufficient discipline is pinning each flow to one shard.  Two base
policies cover the common cases:

* ``hash`` — a multiplicative (Knuth) hash of the flow id, spreading
  arbitrary id spaces evenly without coordination;
* ``range`` — contiguous blocks of a known flow-id space, keeping
  neighbouring flows co-located (useful when ids encode locality).

On top of the base policy sits an **override map**: the rebalancer pins
individual flows to explicit shards (future arrivals only; live tags
drain from wherever they already are).  Overrides are part of the
fabric checkpoint so a restored fabric routes identically.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hwsim.errors import ConfigurationError

#: Knuth's multiplicative hash constant (2**32 / golden ratio).
_HASH_MULTIPLIER = 2654435761
_HASH_MASK = 0xFFFFFFFF

#: Supported base policies.
POLICIES = ("hash", "range")


class FlowPartitioner:
    """Deterministic flow-id → shard-index mapping with overrides."""

    def __init__(
        self,
        shards: int,
        *,
        policy: str = "hash",
        flow_space: int = 1024,
    ) -> None:
        if shards < 1:
            raise ConfigurationError("partitioner needs at least one shard")
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown partition policy {policy!r} (choose from {POLICIES})"
            )
        if flow_space < 1:
            raise ConfigurationError("flow_space must be positive")
        self.shards = shards
        self.policy = policy
        self.flow_space = flow_space
        self._overrides: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # routing

    def home_shard(self, flow_id: int) -> int:
        """The base-policy shard, ignoring overrides."""
        if flow_id < 0:
            raise ConfigurationError("flow ids must be non-negative")
        if self.policy == "hash":
            return ((flow_id * _HASH_MULTIPLIER) & _HASH_MASK) % self.shards
        # range: contiguous blocks of [0, flow_space); ids beyond the
        # declared space clamp into the last shard.
        return min(
            flow_id * self.shards // self.flow_space, self.shards - 1
        )

    def shard_for(self, flow_id: int) -> int:
        """The effective shard: an override if pinned, else the home."""
        override = self._overrides.get(flow_id)
        if override is not None:
            return override
        return self.home_shard(flow_id)

    # ------------------------------------------------------------------
    # overrides (the rebalancer's lever)

    def assign(self, flow_id: int, shard: int) -> None:
        """Pin ``flow_id`` to ``shard`` for all future arrivals.

        Assigning a flow back to its home shard clears the override, so
        the override map only ever holds genuine exceptions.
        """
        if not 0 <= shard < self.shards:
            raise ConfigurationError(
                f"shard {shard} outside [0, {self.shards})"
            )
        if shard == self.home_shard(flow_id):
            self._overrides.pop(flow_id, None)
        else:
            self._overrides[flow_id] = shard

    def clear(self, flow_id: int) -> None:
        """Drop any override for ``flow_id`` (return to the base policy)."""
        self._overrides.pop(flow_id, None)

    @property
    def overrides(self) -> Dict[int, int]:
        """A copy of the current override map."""
        return dict(self._overrides)

    def describe(self) -> dict:
        """Machine-readable configuration snapshot."""
        return {
            "shards": self.shards,
            "policy": self.policy,
            "flow_space": self.flow_space,
            "overrides": len(self._overrides),
        }

    # ------------------------------------------------------------------
    # checkpoint / restore

    def to_state(self) -> dict:
        """Serializable snapshot (config + override map)."""
        return {
            "kind": "flow_partitioner",
            "shards": self.shards,
            "policy": self.policy,
            "flow_space": self.flow_space,
            "overrides": sorted(self._overrides.items()),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this instance."""
        if state.get("kind") != "flow_partitioner":
            raise ConfigurationError(
                f"not a partitioner snapshot: kind={state.get('kind')!r}"
            )
        if (
            state["shards"] != self.shards
            or state["policy"] != self.policy
            or state["flow_space"] != self.flow_space
        ):
            raise ConfigurationError(
                "partitioner snapshot config does not match this instance"
            )
        self._overrides = {
            int(flow_id): int(shard)
            for flow_id, shard in state["overrides"]
        }

    @classmethod
    def from_state(cls, state: dict) -> "FlowPartitioner":
        """Reconstruct a partitioner from a :meth:`to_state` snapshot."""
        partitioner = cls(
            state["shards"],
            policy=state["policy"],
            flow_space=state["flow_space"],
        )
        partitioner.load_state(state)
        return partitioner
