"""Fabric-soak driver: the machinery behind ``python -m repro fabric``.

Runs the bench harness's flow-attributed mixed workload (the same
generator the fabric benchmark phase times) through a
:class:`~repro.fabric.fabric.ScheduleFabric` with a live
:class:`~repro.obs.tracer.Tracer` attached, and verifies the telemetry
acceptance invariant *across shards*: the summed per-structure deltas of
the event stream reconcile exactly with the per-structure totals summed
over every shard's ``StatsRegistry``.

Beyond the :mod:`repro.obs.runner` contract it adds the fabric-specific
switches: ``--shards``/``--flows`` shape the partition, ``--workers``
fans batched enqueues out to a process pool, ``--monitor`` screens the
interleaved multi-store trace through the per-component invariant
monitors, and ``--checkpoint FILE`` snapshots the whole fabric mid-soak,
restores a second fabric from the JSON file, and replays the remaining
operations on both — the run fails unless the service sequences match
element for element.

Kept out of :mod:`repro.fabric`'s eager imports (it pulls in the bench
layer) — the CLI imports it lazily.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bench.perf import _drive_batched, _drive_per_op, make_flow_ops
from ..core.engine import VALID_MODES, resolve_mode
from ..hwsim.stats import AccessStats
from ..obs.events import build_trace_header
from ..obs.exporters import prometheus_snapshot, run_report
from ..obs.flight import FlightRecorder
from ..obs.instruments import InstrumentSet
from ..obs.live import LivePlane
from ..obs.monitors import MonitorConfig, MonitorSuite
from ..obs.probes import StandardProbes
from ..obs.slo import ServeStreamAuditor, SloRule
from ..obs.tracer import Tracer
from .fabric import ScheduleFabric


@dataclass
class FabricRun:
    """Everything a traced fabric soak produced."""

    tracer: Tracer
    fabric: ScheduleFabric
    instruments: InstrumentSet
    ops: int
    seed: int
    batched: bool
    served: int
    workers: int = 0
    monitors: Optional[MonitorSuite] = None
    checkpoint: Optional[Dict] = None
    live: Optional[Dict] = None
    live_instruments: Optional[InstrumentSet] = None
    flight: Optional[FlightRecorder] = None
    auditor: Optional[ServeStreamAuditor] = None

    @property
    def event_counts(self) -> Dict[str, int]:
        """Events emitted per kind (from the probe counters, so exact
        even after ring-buffer eviction)."""
        counts: Dict[str, int] = {}
        prefix = "events_"
        for name in self.instruments.names():
            if name.startswith(prefix):
                counts[name[len(prefix):]] = self.instruments.counter(name).value
        return counts

    @property
    def registry_totals(self) -> Dict[str, AccessStats]:
        """Per-structure access totals summed over every shard.

        Structure names collide across shards by design (every shard is
        the same circuit), and the tracer's attribution sums the same
        way — per name, over all components — so these are the
        reconciliation reference.
        """
        totals: Dict[str, AccessStats] = {}
        for store in self.fabric.stores:
            registry = store.circuit.registry
            for name in registry.names():
                stats = registry[name]
                merged = totals.setdefault(name, AccessStats())
                merged.record_bulk(reads=stats.reads, writes=stats.writes)
        return totals

    @property
    def reconciliation(self) -> Dict[str, int]:
        """Traced-vs-registry access totals (equal on a correct trace)."""
        return {
            "traced": self.tracer.attributed_grand_total().total,
            "registry": sum(
                stats.total for stats in self.registry_totals.values()
            ),
        }

    @property
    def attribution_by_component(self) -> Dict[str, int]:
        """Attributed access totals per component stamp (``shard0``,
        ``shard1``, ...) — the skew-attribution view of the same ledger
        :attr:`reconciliation` checks in aggregate."""
        return {
            component: sum(stats.total for stats in totals.values())
            for component, totals in sorted(
                self.tracer.attributed_totals_by_component().items()
            )
        }

    @property
    def reconciled(self) -> bool:
        """True when every shard-registry access is attributed to an
        event — including those performed in worker processes, whose
        deltas ride home on the ``shard_enqueue`` events."""
        traced = self.tracer.attributed_totals()
        for name, stats in self.registry_totals.items():
            mine = traced.get(name)
            got = (mine.reads, mine.writes) if mine else (0, 0)
            if got != (stats.reads, stats.writes):
                return False
        return True

    def report(self) -> str:
        """The human-readable run report."""
        mode = "batched fast-mode" if self.batched else "per-op"
        manager = self.fabric.manager
        notes = [
            f"tracer: {self.tracer.emitted} events emitted, "
            f"{self.tracer.dropped} evicted from the ring buffer",
            f"fabric: occupancies {self.fabric.occupancies()}, "
            f"{manager.spill_count} spills, "
            f"{manager.rebalance_count} rebalances "
            f"({manager.flows_moved} flows moved), "
            f"{self.fabric.tournament.comparisons} tournament comparisons",
        ]
        by_component = self.attribution_by_component
        if by_component:
            parts = ", ".join(
                f"{component}={total}"
                for component, total in by_component.items()
            )
            notes.append(f"attribution by shard: {parts}")
        if self.workers:
            notes.append(f"workers: {self.workers}-process enqueues")
        if self.checkpoint is not None:
            verdict = (
                "identical"
                if self.checkpoint["resumed_match"]
                else "DIVERGED"
            )
            notes.append(
                f"checkpoint: snapshot at op "
                f"{self.checkpoint['ops_at_checkpoint']} -> "
                f"{self.checkpoint['path']}; restored replay {verdict} "
                f"over {self.checkpoint['resumed_ops']} ops"
            )
        if self.monitors is not None:
            notes.append(self.monitors.summary())
        if self.live is not None:
            port = self.live.get("port")
            served_at = f" on port {port}" if port else ""
            notes.append(
                f"live plane{served_at}: {self.live['windows']} windows "
                f"({self.live['skipped_ticks']} skipped), "
                f"{self.live['uptime_seconds']}s up"
            )
            watchdog = self.live.get("watchdog")
            if watchdog and watchdog["stall_count"]:
                notes.append(
                    f"watchdog: {watchdog['stall_count']} stall(s) "
                    f"declared (timeout {watchdog['timeout']}s)"
                )
        if self.auditor is not None:
            audit = self.auditor.summary()
            culprit = audit.get("culprit_shard")
            culprit_note = f" (worst shard: {culprit})" if culprit else ""
            notes.append(
                f"serve audit: {audit['serves']} serves, "
                f"{audit['inversions']} rank inversions{culprit_note}"
            )
        if self.flight is not None and self.flight.dumped:
            trigger = self.flight.summary()["trigger"] or {}
            notes.append(
                f"flight recorder: dumped {self.flight.path} around "
                f"{trigger.get('monitor') or trigger.get('kind')}"
            )
        return run_report(
            title=(
                f"fabric soak: {self.ops} ops over {self.fabric.shards} "
                f"shard(s) ({mode}), seed {self.seed}"
            ),
            totals=self.registry_totals,
            instruments=self.instruments,
            event_counts=self.event_counts,
            reconciliation=self.reconciliation,
            dropped=self.tracer.dropped,
            notes=notes,
        )

    def to_document(self) -> Dict:
        """The JSON-format report (one output convention with the
        artifact CLI's ``--format json``)."""
        manager = self.fabric.manager
        return {
            "workload": {
                "ops": self.ops,
                "seed": self.seed,
                "mode": "batched" if self.batched else "per_op",
                "granularity": self.fabric.granularity,
                "served": self.served,
            },
            "fabric": {
                "shards": self.fabric.shards,
                "occupancies": self.fabric.occupancies(),
                "pushes": self.fabric.pushes,
                "pops": self.fabric.pops,
                "spills": manager.spill_count,
                "rebalances": manager.rebalance_count,
                "flows_moved": manager.flows_moved,
                "tournament_comparisons": self.fabric.tournament.comparisons,
                "workers": self.workers,
                "cycles_makespan": self.fabric.cycles,
                "cycles_total": self.fabric.cycles_total,
            },
            "totals": {
                name: stats.to_dict()
                for name, stats in self.registry_totals.items()
            },
            "event_counts": self.event_counts,
            "instruments": self.instruments.summaries(),
            "reconciliation": {
                **self.reconciliation,
                "exact": self.reconciled,
                "by_component": self.attribution_by_component,
            },
            "tracer": {
                "emitted": self.tracer.emitted,
                "dropped": self.tracer.dropped,
            },
            "checkpoint": self.checkpoint,
            "monitors": (
                None
                if self.monitors is None
                else {
                    "checked": self.monitors.checked,
                    "ok": self.monitors.ok,
                    "violations": [
                        violation.to_dict()
                        for violation in self.monitors.violations
                    ],
                }
            ),
            "live": self.live,
            "serve_audit": (
                None if self.auditor is None else self.auditor.summary()
            ),
            "flight": (
                None if self.flight is None else self.flight.summary()
            ),
        }

    def metrics_text(self) -> str:
        """Prometheus exposition: run instruments plus live rollups."""
        text = prometheus_snapshot(self.instruments)
        if self.live_instruments is not None:
            text += prometheus_snapshot(self.live_instruments)
        return text


def run_fabric_soak(
    *,
    ops: int = 10_000,
    seed: int = 20060101,
    shards: int = 4,
    flows: int = 256,
    granularity: float = 8.0,
    batched: bool = False,
    turbo: bool = False,
    mode: Optional[str] = None,
    workers: int = 0,
    trace_sink: Optional[str] = None,
    buffer_size: int = 65536,
    monitor: bool = False,
    checkpoint_path: Optional[str] = None,
    serve_port: Optional[int] = None,
    serve_host: str = "127.0.0.1",
    serve_linger: float = 0.0,
    live_interval: float = 0.5,
    watchdog_timeout: Optional[float] = None,
    flight_path: Optional[str] = None,
    shard_slo_inversions: Optional[int] = None,
) -> FabricRun:
    """Drive a traced fabric soak and return its telemetry.

    ``batched=True`` exercises the coalesced paths (grouped per-shard
    inserts, fence-bounded tournament drains); ``workers`` additionally
    fans the batched enqueue groups out to that many processes via the
    checkpoint API.  ``monitor=True`` screens the interleaved
    multi-store event stream through the per-component invariant
    monitors (every shard's config is identical, so shard 0's circuit
    parameterizes the suite).

    ``checkpoint_path`` splits the soak in half: the fabric is
    snapshotted to that file mid-run, a second fabric is restored from
    the JSON on disk, and both serve the remaining operations — the
    returned run's ``checkpoint["resumed_match"]`` records whether the
    two service sequences were identical (the restore-fidelity
    acceptance check, and the mechanism shard migration relies on).

    ``serve_port`` attaches the live observability plane: the windowed
    collector plus HTTP ``/metrics`` / ``/health`` / ``/snapshot``
    while the soak runs, and the tag-domain serve auditor.  The
    collector sees each shard's occupancy and the per-shard labeled
    counters, so the scrape carries ``repro_live_*{shard="N"}`` series
    plus the fleet-skew gauges.  ``shard_slo_inversions`` arms a
    per-shard inversion-budget SLO rule on top of the auditor: any
    single shard exceeding that many rank inversions flips ``/health``
    to a breach attributed to the culprit shard.
    ``watchdog_timeout`` arms a progress watchdog — with a worker pool,
    a hung ``pool.map`` stops the summed-registry progress reading and
    the collector thread declares the stall (no per-op heartbeat on the
    hot path).  ``flight_path`` arms the flight recorder.
    """
    mode = resolve_mode(mode, turbo)
    probes = StandardProbes()
    tracer = Tracer(
        buffer_size=buffer_size, sink=trace_sink, observers=[probes]
    )
    fabric = ScheduleFabric(
        shards=shards,
        granularity=granularity,
        fast_mode=batched,
        mode=mode,
        tracer=tracer,
    )
    tracer.write_header(
        build_trace_header(
            seed=seed,
            mode="batched" if batched else "per_op",
            config=fabric.describe(),
            ops=ops,
            buffer_size=buffer_size,
            engine=mode,
        )
    )
    suite: Optional[MonitorSuite] = None
    if monitor:
        suite = MonitorSuite.for_circuit(
            fabric.stores[0].circuit, tracer=tracer
        )
        tracer.add_observer(suite)
    if workers:
        fabric.use_workers(workers)

    flight: Optional[FlightRecorder] = None
    if flight_path is not None:
        flight = FlightRecorder(flight_path, header=tracer.header)
        flight.attach(tracer)
    auditor: Optional[ServeStreamAuditor] = None
    plane: Optional[LivePlane] = None
    if serve_port is not None:
        monitor_config = MonitorConfig.from_circuit_config(
            fabric.stores[0].describe()
        )
        shard_rules = ()
        if shard_slo_inversions is not None:
            shard_rules = (
                SloRule(
                    name="shard_inversion_budget",
                    metric="inversions",
                    limit=float(shard_slo_inversions),
                ),
            )
        auditor = ServeStreamAuditor(
            instruments=probes.instruments,
            modular=monitor_config.modular,
            tag_space=monitor_config.tag_space,
            shard_rules=shard_rules,
        )
        tracer.add_observer(
            auditor, kinds=ServeStreamAuditor.OBSERVED_KINDS
        )
        stores = fabric.stores

        def fabric_progress() -> float:
            return float(
                sum(
                    store.circuit.registry.total().total
                    for store in stores
                )
            )

        plane = LivePlane(
            instruments=probes.instruments,
            progress=fabric_progress,
            occupancy=lambda: sum(fabric.occupancies()),
            shard_occupancies=fabric.occupancies,
            free_list_depth=lambda: sum(
                store.circuit.free_list_depth for store in stores
            ),
            monitors=suite,
            tracer=tracer,
            flight=flight,
            auditor=auditor,
            serve_port=serve_port,
            serve_host=serve_host,
            interval=live_interval,
            watchdog_timeout=watchdog_timeout,
            extra_status=lambda: {
                "fabric": {
                    "shards": fabric.shards,
                    "pushes": fabric.pushes,
                    "pops": fabric.pops,
                    "workers": workers,
                }
            },
        )
        plane.start()

    stream = make_flow_ops(ops, seed, flows=flows)
    drive = _drive_batched if batched else _drive_per_op
    checkpoint_doc: Optional[Dict] = None
    live_summary: Optional[Dict] = None
    try:
        # The fabric context manager reaps the worker pool: a clean
        # exit closes it, an exception terminates it, so crashed soaks
        # never leak OS processes.
        with fabric:
            if checkpoint_path:
                split = len(stream) // 2
                served = drive(fabric, stream[:split])
                state = fabric.to_state()
                with open(checkpoint_path, "w", encoding="utf-8") as handle:
                    json.dump(state, handle)
                    handle.write("\n")
                with open(checkpoint_path, "r", encoding="utf-8") as handle:
                    restored = ScheduleFabric.from_state(json.load(handle))
                tail = stream[split:]
                resumed = drive(fabric, tail)
                served.extend(resumed)
                replayed = drive(restored, tail)
                checkpoint_doc = {
                    "path": checkpoint_path,
                    "ops_at_checkpoint": split,
                    "resumed_ops": len(tail),
                    "resumed_match": replayed == resumed,
                }
            else:
                served = drive(fabric, stream)
    finally:
        if plane is not None:
            if serve_linger > 0:
                time.sleep(serve_linger)
            live_summary = plane.finish()
        tracer.flush()
        tracer.close()
        if flight is not None:
            flight.close()
    return FabricRun(
        tracer=tracer,
        fabric=fabric,
        instruments=probes.instruments,
        ops=ops,
        seed=seed,
        batched=batched,
        served=len(served),
        workers=workers,
        monitors=suite,
        checkpoint=checkpoint_doc,
        live=live_summary,
        live_instruments=(
            plane.collector.live if plane is not None else None
        ),
        flight=flight,
        auditor=auditor,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro fabric",
        description=(
            "Run a traced mixed soak through the sharded scheduling "
            "fabric and export its telemetry (JSONL trace, metrics, "
            "run report, optional mid-run checkpoint/restore check)."
        ),
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="independent circuits"
    )
    parser.add_argument(
        "--ops", type=int, default=10_000, help="operations in the soak"
    )
    parser.add_argument(
        "--seed", type=int, default=20060101, help="workload seed"
    )
    parser.add_argument(
        "--flows",
        type=int,
        default=256,
        help="flow-id population the workload draws from",
    )
    parser.add_argument(
        "--granularity", type=float, default=8.0, help="tag quantum"
    )
    parser.add_argument(
        "--batched",
        action="store_true",
        help="use the coalesced paths (grouped inserts, fenced drains)",
    )
    parser.add_argument(
        "--turbo",
        action="store_true",
        help=(
            "run every shard circuit on the access-fused turbo engine "
            "(identical service order and accounting, faster wall clock)"
        ),
    )
    parser.add_argument(
        "--mode",
        choices=tuple(VALID_MODES),
        default=None,
        help=(
            "shard circuit engine (gate/turbo/vector); wins over "
            "--turbo when both are given"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "fan batched enqueues out to this many processes "
            "(0 = in-process; implies --batched semantics for enqueues)"
        ),
    )
    parser.add_argument(
        "--trace", metavar="FILE", help="stream the JSONL event trace here"
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a Prometheus-style metrics snapshot here",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="FILE",
        help=(
            "snapshot the fabric to this JSON file mid-soak, restore a "
            "second fabric from it, replay the rest on both, and exit 1 "
            "unless the service sequences match"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the run report here (default: stdout)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "prometheus"),
        default="text",
        help="run-report format",
    )
    parser.add_argument(
        "--buffer-size",
        type=int,
        default=65536,
        help="tracer ring-buffer capacity",
    )
    parser.add_argument(
        "--monitor",
        action="store_true",
        help=(
            "screen every event through the per-component invariant "
            "monitors; exit 1 on any violated fabric guarantee"
        ),
    )
    parser.add_argument(
        "--serve",
        type=int,
        metavar="PORT",
        help=(
            "serve /metrics /health /snapshot on this port while the "
            "soak runs (0 = ephemeral port)"
        ),
    )
    parser.add_argument(
        "--serve-host",
        default="127.0.0.1",
        help="bind address for --serve (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--serve-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the endpoints up this long after the soak finishes",
    )
    parser.add_argument(
        "--live-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="windowed-collector rollup interval",
    )
    parser.add_argument(
        "--shard-slo-inversions",
        type=int,
        metavar="N",
        help=(
            "per-shard SLO: flag /health as breached (with the culprit "
            "shard) when any single shard exceeds N rank inversions "
            "(needs --serve)"
        ),
    )
    parser.add_argument(
        "--watchdog",
        type=float,
        metavar="SECONDS",
        help=(
            "declare a stall when the summed per-shard progress "
            "reading stops for this long (catches hung worker pools)"
        ),
    )
    parser.add_argument(
        "--flight",
        metavar="FILE",
        help=(
            "arm the flight recorder: auto-dump an analyze-loadable "
            "context window here on the first invariant violation"
        ),
    )
    parser.add_argument(
        "--allow-lossy",
        action="store_true",
        help=(
            "exit 0 even when the ring buffer evicted events (a "
            "streaming --trace sink still captures the full stream)"
        ),
    )
    args = parser.parse_args(argv)

    batched = args.batched or args.workers > 0
    run = run_fabric_soak(
        ops=args.ops,
        seed=args.seed,
        shards=args.shards,
        flows=args.flows,
        granularity=args.granularity,
        batched=batched,
        turbo=args.turbo,
        mode=args.mode,
        workers=args.workers,
        trace_sink=args.trace,
        buffer_size=args.buffer_size,
        monitor=args.monitor,
        checkpoint_path=args.checkpoint,
        serve_port=args.serve,
        serve_host=args.serve_host,
        serve_linger=args.serve_linger,
        live_interval=args.live_interval,
        watchdog_timeout=args.watchdog,
        flight_path=args.flight,
        shard_slo_inversions=args.shard_slo_inversions,
    )

    if args.format == "json":
        report = json.dumps(run.to_document(), indent=2) + "\n"
    elif args.format == "prometheus":
        report = run.metrics_text()
    else:
        report = run.report()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    else:
        sys.stdout.write(report)

    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(prometheus_snapshot(run.instruments))

    status = 0
    if not run.reconciled:
        print(
            "FAIL: trace deltas do not reconcile with the summed "
            "per-shard stats registries",
            file=sys.stderr,
        )
        status = 1
    if run.monitors is not None and not run.monitors.ok:
        print(
            f"FAIL: {len(run.monitors.violations)} invariant "
            f"violation(s) — see the run report",
            file=sys.stderr,
        )
        status = 1
    if run.checkpoint is not None and not run.checkpoint["resumed_match"]:
        print(
            "FAIL: the fabric restored from the checkpoint served a "
            "different sequence than the original",
            file=sys.stderr,
        )
        status = 1
    if run.tracer.dropped and not args.allow_lossy:
        print(
            f"FAIL: {run.tracer.dropped} events evicted from the ring "
            f"buffer (raise --buffer-size, or pass --allow-lossy if a "
            f"--trace sink captured the stream)",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
