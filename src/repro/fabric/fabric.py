"""`ScheduleFabric`: N sort/retrieve circuits behind one tag store.

The facade presents the same push/pop contract as a single
:class:`~repro.net.hardware_store.HardwareTagStore`, but spreads flows
across ``shards`` independent circuits:

* enqueue — :class:`~repro.fabric.partitioner.FlowPartitioner` pins the
  flow to a shard, :class:`~repro.fabric.manager.ShardManager` may spill
  the tag to a roomier neighbour near overflow, and the shard's circuit
  inserts it;
* dequeue — the :class:`~repro.fabric.tournament.TournamentAggregator`
  names the shard holding the global minimum in O(log N) register
  comparisons, that shard's circuit serves its head, and only the
  winner's leaf-to-root tournament path refreshes.

**Global service order.**  Each circuit serves its own tags in
non-decreasing (wrap-aware) order, and the tournament always serves the
minimum over all shard heads, so the merged stream is exactly the
sequence one big circuit would produce — the k-way merge argument —
provided all live tags fit a half-tag-space window.  Every shard's own
span guard enforces its local window; the shards share one virtual-time
base (the WFQ tag computation), so the global span obeys the same bound
whenever any single circuit's would.

**Modeled parallel time.**  The shards are independent hardware, so
fabric busy time is the *makespan* — the maximum per-shard cycle count
— not the sum (:attr:`ScheduleFabric.cycles`).  An N-way balanced
fabric therefore enqueues ~N× faster in modeled time than one circuit,
which is the scale-out claim the fabric benchmark phase measures.

Batched dequeues drain the winner shard in *runs*: the runner-up fence
(second-best head) bounds how far the winner may drain before any other
shard could hold the minimum, so a k-entry run costs one tournament
refresh instead of k.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.engine import resolve_mode
from ..core.words import PAPER_FORMAT, WordFormat
from ..hwsim.errors import ConfigurationError, ProtocolError
from ..net.hardware_store import HardwareTagStore
from ..obs.tracer import NULL_TRACER, ComponentTracer
from .manager import FabricPolicy, ShardManager
from .partitioner import FlowPartitioner
from .tournament import TournamentAggregator


def shard_component(shard: int) -> str:
    """The canonical ``component`` label for shard ``shard``'s events."""
    return f"shard{shard}"


#: The ``component`` label on fabric-level events (routing, tournament,
#: rebalance) as opposed to shard-local circuit events.
FABRIC_COMPONENT = "fabric"


class ScheduleFabric:
    """Sharded multi-circuit tag store with tournament aggregation."""

    def __init__(
        self,
        *,
        shards: int = 4,
        fmt: WordFormat = PAPER_FORMAT,
        granularity: float = 1.0,
        capacity_per_shard: int = 4096,
        fast_mode: bool = False,
        turbo: bool = False,
        mode: Optional[str] = None,
        partition_policy: str = "hash",
        flow_space: int = 1024,
        policy: Optional[FabricPolicy] = None,
        tracer=None,
    ) -> None:
        if shards < 1:
            raise ConfigurationError("fabric needs at least one shard")
        self.shards = shards
        self.fmt = fmt
        self.granularity = granularity
        self.capacity_per_shard = capacity_per_shard
        self.fast_mode = fast_mode
        self.mode = resolve_mode(mode, turbo)
        self.turbo = self.mode == "turbo"
        self.stores: List[HardwareTagStore] = [
            HardwareTagStore(
                fmt=fmt,
                granularity=granularity,
                capacity=capacity_per_shard,
                fast_mode=fast_mode,
                mode=self.mode,
            )
            for _ in range(shards)
        ]
        #: shared array plane over the shard circuits (vector mode only):
        #: lazy upper-tree rebuilds run as one stacked array op for all
        #: shards instead of one dispatch per shard.
        self.plane = None
        if self.mode == "vector":
            from ..core.vector import VectorPlane

            self.plane = VectorPlane()
            self.plane.adopt([store.circuit for store in self.stores])
        self.partitioner = FlowPartitioner(
            shards, policy=partition_policy, flow_space=flow_space
        )
        self.manager = ShardManager(
            self.partitioner,
            shard_capacity=capacity_per_shard,
            policy=policy,
        )
        self.tournament = TournamentAggregator(shards, space=fmt.capacity)
        #: live tag count per flow id (drives rebalance planning)
        self._flow_live: Dict[int, int] = {}
        self.pushes = 0
        self.pops = 0
        self.cancels = 0
        self.repins = 0
        self._tracer = NULL_TRACER
        self._pool = None
        self._relocation_listeners: List[
            Callable[[Dict[int, int]], None]
        ] = []
        if tracer is not None:
            self.attach_tracer(tracer)

    # ------------------------------------------------------------------
    # introspection

    def occupancies(self) -> List[int]:
        """Live tag count per shard (index-aligned with ``stores``)."""
        return [len(store) for store in self.stores]

    def __len__(self) -> int:
        return sum(len(store) for store in self.stores)

    @property
    def operations(self) -> int:
        """Circuit operations summed over all shards (total work)."""
        return sum(store.operations for store in self.stores)

    @property
    def cycles(self) -> int:
        """Modeled busy time: the *makespan* over the parallel shards.

        Each shard is independent hardware clocked in parallel, so the
        fabric is busy for as long as its busiest shard — the scale-out
        quantity the benchmarks compare against one circuit's cycles.
        """
        return max(store.cycles for store in self.stores)

    @property
    def cycles_total(self) -> int:
        """Cycles summed over all shards (total energy/work, not time)."""
        return sum(store.cycles for store in self.stores)

    def describe(self) -> dict:
        """Machine-readable configuration and counters."""
        config = self.stores[0].describe()
        config.update(
            {
                "shards": self.shards,
                "capacity_per_shard": self.capacity_per_shard,
                "partition": self.partitioner.describe(),
                "manager": self.manager.describe(),
                "tournament": self.tournament.describe(),
                "pushes": self.pushes,
                "pops": self.pops,
                "cancels": self.cancels,
                "repins": self.repins,
                "workers": self._pool.workers if self._pool else 0,
            }
        )
        return config

    @property
    def flow_live(self) -> Dict[int, int]:
        """A copy of the per-flow live tag counts."""
        return dict(self._flow_live)

    def flow_backlog(self, flow_id: int) -> int:
        """One flow's live tag count (O(1); 0 when nothing is queued).

        Unlike :attr:`flow_live` this does not copy the whole table, so
        per-packet policies (backpressure marking, admission checks) can
        consult it on the hot path.
        """
        return self._flow_live.get(flow_id, 0)

    # ------------------------------------------------------------------
    # enqueue path

    def _sync_head(self, shard: int) -> int:
        """Refresh one shard's tournament leaf from its head register."""
        return self.tournament.update(
            shard, self.stores[shard].circuit.peek_min()
        )

    def _track_push(self, flow_id: int) -> None:
        self._flow_live[flow_id] = self._flow_live.get(flow_id, 0) + 1

    def _track_pop(self, flow_id: int) -> None:
        live = self._flow_live.get(flow_id, 0) - 1
        if live > 0:
            self._flow_live[flow_id] = live
        else:
            self._flow_live.pop(flow_id, None)

    def add_relocation_listener(
        self, listener: Callable[[Dict[int, int]], None]
    ) -> None:
        """Register a callback for handle relocations.

        Backlog migration moves live entries between shards, which
        changes their fabric handles.  Each listener is invoked with an
        ``{old_handle: new_handle}`` dict immediately after a migration,
        so handle-holding layers (timer wheels, connection sessions) can
        remap before they next dereference.
        """
        self._relocation_listeners.append(listener)

    def _maybe_rebalance(self) -> Dict[int, int]:
        """Plan/apply a rebalance; returns any handle relocations.

        The ``rebalance`` event carries the *pre-migration* occupancies
        (the state the decision was made on) and is emitted before the
        migration's own per-shard remove/insert events, so trace ledgers
        reconcile op-for-op.
        """
        occupancies = self.occupancies()
        plan = self.manager.plan_rebalance(
            occupancies, self._flow_live, self.pushes + self.pops
        )
        if plan is None:
            return {}
        if self._tracer.enabled:
            self._tracer.event(
                "rebalance",
                component=FABRIC_COMPONENT,
                occupancies=occupancies,
                **plan.to_dict(),
            )
        if not self.manager.policy.migrate_backlog:
            return {}
        relocations = self._migrate_backlog(plan)
        if relocations:
            for listener in self._relocation_listeners:
                listener(relocations)
        return relocations

    def _migrate_backlog(self, plan) -> Dict[int, int]:
        """Physically move a re-pinned flow's queued entries.

        Remove-by-handle on the source shard, re-push at the identical
        exact tag on the target — enumerated head-first so within-flow
        FCFS order is preserved.  An entry migrates only when the target
        can hold it *at its own quantum* (no clamping, no span-guard
        trip) and has a free slot; anything else stays on the source,
        which is always correct — rebalancing is an optimization, never
        a requirement.  At most half the occupancy gap moves: migration
        *equalizes* the shards rather than dumping the whole backlog,
        which would invert the skew and ping-pong the flow back on the
        next rebalance.  Returns ``{old_handle: new_handle}``.
        """
        moved_flows = {flow_id for flow_id, _ in plan.moves}
        source_store = self.stores[plan.source]
        target_store = self.stores[plan.target]
        quota = max(0, (len(source_store) - len(target_store)) // 2)
        base_source = plan.source * self.capacity_per_shard
        base_target = plan.target * self.capacity_per_shard
        # Snapshot the candidates before mutating: walk() is peek-only
        # and head-first (service order), and removing one entry never
        # disturbs another's storage address.
        candidates = []
        for _raw, address in source_store.circuit.storage.walk():
            finish_tag, (flow_id, _payload) = (
                source_store.circuit.handle_payload(address)
            )
            if flow_id in moved_flows:
                candidates.append((address, finish_tag))
        free = self.capacity_per_shard - len(target_store)
        relocations: Dict[int, int] = {}
        migrated = 0
        skipped = 0
        for address, finish_tag in candidates:
            if migrated >= quota or free <= 0:
                skipped += 1
                continue
            if not target_store.accepts_without_clamp(finish_tag):
                skipped += 1
                continue
            exact_tag, entry = source_store.remove(address)
            try:
                new_local = target_store.push(exact_tag, entry)
            except ProtocolError:
                # The target refused after all (belt-and-braces: the
                # accepts check should have caught it).  Re-push on the
                # source — its slot is guaranteed free, though the new
                # address may differ from the old one.
                back_local = source_store.push(exact_tag, entry)
                if back_local != address:
                    relocations[base_source + address] = (
                        base_source + back_local
                    )
                skipped += 1
                continue
            free -= 1
            migrated += 1
            relocations[base_source + address] = base_target + new_local
        if migrated:
            self._sync_head(plan.source)
            self._sync_head(plan.target)
            self.manager.entries_migrated += migrated
        if self._tracer.enabled:
            self._tracer.event(
                "shard_migrate",
                component=FABRIC_COMPONENT,
                source=plan.source,
                target=plan.target,
                entries=migrated,
                skipped=skipped,
                flows=len(moved_flows),
            )
        return relocations

    def push(self, finish_tag: float, flow_id: int, payload=None) -> int:
        """Route and insert one tag; returns its fabric handle.

        ``payload`` defaults to ``flow_id`` (the bare
        :class:`~repro.sched.wfq.TagStore` contract); the scheduler
        facade passes the packet-buffer pointer instead.  The handle
        encodes the routed shard and the shard-local circuit handle
        (``shard * capacity_per_shard + address``), and stays valid for
        :meth:`remove` / :meth:`retag` until the entry is served.
        """
        if payload is None:
            payload = flow_id
        shard, spilled = self.manager.route(flow_id, self.occupancies())
        local = self.stores[shard].push(finish_tag, (flow_id, payload))
        self._track_push(flow_id)
        self.pushes += 1
        self._sync_head(shard)
        if self._tracer.enabled:
            if spilled:
                self._tracer.event(
                    "spill",
                    component=FABRIC_COMPONENT,
                    flow=flow_id,
                    home=self.partitioner.shard_for(flow_id),
                    shard=shard,
                )
            self._tracer.event(
                "shard_enqueue",
                component=FABRIC_COMPONENT,
                shard=shard,
                flow=flow_id,
                count=1,
                spilled=1 if spilled else 0,
            )
        relocations = self._maybe_rebalance()
        handle = shard * self.capacity_per_shard + local
        # The rebalance may have migrated the entry just inserted; the
        # caller must receive the post-migration handle.
        return relocations.get(handle, handle)

    def push_batch(self, items: Iterable[Sequence]) -> None:
        """Route and insert a run of tags in one pass.

        Items are ``(finish_tag, flow_id)`` or
        ``(finish_tag, flow_id, payload)``.  Routing is a scalar pass
        with in-batch occupancy estimates (so spill decisions see the
        batch's own fill-up), then each touched shard takes its group as
        one :meth:`HardwareTagStore.push_batch` — or, with a worker pool
        attached, the groups run in parallel processes via the circuit
        state snapshots.
        """
        items = list(items)
        if not items:
            return
        occupancies = self.occupancies()
        groups: List[List[Tuple[float, Tuple[int, object]]]] = [
            [] for _ in range(self.shards)
        ]
        spilled_counts = [0] * self.shards
        traced = self._tracer.enabled
        for item in items:
            if len(item) == 3:
                finish_tag, flow_id, payload = item
            else:
                finish_tag, flow_id = item
                payload = flow_id
            shard, spilled = self.manager.route(flow_id, occupancies)
            occupancies[shard] += 1
            groups[shard].append((finish_tag, (flow_id, payload)))
            self._track_push(flow_id)
            if spilled:
                spilled_counts[shard] += 1
                if traced:
                    self._tracer.event(
                        "spill",
                        component=FABRIC_COMPONENT,
                        flow=flow_id,
                        home=self.partitioner.shard_for(flow_id),
                        shard=shard,
                    )
        self.pushes += len(items)
        if self._pool is not None:
            self._push_groups_parallel(groups, spilled_counts)
        else:
            for shard, group in enumerate(groups):
                if not group:
                    continue
                self.stores[shard].push_batch(group)
                self._sync_head(shard)
                if traced:
                    self._tracer.event(
                        "shard_enqueue",
                        component=FABRIC_COMPONENT,
                        shard=shard,
                        count=len(group),
                        spilled=spilled_counts[shard],
                    )
        self._maybe_rebalance()

    # ------------------------------------------------------------------
    # dequeue path

    def peek_min_exact(self) -> Optional[Tuple[float, object]]:
        """The global head's exact ``(finish_tag, payload)``, if any."""
        winner = self.tournament.winner
        if winner is None:
            return None
        head = self.stores[winner].peek_min_exact()
        if head is None:  # pragma: no cover - tournament/head desync guard
            raise ProtocolError(f"tournament winner shard{winner} is empty")
        finish_tag, (_flow_id, payload) = head
        return finish_tag, payload

    def pop_min(self) -> Tuple[float, object]:
        """Serve the global minimum tag; ``(finish_tag, payload)`` back."""
        winner = self.tournament.winner
        if winner is None:
            raise ProtocolError("pop_min from an empty fabric")
        comparisons_before = self.tournament.comparisons
        finish_tag, (flow_id, payload) = self.stores[winner].pop_min()
        self._track_pop(flow_id)
        self.pops += 1
        self._sync_head(winner)
        if self._tracer.enabled:
            self._tracer.event(
                "tournament_select",
                component=FABRIC_COMPONENT,
                shard=winner,
                chunk=1,
                comparisons=self.tournament.comparisons - comparisons_before,
            )
        return finish_tag, payload

    def pop_batch(self, count: int) -> List[Tuple[float, object]]:
        """Serve the ``count`` globally smallest tags, in service order.

        Identical sequence to ``count`` :meth:`pop_min` calls.  The
        winner shard drains in a run bounded by the **runner-up fence**:
        while its new head still precedes the second-best shard's head
        (ties included only when the winner has the lower index — the
        tournament's tie rule), no other shard can hold the global
        minimum, so the run costs one tournament refresh total.
        """
        if count < 0:
            raise ConfigurationError("pop_batch count must be non-negative")
        held = len(self)
        if count > held:
            raise ProtocolError(
                f"pop_batch({count}) from a fabric holding {held}"
            )
        out: List[Tuple[float, object]] = []
        remaining = count
        while remaining > 0:
            winner = self.tournament.winner
            if winner is None:  # pragma: no cover - guarded by held check
                raise ProtocolError("fabric drained mid pop_batch")
            comparisons_before = self.tournament.comparisons
            fence_shard = self.tournament.runner_up()
            fence_tag = (
                None
                if fence_shard is None
                else self.tournament.leaf_tag(fence_shard)
            )
            store = self.stores[winner]
            chunk = 0
            while remaining > 0:
                finish_tag, (flow_id, payload) = store.pop_min()
                self._track_pop(flow_id)
                out.append((finish_tag, payload))
                remaining -= 1
                chunk += 1
                head = store.circuit.peek_min()
                if head is None:
                    break
                if fence_tag is not None:
                    if head == fence_tag:
                        if winner > fence_shard:
                            break
                    elif not self.tournament.precedes(head, fence_tag):
                        break
            self.pops += chunk
            self._sync_head(winner)
            if self._tracer.enabled:
                self._tracer.event(
                    "tournament_select",
                    component=FABRIC_COMPONENT,
                    shard=winner,
                    chunk=chunk,
                    comparisons=(
                        self.tournament.comparisons - comparisons_before
                    ),
                )
        return out

    # ------------------------------------------------------------------
    # dynamic updates (cancel / repin without drain-and-refill)

    def handle_location(self, handle: int) -> Tuple[int, int]:
        """Decode a fabric handle into ``(shard, local handle)``."""
        if not 0 <= handle < self.shards * self.capacity_per_shard:
            raise ProtocolError(
                f"fabric handle {handle} outside the "
                f"{self.shards}×{self.capacity_per_shard} handle space"
            )
        return divmod(handle, self.capacity_per_shard)

    def remove(self, handle: int) -> Tuple[float, object]:
        """Cancel a live entry by its :meth:`push` handle, in place.

        Only the owning shard is touched — no drain-and-refill, no
        tournament rebuild beyond that shard's head refresh.  Returns
        the cancelled entry's exact ``(finish_tag, payload)``.
        """
        shard, local = self.handle_location(handle)
        finish_tag, (flow_id, payload) = self.stores[shard].remove(local)
        self._track_pop(flow_id)
        self.cancels += 1
        self._sync_head(shard)
        if self._tracer.enabled:
            self._tracer.event(
                "shard_cancel",
                component=FABRIC_COMPONENT,
                shard=shard,
                flow=flow_id,
            )
        self._maybe_rebalance()
        return finish_tag, payload

    def retag(self, handle: int, new_finish_tag: float) -> int:
        """Repin a live entry to a new finishing tag; new handle back.

        The entry stays on its shard (flow-to-shard pinning is what
        keeps per-flow service order intact), moving only inside that
        shard's circuit under the full wrap discipline.  The other
        shards keep serving throughout — repin never drains anything.
        """
        shard, local = self.handle_location(handle)
        new_local = self.stores[shard].retag(local, new_finish_tag)
        self.repins += 1
        self._sync_head(shard)
        if self._tracer.enabled:
            self._tracer.event(
                "shard_repin",
                component=FABRIC_COMPONENT,
                shard=shard,
            )
        relocations = self._maybe_rebalance()
        new_handle = shard * self.capacity_per_shard + new_local
        return relocations.get(new_handle, new_handle)

    # ------------------------------------------------------------------
    # worker backend (process-parallel enqueue built on checkpoints)

    def use_workers(self, workers: int) -> None:
        """Attach a process pool; batched enqueues fan out across it.

        Built entirely on the checkpoint API: each worker restores its
        shard from a state snapshot, runs the group, and ships the new
        snapshot back.  The returned per-structure deltas ride on the
        ``shard_enqueue`` events so traced runs still reconcile exactly
        against the (snapshot-restored) registry totals.
        """
        from .workers import FabricWorkerPool

        self.close_workers()
        self._pool = FabricWorkerPool(workers)

    def close_workers(self) -> None:
        """Shut the worker pool down (no-op when none is attached)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    @property
    def workers(self) -> int:
        """Attached worker process count (0 = in-process backend)."""
        return self._pool.workers if self._pool is not None else 0

    def __enter__(self) -> "ScheduleFabric":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Reap any attached worker pool, hard on exceptions.

        A clean exit closes the pool gracefully; an exception
        terminates it so orphaned worker processes never outlive a
        crashed soak (the :class:`FabricWorkerPool` contract).
        """
        if self._pool is not None:
            if exc_type is not None:
                self._pool.terminate()
                self._pool = None
            else:
                self.close_workers()
        return False

    def _push_groups_parallel(
        self,
        groups: List[List[Tuple[float, Tuple[int, object]]]],
        spilled_counts: List[int],
    ) -> None:
        traced = self._tracer.enabled
        jobs = [
            (shard, self.stores[shard].to_state(), group)
            for shard, group in enumerate(groups)
            if group
        ]
        results = self._pool.push_batches(
            [
                (state, group, traced, shard_component(shard))
                for shard, state, group in jobs
            ]
        )
        for (shard, _state, group), (
            new_state,
            residual,
            events,
            dropped,
        ) in zip(jobs, results):
            self.stores[shard].load_state(new_state)
            self._sync_head(shard)
            if traced:
                # Merge the shard's shipped event stream before the
                # summary event, mirroring the in-process ordering
                # (per-op circuit events, then shard_enqueue).  The
                # residual deltas cover whatever traffic the shipped
                # events do not claim (ring-dropped events), so the
                # trace reconciles exactly either way.
                if events:
                    self._tracer.ingest(
                        events, component=shard_component(shard)
                    )
                self._tracer.event(
                    "shard_enqueue",
                    component=FABRIC_COMPONENT,
                    shard=shard,
                    count=len(group),
                    spilled=spilled_counts[shard],
                    deltas=residual,
                    worker=True,
                    shipped=len(events),
                    worker_dropped=dropped,
                )

    # ------------------------------------------------------------------
    # telemetry

    @property
    def tracer(self):
        """The fabric-level tracer (:data:`NULL_TRACER` when off)."""
        return self._tracer

    def attach_tracer(self, tracer) -> None:
        """Trace the fabric: shard circuits get per-component views."""
        self._tracer = tracer
        for shard, store in enumerate(self.stores):
            store.attach_tracer(ComponentTracer(tracer, shard_component(shard)))

    def detach_tracer(self) -> None:
        """Stop tracing fabric and shards."""
        for store in self.stores:
            store.detach_tracer()
        self._tracer = NULL_TRACER

    # ------------------------------------------------------------------
    # checkpoint / restore

    def to_state(self) -> dict:
        """Exact serializable snapshot of the whole fabric.

        Includes every shard's full circuit snapshot plus the routing
        state (partitioner overrides, manager counters, per-flow live
        counts).  The tournament is *not* serialized — it is a pure
        function of the shard head registers and is rebuilt on load.
        """
        return {
            "kind": "schedule_fabric",
            "shards": self.shards,
            "granularity": self.granularity,
            "capacity_per_shard": self.capacity_per_shard,
            "fast_mode": self.fast_mode,
            "turbo": self.turbo,
            "mode": self.mode,
            "levels": self.fmt.levels,
            "literal_bits": self.fmt.literal_bits,
            "pushes": self.pushes,
            "pops": self.pops,
            "cancels": self.cancels,
            "repins": self.repins,
            "flow_live": sorted(self._flow_live.items()),
            "stores": [store.to_state() for store in self.stores],
            "partitioner": self.partitioner.to_state(),
            "manager": self.manager.to_state(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this instance."""
        if state.get("kind") != "schedule_fabric":
            raise ConfigurationError(
                f"not a fabric snapshot: kind={state.get('kind')!r}"
            )
        if state["shards"] != self.shards:
            raise ConfigurationError(
                f"snapshot has {state['shards']} shards, fabric has "
                f"{self.shards}"
            )
        for store, store_state in zip(self.stores, state["stores"]):
            store.load_state(store_state)
        self.partitioner.load_state(state["partitioner"])
        self.manager.load_state(state["manager"])
        self.pushes = state["pushes"]
        self.pops = state["pops"]
        # Absent in pre-dynamic-update snapshots.
        self.cancels = state.get("cancels", 0)
        self.repins = state.get("repins", 0)
        self._flow_live = {
            int(flow_id): int(live) for flow_id, live in state["flow_live"]
        }
        self.tournament.rebuild(
            [store.circuit.peek_min() for store in self.stores]
        )

    @classmethod
    def from_state(
        cls,
        state: dict,
        *,
        mode: Optional[str] = None,
        policy: Optional[FabricPolicy] = None,
        tracer=None,
    ) -> "ScheduleFabric":
        """Reconstruct a fabric from a :meth:`to_state` snapshot.

        ``mode`` overrides the snapshot's engine (snapshots are
        engine-neutral); legacy snapshots without a ``mode`` key fall
        back to their ``turbo`` flag.
        """
        partitioner_state = state["partitioner"]
        fabric = cls(
            shards=state["shards"],
            fmt=WordFormat(
                levels=state["levels"], literal_bits=state["literal_bits"]
            ),
            granularity=state["granularity"],
            capacity_per_shard=state["capacity_per_shard"],
            fast_mode=state["fast_mode"],
            mode=mode
            or state.get("mode")
            or ("turbo" if state.get("turbo", False) else "gate"),
            partition_policy=partitioner_state["policy"],
            flow_space=partitioner_state["flow_space"],
            policy=policy,
        )
        fabric.load_state(state)
        if tracer is not None:
            fabric.attach_tracer(tracer)
        return fabric
