"""Area/power/timing roll-up for the sort/retrieve circuit (Table II).

The estimator walks the same architecture parameters the real layout used
(Section III-A / IV):

* tree levels 0-1 in registers (272 bits), level 2 in 32 distributed
  SRAM blocks (4 kbit);
* an 8-block, 4096-entry address translation table;
* three matching circuits plus control/pipeline logic;
* the clock period set by the slowest stage — the node matcher plus a
  memory access — and the throughput model: one tag per four cycles,
  line rate at the paper's conservative 140-byte mean packet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..core.matching import DEFAULT_MATCHER, MatchingCircuit
from ..core.sizing import budget_for
from ..core.words import PAPER_FORMAT, WordFormat
from ..hwsim.errors import ConfigurationError
from .technology import Technology, UMC_130NM

#: pointer width assumed for the translation table entries (log2 of the
#: off-chip tag-storage capacity; 24 bits addresses 16M links)
TRANSLATION_POINTER_BITS = 24

#: control, pipeline registers, and interface logic in gate equivalents
CONTROL_OVERHEAD_GATES = 9000.0

#: SRAM read access time in 130 nm for small distributed macros, ns
SRAM_ACCESS_NS = 3.0


@dataclass(frozen=True)
class SynthesisEstimate:
    """A Table II-shaped summary."""

    technology: str
    logic_gates: float
    register_bits: int
    sram_bits: int
    memory_blocks: int
    area_logic_mm2: float
    area_memory_mm2: float
    clock_mhz: float
    power_logic_mw: float
    power_memory_mw: float
    packets_per_second: float
    line_rate_gbps_at_140b: float

    @property
    def area_total_mm2(self) -> float:
        """Total die estimate (logic + memory)."""
        return self.area_logic_mm2 + self.area_memory_mm2

    @property
    def power_total_mw(self) -> float:
        """Total dynamic power estimate."""
        return self.power_logic_mw + self.power_memory_mw


def estimate_sort_retrieve(
    fmt: WordFormat = PAPER_FORMAT,
    *,
    technology: Technology = UMC_130NM,
    matcher_factory=DEFAULT_MATCHER,
    register_levels: int = 2,
) -> SynthesisEstimate:
    """Estimate the silicon figures of the sort/retrieve circuit."""
    budget = budget_for(fmt, register_levels=register_levels)
    matcher: MatchingCircuit = matcher_factory(fmt.branching_factor)

    # --- logic -------------------------------------------------------
    # One matching circuit per level (identical, Section III-A), each
    # duplicated for the parallel backup search, plus control overhead.
    matcher_gates = 2 * fmt.levels * matcher.cost().area
    logic_gates = matcher_gates + CONTROL_OVERHEAD_GATES

    # --- memory ------------------------------------------------------
    translation_bits = budget.translation_entries * TRANSLATION_POINTER_BITS
    sram_bits = budget.sram_bits + translation_bits
    register_bits = budget.register_bits
    # Paper Fig. 12: 32 small blocks for the tree's bottom level plus 8
    # larger blocks for the translation table.
    tree_sram_levels = fmt.levels - register_levels
    memory_blocks = (32 if tree_sram_levels > 0 else 0) + 8

    # --- timing ------------------------------------------------------
    # Critical stage: one node match plus the level memory access.
    match_ns = matcher.cost().delay * technology.gate_delay_ns
    period_ns = match_ns + SRAM_ACCESS_NS + technology.wire_margin_ns
    clock_mhz = 1000.0 / period_ns
    packets_per_second = clock_mhz * 1e6 / 4.0
    line_rate = packets_per_second * 140 * 8 / 1e9

    # --- roll-up -----------------------------------------------------
    area_logic = logic_gates * technology.gate_area_mm2
    area_memory = (
        sram_bits * technology.sram_bit_area_mm2
        + register_bits * technology.register_bit_area_mm2
    )
    power_logic = logic_gates * technology.gate_power_mw_per_mhz * clock_mhz
    power_memory = (
        sram_bits * technology.sram_bit_power_mw_per_mhz * clock_mhz
    )

    return SynthesisEstimate(
        technology=technology.name,
        logic_gates=logic_gates,
        register_bits=register_bits,
        sram_bits=sram_bits,
        memory_blocks=memory_blocks,
        area_logic_mm2=area_logic,
        area_memory_mm2=area_memory,
        clock_mhz=clock_mhz,
        power_logic_mw=power_logic,
        power_memory_mw=power_memory,
        packets_per_second=packets_per_second,
        line_rate_gbps_at_140b=line_rate,
    )


def scaling_sweep(
    word_bits_options=(12, 15, 16, 20),
    *,
    technology: Technology = UMC_130NM,
) -> Dict[int, SynthesisEstimate]:
    """Estimate the circuit at wider tag formats (the paper's 15-bit
    variant with a 32k-entry translation table, and beyond)."""
    results = {}
    for word_bits in word_bits_options:
        best_fmt = None
        # Prefer 4-bit literals as in the paper; fall back to the closest
        # factorization.
        for literal_bits in (4, 5, 3, 2, 1):
            if word_bits % literal_bits == 0:
                best_fmt = WordFormat(
                    levels=word_bits // literal_bits, literal_bits=literal_bits
                )
                break
        if best_fmt is None:
            raise ConfigurationError(f"no factorization for {word_bits} bits")
        results[word_bits] = estimate_sort_retrieve(
            best_fmt, technology=technology
        )
    return results


def render_table(estimate: SynthesisEstimate) -> str:
    """Format an estimate in the shape of the paper's Table II."""
    rows = [
        ("Technology", estimate.technology),
        ("Logic gates (NAND2 eq.)", f"{estimate.logic_gates:,.0f}"),
        ("Register bits", f"{estimate.register_bits:,}"),
        ("SRAM bits", f"{estimate.sram_bits:,}"),
        ("Memory blocks", f"{estimate.memory_blocks}"),
        ("Logic area (mm^2)", f"{estimate.area_logic_mm2:.3f}"),
        ("Memory area (mm^2)", f"{estimate.area_memory_mm2:.3f}"),
        ("Total area (mm^2)", f"{estimate.area_total_mm2:.3f}"),
        ("Clock (MHz)", f"{estimate.clock_mhz:.1f}"),
        ("Logic+interconnect power (mW)", f"{estimate.power_logic_mw:.1f}"),
        ("Memory power (mW)", f"{estimate.power_memory_mw:.1f}"),
        ("Total power (mW)", f"{estimate.power_total_mw:.1f}"),
        ("Throughput (Mpackets/s)", f"{estimate.packets_per_second / 1e6:.1f}"),
        ("Line rate @140B (Gb/s)", f"{estimate.line_rate_gbps_at_140b:.1f}"),
    ]
    width = max(len(label) for label, _ in rows)
    lines = ["POST-LAYOUT ESTIMATE (Table II substitute)"]
    lines += [f"  {label:<{width}}  {value}" for label, value in rows]
    return "\n".join(lines)
