"""External tag-storage memory technologies (Section III-C).

The paper's tag storage "is implemented off chip, using SRAM.  Currently,
QDRII and RLD RAM versions are also under development."  The storage
technology sets the splice-stage cycle time and hence the whole
scheduler's throughput (the tree/table stage was matched to the storage's
four accesses).  This module models the candidate technologies'
random-access behaviour and rolls them into the throughput chain:

* the four Fig. 9 accesses are *dependent* (the predecessor address comes
  from the translation table, the free location from the previous read),
  so random-access latency — not burst bandwidth — dominates;
* QDRII's separate read/write ports let the two reads overlap the two
  writes of adjacent operations, halving the effective splice time;
* RLDRAM trades a slightly longer random cycle for much larger, cheaper
  parts (more tags stored), which is why the paper pursues both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..hwsim.errors import ConfigurationError


@dataclass(frozen=True)
class MemoryTechnology:
    """A candidate external memory for the tag storage."""

    name: str
    #: true random-access cycle time (same-bank row-to-row), ns
    random_cycle_ns: float
    #: independent read and write ports (QDR-style) -> reads and writes
    #: of back-to-back operations overlap
    dual_port: bool
    #: device capacity in megabits, for the links-per-device figure
    capacity_mbit: int


# Representative mid-2000s parts (order-of-magnitude class, not bins).
EXTERNAL_SRAM = MemoryTechnology(
    name="external SRAM (ZBT)",
    random_cycle_ns=5.0,
    dual_port=False,
    capacity_mbit=18,
)
QDRII_SRAM = MemoryTechnology(
    name="QDRII SRAM",
    random_cycle_ns=3.3,
    dual_port=True,
    capacity_mbit=36,
)
RLDRAM = MemoryTechnology(
    name="RLDRAM II",
    random_cycle_ns=15.0,
    dual_port=False,
    capacity_mbit=288,
)

ALL_TECHNOLOGIES = (EXTERNAL_SRAM, QDRII_SRAM, RLDRAM)

#: accesses per operation: the Fig. 9 splice (2 reads + 2 writes)
ACCESSES_PER_OPERATION = 4

#: bits per link: tag + next pointer + successor tag + packet pointer
LINK_BITS = 74


@dataclass(frozen=True)
class StorageThroughput:
    """Throughput consequences of one memory choice."""

    technology: str
    operation_time_ns: float
    operations_per_second: float
    line_rate_gbps_at_140b: float
    links_per_device: int


def storage_throughput(technology: MemoryTechnology) -> StorageThroughput:
    """Packet rate the tag storage sustains on ``technology``.

    One operation needs four dependent accesses; a dual-port (QDR)
    memory overlaps the read pair of operation i+1 with the write pair
    of operation i, so the steady-state spacing is two cycles instead of
    four.
    """
    if technology.random_cycle_ns <= 0:
        raise ConfigurationError("cycle time must be positive")
    effective_accesses = (
        ACCESSES_PER_OPERATION // 2 if technology.dual_port
        else ACCESSES_PER_OPERATION
    )
    operation_ns = effective_accesses * technology.random_cycle_ns
    operations_per_second = 1e9 / operation_ns
    line_rate = operations_per_second * 140 * 8 / 1e9
    links = technology.capacity_mbit * 1024 * 1024 // LINK_BITS
    return StorageThroughput(
        technology=technology.name,
        operation_time_ns=operation_ns,
        operations_per_second=operations_per_second,
        line_rate_gbps_at_140b=line_rate,
        links_per_device=links,
    )


def compare_technologies() -> Dict[str, StorageThroughput]:
    """All candidate memories, keyed by name."""
    return {
        technology.name: storage_throughput(technology)
        for technology in ALL_TECHNOLOGIES
    }


def required_random_cycle_ns(
    target_gbps: float, *, mean_packet_bytes: float = 140.0, dual_port: bool = False
) -> float:
    """The memory cycle time a line-rate target demands.

    Inverts the chain: target Gb/s -> packets/s -> operation time ->
    per-access cycle.  Useful for the terabit-scaling discussion in the
    paper's conclusion.
    """
    if target_gbps <= 0 or mean_packet_bytes <= 0:
        raise ConfigurationError("targets must be positive")
    operations_per_second = target_gbps * 1e9 / (mean_packet_bytes * 8)
    operation_ns = 1e9 / operations_per_second
    accesses = (
        ACCESSES_PER_OPERATION // 2 if dual_port else ACCESSES_PER_OPERATION
    )
    return operation_ns / accesses
