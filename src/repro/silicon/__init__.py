"""First-order silicon estimation (the Table II substitute)."""

from .memory_timing import (
    ALL_TECHNOLOGIES,
    EXTERNAL_SRAM,
    QDRII_SRAM,
    RLDRAM,
    MemoryTechnology,
    StorageThroughput,
    compare_technologies,
    required_random_cycle_ns,
    storage_throughput,
)
from .estimate import (
    SynthesisEstimate,
    estimate_sort_retrieve,
    render_table,
    scaling_sweep,
)
from .technology import UMC_130NM, Technology

__all__ = [
    "ALL_TECHNOLOGIES",
    "EXTERNAL_SRAM",
    "QDRII_SRAM",
    "RLDRAM",
    "MemoryTechnology",
    "StorageThroughput",
    "compare_technologies",
    "required_random_cycle_ns",
    "storage_throughput",
    "SynthesisEstimate",
    "estimate_sort_retrieve",
    "render_table",
    "scaling_sweep",
    "UMC_130NM",
    "Technology",
]
