"""130-nm technology constants for first-order area/power/timing estimates.

The paper implements the circuit in UMC 130-nm standard cells (Table II).
We cannot run a synthesis flow, so Table II is *estimated* from the
architecture's bit and gate counts using generic 130-nm-class densities
from the public literature.  The constants below are deliberately
first-order — the reproduction targets the *shape* of Table II (memory-
dominated area, logic-dominated power, a ~140-150 MHz clock), not its
exact microns.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """A process node's density/power/speed coefficients."""

    name: str
    #: area of one NAND2-equivalent gate, in mm^2
    gate_area_mm2: float
    #: area of one on-chip SRAM bit (including periphery), in mm^2
    sram_bit_area_mm2: float
    #: area of one register (flip-flop) bit, in mm^2
    register_bit_area_mm2: float
    #: dynamic power of one gate toggling at 1 MHz, in mW
    gate_power_mw_per_mhz: float
    #: dynamic power of one SRAM bit's share at 1 MHz access rate, in mW
    sram_bit_power_mw_per_mhz: float
    #: intrinsic delay of one unit gate, in ns
    gate_delay_ns: float
    #: extra interconnect/setup margin on the critical path, in ns
    wire_margin_ns: float


UMC_130NM = Technology(
    name="UMC 130 nm (generic estimates)",
    # ~5.1 um^2 for a NAND2 in 130 nm standard cells.
    gate_area_mm2=5.1e-6,
    # ~2.4 um^2 per SRAM bit including decoder/sense periphery share.
    sram_bit_area_mm2=2.4e-6,
    # A scan flip-flop is ~6 NAND2 equivalents.
    register_bit_area_mm2=30.6e-6,
    # ~8 nW/MHz per gate at 1.2 V, typical switching activity.
    gate_power_mw_per_mhz=8.0e-6,
    sram_bit_power_mw_per_mhz=0.35e-6,
    # Unit-gate delay including average routing load in 130-nm standard
    # cells (raw FO4 is ~65 ps; real matcher chains route-load to ~2-3x).
    gate_delay_ns=0.15,
    # clock skew, setup, and routing margin on the critical path
    wire_margin_ns=2.0,
)
