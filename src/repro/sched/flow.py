"""Flows (sessions) and the flow table.

A *flow* is one scheduled session: a weight share phi_i plus bookkeeping.
The paper's scheduler supports up to 8 million concurrent sessions
(Section IV); the flow table is therefore a plain dict keyed by integer
flow id rather than a dense array.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, Optional

from ..hwsim.errors import ConfigurationError
from .packet import Packet


@dataclass
class Flow:
    """One scheduled session."""

    flow_id: int
    weight: float = 1.0
    #: optional guaranteed rate in bits/s, used by delay-bound checks
    guaranteed_rate_bps: Optional[float] = None
    queue: Deque[Packet] = field(default_factory=deque)
    last_finish_tag: float = 0.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(
                f"flow {self.flow_id}: weight must be positive"
            )

    @property
    def backlogged(self) -> bool:
        """True when packets are queued."""
        return bool(self.queue)

    @property
    def head(self) -> Optional[Packet]:
        """The head-of-line packet, if any."""
        return self.queue[0] if self.queue else None


class FlowTable:
    """All flows known to a scheduler."""

    def __init__(self) -> None:
        self._flows: Dict[int, Flow] = {}

    def add(
        self,
        flow_id: int,
        weight: float = 1.0,
        *,
        guaranteed_rate_bps: Optional[float] = None,
    ) -> Flow:
        """Register a flow; re-registering an id is an error."""
        if flow_id in self._flows:
            raise ConfigurationError(f"flow {flow_id} already registered")
        flow = Flow(
            flow_id=flow_id,
            weight=weight,
            guaranteed_rate_bps=guaranteed_rate_bps,
        )
        self._flows[flow_id] = flow
        return flow

    def get(self, flow_id: int) -> Flow:
        """Fetch a flow, registering it with weight 1 if unknown."""
        flow = self._flows.get(flow_id)
        if flow is None:
            flow = self.add(flow_id)
        return flow

    def set_weight(
        self,
        flow_id: int,
        weight: float,
        *,
        guaranteed_rate_bps: Optional[float] = None,
    ) -> Flow:
        """Reconfigure a registered flow's weight in place.

        Unlike :meth:`add` this *requires* the flow to exist — it is the
        SLA-renegotiation path (admission control re-deriving weights on
        a live scheduler), where a typo'd flow id must fail loudly
        rather than silently register a fresh default-weight flow.
        """
        flow = self._flows.get(flow_id)
        if flow is None:
            raise ConfigurationError(
                f"flow {flow_id} is not registered; add it first"
            )
        if weight <= 0:
            raise ConfigurationError(
                f"flow {flow_id}: weight must be positive"
            )
        flow.weight = weight
        if guaranteed_rate_bps is not None:
            flow.guaranteed_rate_bps = guaranteed_rate_bps
        return flow

    def __contains__(self, flow_id: int) -> bool:
        return flow_id in self._flows

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows.values())

    def __len__(self) -> int:
        return len(self._flows)

    @property
    def total_weight(self) -> float:
        """Sum of all registered weights."""
        return sum(flow.weight for flow in self._flows.values())

    @property
    def backlogged_weight(self) -> float:
        """Sum of weights of currently backlogged flows."""
        return sum(
            flow.weight for flow in self._flows.values() if flow.backlogged
        )

    def backlogged_flows(self) -> Iterator[Flow]:
        """All flows with queued packets."""
        return (flow for flow in self._flows.values() if flow.backlogged)
