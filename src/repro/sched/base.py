"""Common scheduler interface and the single-link simulation loop.

A :class:`PacketScheduler` decides, each time the output link goes idle,
which queued packet transmits next.  :func:`simulate` drives a scheduler
with a pre-generated arrival trace over a non-preemptive link of fixed
rate, producing per-packet departure times — the substrate every
delay-bound and fairness experiment runs on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..hwsim.errors import ConfigurationError
from .flow import FlowTable
from .packet import Packet


class PacketScheduler(ABC):
    """A packet scheduler for one output link."""

    #: short identifier used in reports
    name: str = "abstract"

    def __init__(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ConfigurationError("link rate must be positive")
        self.rate_bps = rate_bps
        self.flows = FlowTable()

    def add_flow(self, flow_id: int, weight: float = 1.0, **kwargs) -> None:
        """Register a flow before (or at) its first packet."""
        self.flows.add(flow_id, weight, **kwargs)

    def set_flow_weight(
        self,
        flow_id: int,
        weight: float,
        *,
        guaranteed_rate_bps: Optional[float] = None,
    ) -> None:
        """Reconfigure a registered flow's weight on a live scheduler.

        Future tags are computed against the new weight; packets already
        queued keep the tags they were assigned — the standard WFQ
        renegotiation semantics (the GPS reference changes share from
        the reconfiguration instant forward).
        """
        self.flows.set_weight(
            flow_id, weight, guaranteed_rate_bps=guaranteed_rate_bps
        )

    @abstractmethod
    def enqueue(self, packet: Packet, now: float) -> None:
        """Accept an arriving packet at real time ``now``."""

    @abstractmethod
    def select_next(self, now: float) -> Optional[Packet]:
        """Pick and remove the packet to transmit next, or None.

        Work-conserving policies must return a packet whenever the
        backlog is non-zero.  A policy with an eligibility rule may
        return None and should then implement
        :meth:`earliest_eligible_time`.
        """

    def earliest_eligible_time(self, now: float) -> Optional[float]:
        """When a backlogged-but-ineligible policy can next transmit.

        Only consulted after :meth:`select_next` returned None with a
        non-zero backlog; the default (None) declares the policy
        work-conserving, making that situation an error.
        """
        return None

    @property
    def backlog(self) -> int:
        """Total queued packets."""
        return sum(len(flow.queue) for flow in self.flows)

    def transmission_time(self, packet: Packet) -> float:
        """Seconds needed to serialize ``packet`` onto the link."""
        return packet.size_bits / self.rate_bps


@dataclass
class SimulationResult:
    """Everything the metrics layer needs from one run."""

    packets: List[Packet] = field(default_factory=list)
    finish_time: float = 0.0

    def by_flow(self) -> dict:
        """Departed packets grouped by flow id."""
        grouped: dict = {}
        for packet in self.packets:
            grouped.setdefault(packet.flow_id, []).append(packet)
        return grouped


def simulate(
    scheduler: PacketScheduler,
    arrivals: Iterable[Packet],
) -> SimulationResult:
    """Run ``scheduler`` against an arrival trace on one link.

    The link is non-preemptive: once a packet starts transmitting it
    completes — the packet-integrity constraint that separates every
    practical policy from fluid GPS.  Arrivals must be time-sorted.
    """
    trace = sorted(arrivals, key=lambda p: (p.arrival_time, p.packet_id))
    result = SimulationResult()
    now = 0.0
    index = 0
    total = len(trace)
    stalled_selects = 0

    while index < total or scheduler.backlog:
        if scheduler.backlog == 0:
            now = max(now, trace[index].arrival_time)
        while index < total and trace[index].arrival_time <= now + 1e-15:
            packet = trace[index]
            index += 1
            scheduler.enqueue(packet, packet.arrival_time)
        chosen = scheduler.select_next(now)
        if chosen is None:
            # Backlogged but ineligible: advance to the next event (the
            # next arrival or the scheduler's own eligibility horizon).
            stalled_selects += 1
            if stalled_selects > 2:
                raise ConfigurationError(
                    f"{scheduler.name}: backlog of {scheduler.backlog} with "
                    "no selectable packet and no time progress"
                )
            candidates = []
            if index < total:
                candidates.append(trace[index].arrival_time)
            eligible_at = scheduler.earliest_eligible_time(now)
            if eligible_at is not None:
                candidates.append(max(eligible_at, now))
            if not candidates:
                raise ConfigurationError(
                    f"{scheduler.name}: backlog of {scheduler.backlog} with "
                    "no selectable packet and no future event"
                )
            next_now = min(candidates)
            if next_now > now:
                stalled_selects = 0
            now = next_now
            continue
        stalled_selects = 0
        chosen.departure_time = now + scheduler.transmission_time(chosen)
        now = chosen.departure_time
        result.packets.append(chosen)

    result.finish_time = now
    result.packets.sort(key=lambda p: (p.departure_time, p.packet_id))
    return result
