"""Packets and per-packet scheduling metadata."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One IP packet traversing the scheduler.

    Attributes:
        flow_id: the session/connection the packet belongs to.
        size_bytes: wire size in bytes.
        arrival_time: arrival at the scheduler, in seconds.
        packet_id: globally unique arrival sequence number.
        start_tag: virtual start time assigned by a fair-queueing policy.
        finish_tag: virtual finishing time ("finishing tag" of the paper).
        departure_time: transmission-complete time, set by the simulator.
    """

    flow_id: int
    size_bytes: int
    arrival_time: float
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    start_tag: Optional[float] = None
    finish_tag: Optional[float] = None
    departure_time: Optional[float] = None

    @property
    def size_bits(self) -> int:
        """Wire size in bits."""
        return self.size_bytes * 8

    def to_dict(self) -> dict:
        """JSON-ready snapshot (service-plane checkpoint records)."""
        return {
            "flow_id": self.flow_id,
            "size_bytes": self.size_bytes,
            "arrival_time": self.arrival_time,
            "packet_id": self.packet_id,
            "start_tag": self.start_tag,
            "finish_tag": self.finish_tag,
            "departure_time": self.departure_time,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Packet":
        """Rebuild a packet from its :meth:`to_dict` form.

        The restored packet keeps the recorded ``packet_id`` — the
        global id counter is not rewound, so fresh packets created after
        a restore never collide with the resurrected ones.
        """
        return cls(
            flow_id=record["flow_id"],
            size_bytes=record["size_bytes"],
            arrival_time=record["arrival_time"],
            packet_id=record["packet_id"],
            start_tag=record.get("start_tag"),
            finish_tag=record.get("finish_tag"),
            departure_time=record.get("departure_time"),
        )

    @property
    def delay(self) -> Optional[float]:
        """Queueing + transmission delay, once departed."""
        if self.departure_time is None:
            return None
        return self.departure_time - self.arrival_time

    def __repr__(self) -> str:
        return (
            f"Packet(id={self.packet_id}, flow={self.flow_id}, "
            f"{self.size_bytes}B @ {self.arrival_time:.6f})"
        )
