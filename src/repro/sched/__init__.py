"""Fair-queueing scheduling substrate.

The GPS fluid reference, the WFQ virtual-time engine (paper eq. (1)),
the fair-queueing family (WFQ, WF²Q, WF²Q+, SCFQ, FBFQ), the round-robin
family (WRR, DRR, MDRR, CBQ, SRR), and the single-link simulation loop.
"""

from .base import PacketScheduler, SimulationResult, simulate
from .cbq import CBQScheduler
from .drr import DRRScheduler
from .fbfq import FBFQScheduler
from .flow import Flow, FlowTable
from .gps import GPSFluidSimulator, GpsDeparture
from .hpfq import HPFQScheduler
from .mdrr import MDRRScheduler
from .packet import Packet
from .scfq import SCFQScheduler
from .srr import SRRScheduler
from .tag_computation import FixedPointTags, FixedPointVirtualClock
from .virtual_time import TaggedArrival, VirtualClock
from .wf2q import WF2QScheduler
from .wf2qplus import WF2QPlusScheduler
from .wfq import HeapTagStore, TagStore, WFQScheduler
from .wrr import WRRScheduler

__all__ = [
    "PacketScheduler",
    "SimulationResult",
    "simulate",
    "CBQScheduler",
    "DRRScheduler",
    "FBFQScheduler",
    "Flow",
    "FlowTable",
    "GPSFluidSimulator",
    "GpsDeparture",
    "HPFQScheduler",
    "MDRRScheduler",
    "Packet",
    "SCFQScheduler",
    "SRRScheduler",
    "FixedPointTags",
    "FixedPointVirtualClock",
    "TaggedArrival",
    "VirtualClock",
    "WF2QScheduler",
    "WF2QPlusScheduler",
    "HeapTagStore",
    "TagStore",
    "WFQScheduler",
    "WRRScheduler",
]
