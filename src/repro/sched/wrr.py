"""Weighted round robin — ref. [2].

The simplest weighted policy: each flow receives a number of packet slots
per round proportional to its weight.  As the paper stresses, WRR
"requires the average packet size to be known so that normalized weights
can be calculated" — the ``mean_packet_bytes`` parameter — and with
variable packet sizes its bandwidth shares and delays drift, which the QoS
benchmarks measure against WFQ.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..hwsim.errors import ConfigurationError
from .base import PacketScheduler
from .packet import Packet


class WRRScheduler(PacketScheduler):
    """Slot-based weighted round robin."""

    name = "wrr"

    def __init__(
        self,
        rate_bps: float,
        *,
        mean_packet_bytes: float = 500.0,
        slots_per_unit_weight: int = 1,
    ) -> None:
        super().__init__(rate_bps)
        if mean_packet_bytes <= 0:
            raise ConfigurationError("mean packet size must be positive")
        if slots_per_unit_weight < 1:
            raise ConfigurationError("slots per unit weight must be >= 1")
        self.mean_packet_bytes = mean_packet_bytes
        self.slots_per_unit_weight = slots_per_unit_weight
        self._schedule: List[int] = []
        self._cursor = 0
        self._dirty = True

    def add_flow(self, flow_id: int, weight: float = 1.0, **kwargs) -> None:
        super().add_flow(flow_id, weight, **kwargs)
        self._dirty = True

    def _rebuild_schedule(self) -> None:
        """Interleave per-flow slots (normalized by the assumed mean size).

        Slots are spread round-robin rather than consecutively so a heavy
        flow cannot monopolize a burst of consecutive slots.
        """
        slot_counts = {}
        for flow in self.flows:
            slots = max(
                1, math.ceil(flow.weight * self.slots_per_unit_weight)
            )
            slot_counts[flow.flow_id] = slots
        self._schedule = []
        remaining = dict(slot_counts)
        while any(count > 0 for count in remaining.values()):
            for flow_id, count in list(remaining.items()):
                if count > 0:
                    self._schedule.append(flow_id)
                    remaining[flow_id] = count - 1
        self._cursor = 0
        self._dirty = False

    def enqueue(self, packet: Packet, now: float) -> None:
        self.flows.get(packet.flow_id).queue.append(packet)
        if self._dirty:
            self._rebuild_schedule()

    def select_next(self, now: float) -> Optional[Packet]:
        if self._dirty:
            self._rebuild_schedule()
        if not self._schedule:
            return None
        for _ in range(len(self._schedule)):
            flow_id = self._schedule[self._cursor]
            self._cursor = (self._cursor + 1) % len(self._schedule)
            flow = self.flows.get(flow_id)
            if flow.backlogged:
                return flow.queue.popleft()
        return None
