"""Fixed-point WFQ tag-computation circuit — ref. [8] of the paper.

The Fig. 1 architecture's first block is a *hardware* WFQ finishing-tag
computation (McKillen & Sezer, "A WFQ finishing tag computation
architecture and implementation").  Hardware cannot iterate eq. (1) in
floating point: virtual time, weights, and tags are fixed-point values,
and the reciprocal weight is a stored constant per session.  Finite
precision is what makes *duplicate finishing tags* a first-class event —
"depending on the accuracy of the WFQ computation, tag values may be
rounded off so that theoretically two or more tags of the same value can
exist in the scheduler at one time" (Section III-C) — which is exactly
why the sort/retrieve circuit carries the Fig. 11 duplicate machinery.

:class:`FixedPointVirtualClock` mirrors the exact
:class:`~repro.sched.virtual_time.VirtualClock` but carries virtual time
and tags in integer units of ``2**-frac_bits``, stores per-session
*reciprocal weights* quantized to ``frac_bits`` fractional bits (one
multiply per tag instead of a divide — the standard hardware trick), and
reports its rounding behaviour:

* ``duplicate_tags`` — how many computed finishing tags collided
  exactly with a previously issued tag (across all sessions) — the
  event rate the Fig. 11 duplicate machinery absorbs;
* :meth:`max_error_units` — worst observed deviation against an exact
  shadow computation (enabled with ``track_error=True``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..hwsim.errors import ConfigurationError
from .virtual_time import VirtualClock


@dataclass(frozen=True)
class FixedPointTags:
    """Quantized (start, finish) tags, in integer fixed-point units."""

    start_units: int
    finish_units: int


class FixedPointVirtualClock:
    """Hardware-style eq. (1) machinery in fixed-point arithmetic."""

    def __init__(
        self,
        rate_bps: float = 1.0,
        *,
        frac_bits: int = 8,
        track_error: bool = False,
    ) -> None:
        if frac_bits < 0:
            raise ConfigurationError("fractional bits must be non-negative")
        if rate_bps <= 0:
            raise ConfigurationError("link rate must be positive")
        self.rate_bps = rate_bps
        self.frac_bits = frac_bits
        self.scale = 1 << frac_bits
        #: per-session reciprocal weights, in fixed-point units
        self._reciprocal_units: Dict[int, int] = {}
        self._last_finish_units: Dict[int, int] = {}
        self._issued_units: Dict[int, int] = {}
        self.duplicate_tags = 0
        self._shadow: Optional[VirtualClock] = (
            VirtualClock(rate_bps) if track_error else None
        )
        self._max_error_units = 0
        # The GPS busy-set iteration reuses the exact engine's event
        # machinery; only the *tag arithmetic* is quantized, matching the
        # ref. [8] split between the virtual-time datapath and the
        # per-packet multiply.
        self._engine = VirtualClock(rate_bps)

    # ------------------------------------------------------------------
    # sessions

    def register(self, session: int, weight: float) -> None:
        """Store a session's quantized reciprocal weight."""
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        reciprocal = round(self.scale / weight)
        if reciprocal == 0:
            raise ConfigurationError(
                f"weight {weight} too large for {self.frac_bits} fractional "
                "bits (reciprocal rounds to zero)"
            )
        self._reciprocal_units[session] = reciprocal
        self._engine.register(session, weight)
        if self._shadow is not None:
            self._shadow.register(session, weight)

    def reciprocal_of(self, session: int) -> int:
        """The stored fixed-point reciprocal weight (default: weight 1)."""
        return self._reciprocal_units.get(session, self.scale)

    # ------------------------------------------------------------------
    # tag computation

    def quantize(self, value: float) -> int:
        """Truncate a real value to fixed-point units (hardware floor)."""
        return int(value * self.scale)

    def on_arrival(
        self, session: int, size_bits: float, arrival_time: float
    ) -> FixedPointTags:
        """Compute quantized (start, finish) tags for one packet.

        The virtual-time advance runs on the shared engine; the tag
        datapath is ``F_units = max(V_units, F_prev_units) + L * recip``
        — one integer multiply per packet, since the stored reciprocal
        already carries the 2**frac_bits scale.
        """
        self._engine.advance_to(arrival_time)
        virtual_units = self.quantize(self._engine.virtual_time)
        previous_units = self._last_finish_units.get(session, 0)
        start_units = max(virtual_units, previous_units)
        increment_units = int(size_bits) * self.reciprocal_of(session)
        # A zero increment would stall the session's tag sequence; the
        # hardware clamps to one unit (the paper's rounding floor).
        increment_units = max(increment_units, 1)
        finish_units = start_units + increment_units
        if finish_units in self._issued_units:
            self.duplicate_tags += 1
        self._issued_units[finish_units] = (
            self._issued_units.get(finish_units, 0) + 1
        )
        self._last_finish_units[session] = finish_units
        # Keep the GPS busy set advancing with the *exact* sizes so the
        # virtual-time slope stays faithful.
        self._engine.on_arrival(session, size_bits, arrival_time)
        if self._shadow is not None:
            exact = self._shadow.on_arrival(session, size_bits, arrival_time)
            error = abs(self.quantize(exact.finish_tag) - finish_units)
            if error > self._max_error_units:
                self._max_error_units = error
        return FixedPointTags(
            start_units=start_units, finish_units=finish_units
        )

    # ------------------------------------------------------------------
    # observers

    @property
    def virtual_time_units(self) -> int:
        """Current virtual time in fixed-point units."""
        return self.quantize(self._engine.virtual_time)

    def max_error_units(self) -> int:
        """Worst deviation from the exact computation (needs tracking)."""
        if self._shadow is None:
            raise ConfigurationError(
                "construct with track_error=True to measure error"
            )
        return self._max_error_units

    def to_real(self, units: int) -> float:
        """Convert fixed-point units back to virtual-time reals."""
        return units / self.scale
