"""SCFQ — self-clocked fair queueing.

A member of the fair-queueing family the paper's circuit supports: the
virtual time is simply the finishing tag of the packet currently in
service, so no GPS simulation is needed.  Start tags use
``S = max(F_prev(flow), v(t))`` and service is smallest-finish-tag —
exactly the tag-sorting workload of the sort/retrieve circuit, with a
cheaper (but less accurate) clock than WFQ.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

from .base import PacketScheduler
from .packet import Packet


class SCFQScheduler(PacketScheduler):
    """Self-clocked fair queueing."""

    name = "scfq"

    def __init__(self, rate_bps: float) -> None:
        super().__init__(rate_bps)
        self._service_tag = 0.0  # v(t): finish tag of packet in service
        self._heap: List[Tuple[float, int, int]] = []
        self._sequence = itertools.count()

    def enqueue(self, packet: Packet, now: float) -> None:
        flow = self.flows.get(packet.flow_id)
        start = max(flow.last_finish_tag, self._service_tag)
        finish = start + packet.size_bits / flow.weight
        packet.start_tag = start
        packet.finish_tag = finish
        flow.last_finish_tag = finish
        flow.queue.append(packet)
        heapq.heappush(
            self._heap, (finish, next(self._sequence), packet.flow_id)
        )

    def select_next(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        finish, _, flow_id = heapq.heappop(self._heap)
        self._service_tag = finish
        return self.flows.get(flow_id).queue.popleft()
