"""WF²Q — worst-case fair weighted fair queueing, ref. [5].

Identical tag computation to WFQ, but a packet is only *eligible* for
service once its virtual start time has been reached by GPS
(``S <= V(now)``); among eligible head-of-line packets the smallest
finishing tag wins.  This removes WFQ's ability to run ahead of GPS,
giving the better worst-case fairness the paper cites — at the price of
the eligibility test and, like WFQ, of sorting finishing tags at the
output (which is where the sort/retrieve circuit comes in for both).
"""

from __future__ import annotations

from typing import Optional

from .base import PacketScheduler
from .packet import Packet
from .virtual_time import VirtualClock

_ELIGIBILITY_SLACK = 1e-9


class WF2QScheduler(PacketScheduler):
    """Eligibility-gated smallest-finish-tag scheduling."""

    name = "wf2q"

    def __init__(self, rate_bps: float) -> None:
        super().__init__(rate_bps)
        self.clock = VirtualClock(rate_bps)

    def add_flow(self, flow_id: int, weight: float = 1.0, **kwargs) -> None:
        super().add_flow(flow_id, weight, **kwargs)
        self.clock.register(flow_id, weight)

    def enqueue(self, packet: Packet, now: float) -> None:
        flow = self.flows.get(packet.flow_id)
        tags = self.clock.on_arrival(packet.flow_id, packet.size_bits, now)
        packet.start_tag = tags.start_tag
        packet.finish_tag = tags.finish_tag
        flow.queue.append(packet)

    def select_next(self, now: float) -> Optional[Packet]:
        self.clock.advance_to(now)
        virtual_now = self.clock.virtual_time
        best_flow = None
        best_finish = None
        for flow in self.flows.backlogged_flows():
            head = flow.head
            if head.start_tag > virtual_now + _ELIGIBILITY_SLACK:
                continue
            if best_finish is None or head.finish_tag < best_finish:
                best_finish = head.finish_tag
                best_flow = flow
        if best_flow is None:
            return None
        return best_flow.queue.popleft()

    def earliest_eligible_time(self, now: float) -> Optional[float]:
        """Real time at which the earliest-start head becomes eligible."""
        self.clock.advance_to(now)
        starts = [
            flow.head.start_tag for flow in self.flows.backlogged_flows()
        ]
        if not starts:
            return None
        earliest_start = min(starts)
        gap = earliest_start - self.clock.virtual_time
        if gap <= 0:
            return now
        busy = max(self.clock.busy_weight, 1e-12)
        return now + gap * busy / self.rate_bps + _ELIGIBILITY_SLACK
