"""Stratified round robin — ref. [11].

SRR (Ramabhadran & Pasquale) was motivated by exactly the bottleneck this
paper attacks: "a primary reason given for developing SRR was the
bottleneck of sorting tags in fair queueing" (Section II-B).  It avoids
per-packet tag sorting by stratifying flows into *classes* by weight —
class k holds flows with weight in [2^-k, 2^-(k-1)) — and scheduling only
among the few dozen classes with a finite-universe priority queue of
class deadlines: class k receives one slot every 2^k scheduling
intervals.  Flows inside a class share slots round-robin with
weight-proportional credits.

The cost the paper calls out: round-robin service inside a class is
"inherently less fair than fair queueing", and the number of supported
traffic classes is small compared to the tag-sorting circuit.  Both show
up in the QoS benchmarks.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..hwsim.errors import ConfigurationError
from .base import PacketScheduler
from .packet import Packet


class SRRScheduler(PacketScheduler):
    """Weight-stratified classes with deadline-based interleaving."""

    name = "srr"

    def __init__(self, rate_bps: float, *, max_classes: int = 32) -> None:
        super().__init__(rate_bps)
        if max_classes < 1:
            raise ConfigurationError("need at least one class")
        self.max_classes = max_classes
        self._flow_class: Dict[int, int] = {}
        self._class_flows: Dict[int, Deque[int]] = {}
        self._class_deadlines: List[Tuple[float, int]] = []  # (deadline, k)
        self._class_scheduled: Dict[int, bool] = {}
        self._slot = 0.0
        self._credit: Dict[int, float] = {}

    def _stratum(self, weight: float) -> int:
        """Class index k such that weight is in [2^-k, 2^-(k-1))."""
        if weight > 1.0:
            weight = 1.0
        k = max(1, math.ceil(-math.log2(weight)))
        if k > self.max_classes:
            raise ConfigurationError(
                f"weight {weight} falls below the {self.max_classes}-class "
                "stratification range"
            )
        return k

    def add_flow(self, flow_id: int, weight: float = 1.0, **kwargs) -> None:
        super().add_flow(flow_id, weight, **kwargs)
        stratum = self._stratum(weight)
        self._flow_class[flow_id] = stratum
        self._class_flows.setdefault(stratum, deque())
        self._class_scheduled.setdefault(stratum, False)
        self._credit[flow_id] = 0.0

    def enqueue(self, packet: Packet, now: float) -> None:
        flow = self.flows.get(packet.flow_id)
        was_empty = not flow.backlogged
        flow.queue.append(packet)
        stratum = self._flow_class.setdefault(packet.flow_id, 1)
        ring = self._class_flows.setdefault(stratum, deque())
        if was_empty:
            ring.append(packet.flow_id)
        if not self._class_scheduled.get(stratum, False):
            # Class k gets one slot per 2^k intervals: its next deadline.
            deadline = self._slot + float(2**stratum)
            heapq.heappush(self._class_deadlines, (deadline, stratum))
            self._class_scheduled[stratum] = True

    def _class_backlogged(self, stratum: int) -> bool:
        return any(
            self.flows.get(fid).backlogged
            for fid in self._class_flows.get(stratum, ())
        )

    def select_next(self, now: float) -> Optional[Packet]:
        while self._class_deadlines:
            deadline, stratum = heapq.heappop(self._class_deadlines)
            ring = self._class_flows.get(stratum, deque())
            # Drop drained flows from the ring.
            for _ in range(len(ring)):
                flow_id = ring[0]
                if self.flows.get(flow_id).backlogged:
                    break
                ring.popleft()
            if not ring:
                self._class_scheduled[stratum] = False
                continue
            self._slot = max(self._slot, deadline)
            flow_id = ring.popleft()
            flow = self.flows.get(flow_id)
            packet = flow.queue.popleft()
            if flow.backlogged:
                ring.append(flow_id)
            if self._class_backlogged(stratum):
                heapq.heappush(
                    self._class_deadlines,
                    (self._slot + float(2**stratum), stratum),
                )
            else:
                self._class_scheduled[stratum] = False
            return packet
        return None
