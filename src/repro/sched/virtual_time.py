"""The WFQ virtual-time engine — eq. (1) of the paper.

WFQ tracks the progress of a simulated GPS server with a *virtual time*
V(t) that advances at rate 1/sum(phi_i, i in B(t)) where B(t) is the set
of sessions busy **in the GPS reference system**.  B(t) changes whenever a
packet finishes GPS service, i.e. whenever V reaches the smallest
outstanding finishing tag F_min.  The paper's eq. (1),

    Next(t) = t + (F_min - V(t)) * sum(phi_i, i in B),

is exactly the real time of that next GPS departure; this engine advances
virtual time by iterating it: jump departure-by-departure while
Next(t) <= the requested time, then advance linearly.

The engine is deliberately independent of any packet scheduler: WFQ,
WF2Q and the hardware tag-computation circuit of ref. [8] all consume it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..hwsim.errors import ConfigurationError


@dataclass(frozen=True)
class TaggedArrival:
    """The (start, finish) virtual tags computed for one packet."""

    start_tag: float
    finish_tag: float


class VirtualClock:
    """Piecewise-linear GPS virtual time with eq. (1) iteration."""

    def __init__(self, rate_bps: float = 1.0) -> None:
        if rate_bps <= 0:
            raise ConfigurationError("link rate must be positive")
        self.rate_bps = rate_bps
        self._weights: Dict[int, float] = {}
        self._now = 0.0
        self._virtual = 0.0
        self._last_finish: Dict[int, float] = {}
        # Outstanding GPS work: (finish_tag, session) heap plus per-session
        # outstanding counts; a session is GPS-busy while it has any
        # outstanding finish tag.
        self._gps_heap: List[Tuple[float, int]] = []
        self._outstanding: Dict[int, int] = {}
        self._busy_weight = 0.0

    # ------------------------------------------------------------------
    # session management

    def register(self, session: int, weight: float) -> None:
        """Declare a session's weight phi_i (before its first arrival)."""
        if weight <= 0:
            raise ConfigurationError("session weight must be positive")
        self._weights[session] = weight

    def weight_of(self, session: int) -> float:
        """phi_i for ``session`` (defaults to 1.0 when never registered)."""
        return self._weights.get(session, 1.0)

    # ------------------------------------------------------------------
    # observers

    @property
    def now(self) -> float:
        """Real time of the last update."""
        return self._now

    @property
    def virtual_time(self) -> float:
        """V(now)."""
        return self._virtual

    @property
    def busy_weight(self) -> float:
        """sum(phi_i) over GPS-busy sessions."""
        return self._busy_weight

    @property
    def minimum_finish_tag(self) -> Optional[float]:
        """F_min: the smallest outstanding GPS finishing tag."""
        self._prune_heap()
        return self._gps_heap[0][0] if self._gps_heap else None

    def next_departure_time(self) -> Optional[float]:
        """Eq. (1): real time of the next simulated GPS departure."""
        minimum = self.minimum_finish_tag
        if minimum is None:
            return None
        return (
            self._now
            + (minimum - self._virtual) * self._busy_weight / self.rate_bps
        )

    # ------------------------------------------------------------------
    # time advance

    def _prune_heap(self) -> None:
        while self._gps_heap and self._outstanding.get(self._gps_heap[0][1], 0) == 0:
            heapq.heappop(self._gps_heap)

    def advance_to(self, t: float) -> None:
        """Advance real time to ``t``, processing GPS departures en route."""
        if t < self._now - 1e-12:
            raise ConfigurationError(
                f"time moved backwards: {t} < {self._now}"
            )
        while True:
            self._prune_heap()
            if not self._gps_heap:
                # GPS idle: V holds its value while no session is busy.
                self._now = max(self._now, t)
                return
            finish_tag, session = self._gps_heap[0]
            departure = (
                self._now
                + (finish_tag - self._virtual)
                * self._busy_weight
                / self.rate_bps
            )
            if departure > t + 1e-15:
                break
            # Jump to the departure instant: V reaches the finish tag.
            self._now = departure
            self._virtual = finish_tag
            heapq.heappop(self._gps_heap)
            self._outstanding[session] -= 1
            if self._outstanding[session] == 0:
                self._busy_weight -= self._weights.get(session, 1.0)
                if self._busy_weight < 1e-12:
                    self._busy_weight = 0.0
        # Linear segment to t within the current busy set.
        if self._busy_weight > 0:
            self._virtual += (t - self._now) * self.rate_bps / self._busy_weight
        self._now = t

    # ------------------------------------------------------------------
    # arrivals

    def on_arrival(
        self, session: int, size_bits: float, arrival_time: float
    ) -> TaggedArrival:
        """Compute the (start, finish) tags for one arriving packet.

        Advances virtual time to the arrival instant, then applies the
        classic WFQ tag rules::

            S = max(V(t), F_previous(session))
            F = S + size_bits / phi_session

        Virtual time advances at ``rate_bps / busy_weight``, so tags are
        in bit-per-unit-weight units and eq. (1) converts back to seconds
        through the link rate.
        """
        if size_bits <= 0:
            raise ConfigurationError("packet size must be positive")
        self.advance_to(arrival_time)
        weight = self._weights.get(session, 1.0)
        previous = self._last_finish.get(session, 0.0)
        start = max(self._virtual, previous)
        finish = start + size_bits / weight
        self._last_finish[session] = finish
        # Track GPS busyness.
        if self._outstanding.get(session, 0) == 0:
            self._busy_weight += weight
        self._outstanding[session] = self._outstanding.get(session, 0) + 1
        heapq.heappush(self._gps_heap, (finish, session))
        return TaggedArrival(start_tag=start, finish_tag=finish)

    def reset(self) -> None:
        """Return to the initial idle state (weights are kept)."""
        self._now = 0.0
        self._virtual = 0.0
        self._gps_heap.clear()
        self._outstanding.clear()
        self._busy_weight = 0.0
        self._last_finish.clear()

    # ------------------------------------------------------------------
    # checkpoint / restore (service-plane snapshots)

    def to_state(self) -> dict:
        """Exact serializable snapshot of the GPS reference state.

        The heap is serialized in its list (heap-array) order and the
        floats ride through JSON repr-exactly, so a restored clock issues
        bit-identical tags for the same subsequent arrivals — the
        property the service plane's restart-fidelity check rests on.
        """
        return {
            "kind": "virtual_clock",
            "rate_bps": self.rate_bps,
            "now": self._now,
            "virtual": self._virtual,
            "busy_weight": self._busy_weight,
            "weights": sorted(self._weights.items()),
            "last_finish": sorted(self._last_finish.items()),
            "outstanding": sorted(self._outstanding.items()),
            "gps_heap": [[tag, session] for tag, session in self._gps_heap],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this instance."""
        if state.get("kind") != "virtual_clock":
            raise ConfigurationError(
                f"not a virtual clock snapshot: kind={state.get('kind')!r}"
            )
        if state["rate_bps"] != self.rate_bps:
            raise ConfigurationError(
                f"snapshot link rate {state['rate_bps']} != {self.rate_bps}"
            )
        self._now = state["now"]
        self._virtual = state["virtual"]
        self._busy_weight = state["busy_weight"]
        self._weights = {
            int(session): weight for session, weight in state["weights"]
        }
        self._last_finish = {
            int(session): finish
            for session, finish in state["last_finish"]
        }
        self._outstanding = {
            int(session): int(count)
            for session, count in state["outstanding"]
        }
        # A to_state list is already a valid heap array (serialized in
        # place); restoring it verbatim preserves tie order exactly.
        self._gps_heap = [
            (tag, int(session)) for tag, session in state["gps_heap"]
        ]
