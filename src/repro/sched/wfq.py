"""WFQ (packetized GPS) — ref. [1], the policy the paper's circuit serves.

Each arriving packet receives a finishing tag from the shared
:class:`~repro.sched.virtual_time.VirtualClock`; the scheduler always
transmits the backlogged packet with the smallest tag.  The structure that
holds the sorted tags is pluggable through :class:`TagStore`: the software
default is a binary heap, and :mod:`repro.net.scheduler_system` plugs in
the paper's hardware sort/retrieve circuit instead — the exact swap the
paper's Fig. 1 architecture is built around.

WFQ "approximates GPS within one packet transmission time regardless of
the arrival patterns" (Section I-B); the Parekh–Gallager property
``depart_WFQ <= depart_GPS + L_max/rate`` is verified in the tests.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Protocol, Tuple

from .base import PacketScheduler
from .packet import Packet
from .virtual_time import VirtualClock


class TagStore(Protocol):
    """The sorted-tag structure of Fig. 1 (sort/retrieve block)."""

    def push(self, finish_tag: float, flow_id: int) -> None:
        """Store a tag with its packet-buffer pointer (flow id here)."""
        ...

    def pop_min(self) -> Tuple[float, int]:
        """Remove and return the smallest ``(finish_tag, flow_id)``."""
        ...

    def __len__(self) -> int: ...


class HeapTagStore:
    """Software binary-heap tag store (the conventional implementation)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int]] = []
        self._sequence = itertools.count()

    def push(self, finish_tag: float, flow_id: int) -> None:
        heapq.heappush(self._heap, (finish_tag, next(self._sequence), flow_id))

    def pop_min(self) -> Tuple[float, int]:
        finish_tag, _, flow_id = heapq.heappop(self._heap)
        return finish_tag, flow_id

    def __len__(self) -> int:
        return len(self._heap)


class WFQScheduler(PacketScheduler):
    """Weighted fair queueing with a pluggable tag sort/retrieve store."""

    name = "wfq"

    def __init__(
        self,
        rate_bps: float,
        *,
        tag_store: Optional[TagStore] = None,
    ) -> None:
        super().__init__(rate_bps)
        self.clock = VirtualClock(rate_bps)
        self.tags: TagStore = tag_store if tag_store is not None else HeapTagStore()

    def add_flow(self, flow_id: int, weight: float = 1.0, **kwargs) -> None:
        super().add_flow(flow_id, weight, **kwargs)
        self.clock.register(flow_id, weight)

    def enqueue(self, packet: Packet, now: float) -> None:
        flow = self.flows.get(packet.flow_id)
        tags = self.clock.on_arrival(
            packet.flow_id, packet.size_bits, now
        )
        packet.start_tag = tags.start_tag
        packet.finish_tag = tags.finish_tag
        flow.queue.append(packet)
        self.tags.push(tags.finish_tag, packet.flow_id)

    def select_next(self, now: float) -> Optional[Packet]:
        if len(self.tags) == 0:
            return None
        self.clock.advance_to(now)
        _, flow_id = self.tags.pop_min()
        flow = self.flows.get(flow_id)
        # Tags within one flow are non-decreasing, so the head packet is
        # the one this tag belongs to (the paper's packet-buffer pointer).
        return flow.queue.popleft()
