"""Class-based queueing — ref. [4].

CBQ "adopts a hierarchical approach to DRR" (Section I-B): traffic is
grouped into classes, bandwidth is divided between classes by weighted
deficit rounds, and flows inside a class share its allocation by a second
deficit round.  Idle-class capacity is naturally redistributed (borrowed)
because the rounds are work-conserving over backlogged classes only.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hwsim.errors import ConfigurationError
from .base import PacketScheduler
from .drr import DRRScheduler
from .packet import Packet


class CBQScheduler(PacketScheduler):
    """Two-level hierarchical deficit round robin."""

    name = "cbq"

    def __init__(self, rate_bps: float, *, quantum_bytes: float = 1500.0) -> None:
        super().__init__(rate_bps)
        self.quantum_bytes = quantum_bytes
        self._classes: Dict[str, DRRScheduler] = {}
        self._class_weight: Dict[str, float] = {}
        self._flow_class: Dict[int, str] = {}
        self._class_deficit: Dict[str, float] = {}
        self._class_order: list = []
        self._cursor = 0

    def add_class(self, class_name: str, weight: float = 1.0) -> None:
        """Declare a traffic class with its bandwidth share."""
        if class_name in self._classes:
            raise ConfigurationError(f"class {class_name!r} already exists")
        if weight <= 0:
            raise ConfigurationError("class weight must be positive")
        self._classes[class_name] = DRRScheduler(
            self.rate_bps, quantum_bytes=self.quantum_bytes
        )
        self._class_weight[class_name] = weight
        self._class_deficit[class_name] = 0.0
        self._class_order.append(class_name)

    def add_flow_to_class(
        self, flow_id: int, class_name: str, weight: float = 1.0
    ) -> None:
        """Attach a flow to a class."""
        if class_name not in self._classes:
            raise ConfigurationError(f"unknown class {class_name!r}")
        if flow_id in self._flow_class:
            raise ConfigurationError(f"flow {flow_id} already classed")
        self._flow_class[flow_id] = class_name
        self._classes[class_name].add_flow(flow_id, weight)

    @property
    def backlog(self) -> int:
        return sum(inner.backlog for inner in self._classes.values())

    def enqueue(self, packet: Packet, now: float) -> None:
        class_name = self._flow_class.get(packet.flow_id)
        if class_name is None:
            raise ConfigurationError(
                f"flow {packet.flow_id} was never assigned to a class"
            )
        self._classes[class_name].enqueue(packet, now)

    def select_next(self, now: float) -> Optional[Packet]:
        if not self._class_order:
            return None
        quantum_bits = self.quantum_bytes * 8
        # Weighted deficit round over classes; inner DRR picks the packet.
        for _ in range(2 * len(self._class_order) + 1):
            class_name = self._class_order[self._cursor]
            inner = self._classes[class_name]
            if inner.backlog == 0:
                self._class_deficit[class_name] = 0.0
                self._cursor = (self._cursor + 1) % len(self._class_order)
                continue
            if self._class_deficit[class_name] <= 0:
                self._class_deficit[class_name] += (
                    quantum_bits * self._class_weight[class_name]
                )
            packet = inner.select_next(now)
            if packet is not None:
                self._class_deficit[class_name] -= packet.size_bits
                if self._class_deficit[class_name] <= 0:
                    self._cursor = (self._cursor + 1) % len(self._class_order)
                return packet
            self._cursor = (self._cursor + 1) % len(self._class_order)
        return None
