"""Deficit round robin — ref. [3].

DRR fixes WRR's variable-packet-size problem without knowing the mean
size: each backlogged flow holds a *deficit counter* credited with a
weight-proportional quantum per round; a flow transmits head packets while
its deficit covers them.  Bandwidth shares converge to the weights, but —
the paper's central criticism of the whole round-robin family — a packet
can wait for the full round of every other backlogged flow, so the delay
bound grows with the number of flows rather than being rate-determined.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from ..hwsim.errors import ConfigurationError
from .base import PacketScheduler
from .packet import Packet


class DRRScheduler(PacketScheduler):
    """Classic deficit round robin over an active-flow list."""

    name = "drr"

    def __init__(self, rate_bps: float, *, quantum_bytes: float = 1500.0) -> None:
        super().__init__(rate_bps)
        if quantum_bytes <= 0:
            raise ConfigurationError("quantum must be positive")
        self.quantum_bits = quantum_bytes * 8
        self._active: Deque[int] = deque()
        self._deficit: Dict[int, float] = {}
        #: flow currently holding the round (mid-quantum), if any
        self._in_round: Optional[int] = None

    def enqueue(self, packet: Packet, now: float) -> None:
        flow = self.flows.get(packet.flow_id)
        was_empty = not flow.backlogged
        flow.queue.append(packet)
        if was_empty and packet.flow_id != self._in_round:
            self._active.append(packet.flow_id)
            self._deficit.setdefault(packet.flow_id, 0.0)

    def _flow_quantum(self, flow_id: int) -> float:
        return self.quantum_bits * self.flows.get(flow_id).weight

    def select_next(self, now: float) -> Optional[Packet]:
        # Continue the current flow's quantum if it still covers its head.
        if self._in_round is not None:
            flow = self.flows.get(self._in_round)
            head = flow.head
            if head is not None and self._deficit[self._in_round] >= head.size_bits:
                self._deficit[self._in_round] -= head.size_bits
                return flow.queue.popleft()
            # Quantum exhausted or queue drained: close the round turn.
            if head is None:
                self._deficit[self._in_round] = 0.0
            else:
                self._active.append(self._in_round)
            self._in_round = None
        # Open the next flow's turn; small quanta may need several rounds
        # of credit before the head packet fits, so keep cycling while any
        # backlogged flow remains (deficits grow every pass, so this
        # terminates).
        while True:
            any_backlogged = False
            for _ in range(len(self._active)):
                flow_id = self._active.popleft()
                flow = self.flows.get(flow_id)
                if not flow.backlogged:
                    self._deficit[flow_id] = 0.0
                    continue
                any_backlogged = True
                self._deficit[flow_id] += self._flow_quantum(flow_id)
                head = flow.head
                if self._deficit[flow_id] >= head.size_bits:
                    self._deficit[flow_id] -= head.size_bits
                    self._in_round = flow_id
                    return flow.queue.popleft()
                # Deficit still too small: keep the credit, stay in line.
                self._active.append(flow_id)
            if not any_backlogged:
                return None
