"""Fluid GPS reference simulator.

Generalized processor sharing serves every backlogged session
simultaneously, session i at rate ``rate * phi_i / sum(phi_busy)``.  It is
the theoretical yardstick of the paper (Section I-B): practical policies
are judged by how closely they track it.  This simulator computes *exact*
per-packet GPS departure times by iterating the same Next(t) relation as
eq. (1) — a packet departs the fluid system at the real instant virtual
time reaches its finishing tag.

The classic Parekh–Gallager bound ties WFQ to this reference::

    depart_WFQ(p) <= depart_GPS(p) + L_max / rate

and is verified as a property test over random traffic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..hwsim.errors import ConfigurationError
from .packet import Packet


@dataclass(frozen=True)
class GpsDeparture:
    """GPS results for one packet."""

    finish_tag: float
    departure_time: float


class GPSFluidSimulator:
    """Event-exact fluid GPS over one link.

    After :meth:`run`, :attr:`curves` holds each flow's fluid service
    curve as breakpoints ``(time, cumulative_bits)`` (piecewise linear
    between them), and :meth:`work_at` interpolates it — the reference
    for work-based fairness metrics such as
    :func:`repro.net.metrics.worst_work_lead`.
    """

    def __init__(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ConfigurationError("link rate must be positive")
        self.rate_bps = rate_bps
        self._weights: Dict[int, float] = {}
        #: per-flow fluid service breakpoints, filled by run()
        self.curves: Dict[int, List[Tuple[float, float]]] = {}

    def set_weight(self, flow_id: int, weight: float) -> None:
        """Declare phi for a flow."""
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        self._weights[flow_id] = weight

    def run(self, arrivals: Iterable[Packet]) -> Dict[int, GpsDeparture]:
        """Exact GPS departures for a time-sorted arrival trace.

        Returns a map from ``packet_id`` to its finishing tag and fluid
        departure time.  Packets' ``start_tag``/``finish_tag`` fields are
        left untouched (the WFQ scheduler owns those).
        """
        trace = sorted(arrivals, key=lambda p: (p.arrival_time, p.packet_id))
        results: Dict[int, GpsDeparture] = {}

        now = 0.0
        virtual = 0.0
        busy_weight = 0.0
        outstanding: Dict[int, int] = {}
        last_finish: Dict[int, float] = {}
        heap: List[Tuple[float, int, int]] = []  # (finish, packet_id, flow)
        index = 0
        work: Dict[int, float] = {}
        self.curves = {}

        def accrue(to_time: float) -> None:
            """Credit fluid service over [now, to_time] to busy flows."""
            elapsed = to_time - now
            if elapsed <= 0 or busy_weight <= 0:
                return
            for flow, count in outstanding.items():
                if count <= 0:
                    continue
                share = self._weights.get(flow, 1.0) / busy_weight
                work[flow] = work.get(flow, 0.0) + (
                    elapsed * self.rate_bps * share
                )
                self.curves.setdefault(flow, [(0.0, 0.0)]).append(
                    (to_time, work[flow])
                )

        def advance(to_time: float) -> None:
            """Move real time forward, emitting fluid departures."""
            nonlocal now, virtual, busy_weight
            while heap:
                finish, packet_id, flow = heap[0]
                departure = now + (finish - virtual) * busy_weight / self.rate_bps
                if departure > to_time + 1e-15:
                    break
                heapq.heappop(heap)
                accrue(departure)
                now = departure
                virtual = finish
                results[packet_id] = GpsDeparture(
                    finish_tag=finish, departure_time=departure
                )
                outstanding[flow] -= 1
                if outstanding[flow] == 0:
                    busy_weight -= self._weights.get(flow, 1.0)
                    if busy_weight < 1e-12:
                        busy_weight = 0.0
            if busy_weight > 0:
                virtual += (to_time - now) * self.rate_bps / busy_weight
                accrue(to_time)
            now = max(now, to_time)

        while index < len(trace):
            packet = trace[index]
            advance(packet.arrival_time)
            index += 1
            weight = self._weights.get(packet.flow_id, 1.0)
            start = max(virtual, last_finish.get(packet.flow_id, 0.0))
            finish = start + packet.size_bits / weight
            last_finish[packet.flow_id] = finish
            if outstanding.get(packet.flow_id, 0) == 0:
                busy_weight += weight
                # Pin the curve flat across the preceding idle period.
                self.curves.setdefault(packet.flow_id, [(0.0, 0.0)]).append(
                    (packet.arrival_time, work.get(packet.flow_id, 0.0))
                )
            outstanding[packet.flow_id] = outstanding.get(packet.flow_id, 0) + 1
            heapq.heappush(heap, (finish, packet.packet_id, packet.flow_id))

        advance(float("inf"))
        return results

    def work_at(self, flow_id: int, time_s: float) -> float:
        """Fluid bits served to ``flow_id`` by ``time_s`` (after run()).

        Linear interpolation between the recorded breakpoints; constant
        before the first and after the last.
        """
        curve = self.curves.get(flow_id)
        if not curve:
            return 0.0
        if time_s <= curve[0][0]:
            return curve[0][1]
        for (t0, w0), (t1, w1) in zip(curve, curve[1:]):
            if t0 <= time_s <= t1:
                if t1 == t0:
                    return w1
                return w0 + (w1 - w0) * (time_s - t0) / (t1 - t0)
        return curve[-1][1]

    def finish_tags(self, arrivals: Iterable[Packet]) -> Dict[int, float]:
        """Just the finishing tags (convenience for tag-stream studies)."""
        return {
            packet_id: departure.finish_tag
            for packet_id, departure in self.run(arrivals).items()
        }
