"""Fluid GPS reference simulator.

Generalized processor sharing serves every backlogged session
simultaneously, session i at rate ``rate * phi_i / sum(phi_busy)``.  It is
the theoretical yardstick of the paper (Section I-B): practical policies
are judged by how closely they track it.  This simulator computes *exact*
per-packet GPS departure times by iterating the same Next(t) relation as
eq. (1) — a packet departs the fluid system at the real instant virtual
time reaches its finishing tag.

The classic Parekh–Gallager bound ties WFQ to this reference::

    depart_WFQ(p) <= depart_GPS(p) + L_max / rate

and is verified as a property test over random traffic.

The accrual engine itself lives in :class:`GpsAccrualCore`, an
*incremental* form of the same relation: arrivals are fed one at a time
and fluid departures are emitted as soon as they are determined.  The
batch :class:`GPSFluidSimulator` and the online fairness auditor
(:mod:`repro.obs.slo`) share this single core, so a streaming audit and
an offline :mod:`repro.net.metrics` computation over the same trace
agree bit-for-bit — the float operations happen in the same order in
both drivers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..hwsim.errors import ConfigurationError
from .packet import Packet


@dataclass(frozen=True)
class GpsDeparture:
    """GPS results for one packet."""

    finish_tag: float
    departure_time: float


def interpolate_curve(
    curve: Optional[List[Tuple[float, float]]], time_s: float
) -> float:
    """Linear interpolation over ``(time, cumulative_bits)`` breakpoints.

    Constant before the first breakpoint and after the last; ``0.0`` for
    an empty or missing curve.
    """
    if not curve:
        return 0.0
    if time_s <= curve[0][0]:
        return curve[0][1]
    for (t0, w0), (t1, w1) in zip(curve, curve[1:]):
        if t0 <= time_s <= t1:
            if t1 == t0:
                return w1
            return w0 + (w1 - w0) * (time_s - t0) / (t1 - t0)
    return curve[-1][1]


class GpsAccrualCore:
    """Incremental fluid-GPS accrual over one link.

    Feed arrivals in nondecreasing time order via :meth:`arrive`; each
    call advances real/virtual time to the arrival instant and returns
    the fluid departures that became determined along the way.  Call
    :meth:`finish` once the trace ends to drain the remaining backlog.

    The core only ever advances at *arrival* instants (and at drain):
    that is exactly the schedule of float operations the batch simulator
    performs, which is what makes online results reconcile exactly with
    offline recomputation.  Callers must not advance it at observed
    *actual* departure times.
    """

    def __init__(
        self,
        rate_bps: float,
        weights: Optional[Mapping[int, float]] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigurationError("link rate must be positive")
        self.rate_bps = rate_bps
        self._weights: Dict[int, float] = dict(weights) if weights else {}
        self.now = 0.0
        self.virtual = 0.0
        self.busy_weight = 0.0
        self._outstanding: Dict[int, int] = {}
        self._last_finish: Dict[int, float] = {}
        self._heap: List[Tuple[float, int, int]] = []  # (finish, pkt, flow)
        self._work: Dict[int, float] = {}
        self._last_arrival = float("-inf")
        self._closed = False
        #: per-flow fluid service breakpoints ``(time, cumulative_bits)``
        self.curves: Dict[int, List[Tuple[float, float]]] = {}
        #: every departure emitted so far, by packet id
        self.results: Dict[int, GpsDeparture] = {}

    @property
    def backlog(self) -> int:
        """Packets still in the fluid system."""
        return len(self._heap)

    def set_weight(self, flow_id: int, weight: float) -> None:
        """Declare phi for a flow (before its first arrival)."""
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        self._weights[flow_id] = weight

    def _accrue(self, to_time: float) -> None:
        """Credit fluid service over [now, to_time] to busy flows."""
        elapsed = to_time - self.now
        if elapsed <= 0 or self.busy_weight <= 0:
            return
        for flow, count in self._outstanding.items():
            if count <= 0:
                continue
            share = self._weights.get(flow, 1.0) / self.busy_weight
            self._work[flow] = self._work.get(flow, 0.0) + (
                elapsed * self.rate_bps * share
            )
            self.curves.setdefault(flow, [(0.0, 0.0)]).append(
                (to_time, self._work[flow])
            )

    def _advance(
        self, to_time: float, emitted: List[Tuple[int, GpsDeparture]]
    ) -> None:
        """Move real time forward, emitting fluid departures."""
        while self._heap:
            finish, packet_id, flow = self._heap[0]
            departure = self.now + (
                (finish - self.virtual) * self.busy_weight / self.rate_bps
            )
            if departure > to_time + 1e-15:
                break
            heapq.heappop(self._heap)
            self._accrue(departure)
            self.now = departure
            self.virtual = finish
            record = GpsDeparture(finish_tag=finish, departure_time=departure)
            self.results[packet_id] = record
            emitted.append((packet_id, record))
            self._outstanding[flow] -= 1
            if self._outstanding[flow] == 0:
                self.busy_weight -= self._weights.get(flow, 1.0)
                if self.busy_weight < 1e-12:
                    self.busy_weight = 0.0
        if self.busy_weight > 0:
            self.virtual += (
                (to_time - self.now) * self.rate_bps / self.busy_weight
            )
            self._accrue(to_time)
        self.now = max(self.now, to_time)

    def arrive(
        self,
        flow_id: int,
        packet_id: int,
        size_bits: float,
        arrival_time: float,
    ) -> List[Tuple[int, GpsDeparture]]:
        """Admit one packet; return departures determined by its arrival."""
        if self._closed:
            raise ConfigurationError("accrual core already finished")
        if arrival_time < self._last_arrival:
            raise ConfigurationError(
                "arrivals must be fed in nondecreasing time order"
            )
        self._last_arrival = arrival_time
        emitted: List[Tuple[int, GpsDeparture]] = []
        self._advance(arrival_time, emitted)
        weight = self._weights.get(flow_id, 1.0)
        start = max(self.virtual, self._last_finish.get(flow_id, 0.0))
        finish = start + size_bits / weight
        self._last_finish[flow_id] = finish
        if self._outstanding.get(flow_id, 0) == 0:
            self.busy_weight += weight
            # Pin the curve flat across the preceding idle period.
            self.curves.setdefault(flow_id, [(0.0, 0.0)]).append(
                (arrival_time, self._work.get(flow_id, 0.0))
            )
        self._outstanding[flow_id] = self._outstanding.get(flow_id, 0) + 1
        heapq.heappush(self._heap, (finish, packet_id, flow_id))
        return emitted

    def finish(self) -> List[Tuple[int, GpsDeparture]]:
        """Drain the backlog; returns the remaining fluid departures."""
        if self._closed:
            return []
        self._closed = True
        emitted: List[Tuple[int, GpsDeparture]] = []
        self._advance(float("inf"), emitted)
        return emitted

    def work_at(self, flow_id: int, time_s: float) -> float:
        """Fluid bits served to ``flow_id`` by ``time_s``."""
        return interpolate_curve(self.curves.get(flow_id), time_s)


class GPSFluidSimulator:
    """Event-exact fluid GPS over one link.

    After :meth:`run`, :attr:`curves` holds each flow's fluid service
    curve as breakpoints ``(time, cumulative_bits)`` (piecewise linear
    between them), and :meth:`work_at` interpolates it — the reference
    for work-based fairness metrics such as
    :func:`repro.net.metrics.worst_work_lead`.

    This is the batch driver over :class:`GpsAccrualCore`: it sorts the
    trace by ``(arrival_time, packet_id)`` and replays it through the
    incremental core.
    """

    def __init__(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ConfigurationError("link rate must be positive")
        self.rate_bps = rate_bps
        self._weights: Dict[int, float] = {}
        #: per-flow fluid service breakpoints, filled by run()
        self.curves: Dict[int, List[Tuple[float, float]]] = {}

    def set_weight(self, flow_id: int, weight: float) -> None:
        """Declare phi for a flow."""
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        self._weights[flow_id] = weight

    def run(self, arrivals: Iterable[Packet]) -> Dict[int, GpsDeparture]:
        """Exact GPS departures for a time-sorted arrival trace.

        Returns a map from ``packet_id`` to its finishing tag and fluid
        departure time.  Packets' ``start_tag``/``finish_tag`` fields are
        left untouched (the WFQ scheduler owns those).
        """
        trace = sorted(arrivals, key=lambda p: (p.arrival_time, p.packet_id))
        core = GpsAccrualCore(self.rate_bps, weights=self._weights)
        for packet in trace:
            core.arrive(
                packet.flow_id,
                packet.packet_id,
                packet.size_bits,
                packet.arrival_time,
            )
        core.finish()
        self.curves = core.curves
        return dict(core.results)

    def work_at(self, flow_id: int, time_s: float) -> float:
        """Fluid bits served to ``flow_id`` by ``time_s`` (after run()).

        Linear interpolation between the recorded breakpoints; constant
        before the first and after the last.
        """
        return interpolate_curve(self.curves.get(flow_id), time_s)

    def finish_tags(self, arrivals: Iterable[Packet]) -> Dict[int, float]:
        """Just the finishing tags (convenience for tag-stream studies)."""
        return {
            packet_id: departure.finish_tag
            for packet_id, departure in self.run(arrivals).items()
        }
