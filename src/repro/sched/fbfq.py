"""Frame-based fair queueing — ref. [7].

FBFQ (Stiliadis & Varma) is a rate-proportional server whose *system
potential* grows with real service and is periodically recalibrated at
frame boundaries, avoiding GPS simulation while staying "almost as fair"
as WFQ (Section II-A).  This implementation follows that structure:

* each flow keeps a potential that advances by ``L/phi`` per packet,
* the system potential advances by ``L/PHI_total`` per served packet,
* every frame (a fixed amount of normalized service) the system potential
  is recalibrated to at least the minimum backlogged flow potential,

with smallest-finishing-potential service — again a finishing-tag sorting
workload for the paper's circuit.  The recalibration period is the
``frame_bits`` parameter.
"""

from __future__ import annotations

from typing import Optional

from ..hwsim.errors import ConfigurationError
from .base import PacketScheduler
from .packet import Packet


class FBFQScheduler(PacketScheduler):
    """Framed rate-proportional server."""

    name = "fbfq"

    def __init__(self, rate_bps: float, *, frame_bits: float = 12000.0) -> None:
        super().__init__(rate_bps)
        if frame_bits <= 0:
            raise ConfigurationError("frame size must be positive")
        self.frame_bits = frame_bits
        self._potential = 0.0
        self._served_in_frame = 0.0

    def enqueue(self, packet: Packet, now: float) -> None:
        flow = self.flows.get(packet.flow_id)
        start = max(flow.last_finish_tag, self._potential)
        finish = start + packet.size_bits / flow.weight
        packet.start_tag = start
        packet.finish_tag = finish
        flow.last_finish_tag = finish
        flow.queue.append(packet)

    def select_next(self, now: float) -> Optional[Packet]:
        best_flow = None
        best_finish = None
        for flow in self.flows.backlogged_flows():
            head = flow.head
            if best_finish is None or head.finish_tag < best_finish:
                best_finish = head.finish_tag
                best_flow = flow
        if best_flow is None:
            return None
        packet = best_flow.queue.popleft()
        # Rate-proportional potential advance.
        total_weight = max(self.flows.total_weight, 1e-12)
        self._potential += packet.size_bits / total_weight
        self._served_in_frame += packet.size_bits
        if self._served_in_frame >= self.frame_bits:
            self._served_in_frame = 0.0
            self._recalibrate()
        return packet

    def _recalibrate(self) -> None:
        """Frame boundary: lift the potential to the minimum backlog."""
        starts = [
            flow.head.start_tag for flow in self.flows.backlogged_flows()
        ]
        if starts:
            self._potential = max(self._potential, min(starts))
