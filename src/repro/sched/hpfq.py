"""H-PFQ — hierarchical packet fair queueing, ref. [6].

Bennett & Zhang's hierarchical scheduler: a tree of fair-queueing nodes
in which every interior node runs a WF²Q+-style policy among its
children, and a packet is transmitted by selecting a child at each level
from the root down to a leaf flow.  This gives *nested* guarantees — an
organization's share is protected first, then divided fairly among its
own flows — which is the link-sharing goal CBQ approximates and fair
queueing makes exact.

Each node keeps its own system virtual time and per-child (start,
finish) tags covering the child's current head packet:

* when a child becomes backlogged (or its head changes after service),
  it receives ``S = max(V_node, F_prev_child)`` and
  ``F = S + L_head / phi_child``;
* selection at a node is smallest-finish-tag among *eligible* children
  (``S <= V_node``), recursively down to a leaf;
* after a service of ``L`` bits, each node on the path updates
  ``V = max(V + L / PHI_children, min S over backlogged children)`` —
  the WF²Q+ virtual-time rule applied per node.

The paper cites this family alongside WF²Q+ as algorithms its tag
sort/retrieve circuit can serve: every node's selection is again a
minimum-finishing-tag lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hwsim.errors import ConfigurationError
from .base import PacketScheduler
from .packet import Packet

_SLACK = 1e-9


@dataclass
class _Node:
    """One vertex of the scheduling hierarchy."""

    name: str
    weight: float
    parent: Optional["_Node"] = None
    children: List["_Node"] = field(default_factory=list)
    #: leaf only: the attached flow id
    flow_id: Optional[int] = None
    # per-node WF2Q+ state over the children
    virtual: float = 0.0
    # per-child tag state, kept on the child itself
    start_tag: float = 0.0
    finish_tag: float = 0.0
    last_finish: float = 0.0
    backlogged: bool = False

    @property
    def is_leaf(self) -> bool:
        return self.flow_id is not None

    @property
    def child_weight(self) -> float:
        return sum(child.weight for child in self.children)


class HPFQScheduler(PacketScheduler):
    """Hierarchical WF²Q+-per-node fair queueing."""

    name = "hpfq"

    def __init__(self, rate_bps: float) -> None:
        super().__init__(rate_bps)
        self._root = _Node(name="root", weight=1.0)
        self._nodes: Dict[str, _Node] = {"root": self._root}
        self._leaves: Dict[int, _Node] = {}

    # ------------------------------------------------------------------
    # hierarchy construction

    def add_class(
        self, name: str, *, parent: str = "root", weight: float = 1.0
    ) -> None:
        """Declare an interior sharing class under ``parent``."""
        if name in self._nodes:
            raise ConfigurationError(f"node {name!r} already exists")
        if parent not in self._nodes:
            raise ConfigurationError(f"unknown parent {parent!r}")
        if weight <= 0:
            raise ConfigurationError("class weight must be positive")
        parent_node = self._nodes[parent]
        if parent_node.is_leaf:
            raise ConfigurationError(f"{parent!r} is a leaf, not a class")
        node = _Node(name=name, weight=weight, parent=parent_node)
        parent_node.children.append(node)
        self._nodes[name] = node

    def attach_flow(
        self, flow_id: int, *, parent: str = "root", weight: float = 1.0
    ) -> None:
        """Attach a flow as a leaf under ``parent``."""
        if flow_id in self._leaves:
            raise ConfigurationError(f"flow {flow_id} already attached")
        if parent not in self._nodes:
            raise ConfigurationError(f"unknown parent {parent!r}")
        if weight <= 0:
            raise ConfigurationError("flow weight must be positive")
        self.flows.add(flow_id, weight)
        parent_node = self._nodes[parent]
        leaf = _Node(
            name=f"flow:{flow_id}",
            weight=weight,
            parent=parent_node,
            flow_id=flow_id,
        )
        parent_node.children.append(leaf)
        self._nodes[leaf.name] = leaf
        self._leaves[flow_id] = leaf

    def add_flow(self, flow_id: int, weight: float = 1.0, **kwargs) -> None:
        """PacketScheduler compatibility: attach directly under the root."""
        self.attach_flow(flow_id, parent="root", weight=weight)

    # ------------------------------------------------------------------
    # tag maintenance

    def _head_size_bits(self, node: _Node) -> Optional[int]:
        """Size of the head packet currently below ``node``."""
        if node.is_leaf:
            head = self.flows.get(node.flow_id).head
            return head.size_bits if head is not None else None
        # interior: the head is the packet its own policy would pick
        chosen = self._select_child(node)
        if chosen is None:
            return None
        return self._head_size_bits(chosen)

    def _assign_tags(self, node: _Node, size_bits: int) -> None:
        """Give ``node`` fresh (S, F) tags at its parent for a new head."""
        parent = node.parent
        node.start_tag = max(parent.virtual, node.last_finish)
        node.finish_tag = node.start_tag + size_bits / node.weight

    def _on_new_head(self, node: _Node) -> None:
        """Propagate a (possibly) new head packet up from ``node``."""
        while node.parent is not None:
            size = self._head_size_bits(node)
            parent = node.parent
            if size is None:
                node.backlogged = False
            else:
                was_backlogged = node.backlogged
                node.backlogged = True
                if not was_backlogged:
                    self._assign_tags(node, size)
            node = parent

    # ------------------------------------------------------------------
    # enqueue / select

    def enqueue(self, packet: Packet, now: float) -> None:
        leaf = self._leaves.get(packet.flow_id)
        if leaf is None:
            raise ConfigurationError(
                f"flow {packet.flow_id} was never attached"
            )
        flow = self.flows.get(packet.flow_id)
        flow.queue.append(packet)
        # Leaf-level tags double as the packet's own fair-queueing tags.
        if len(flow.queue) == 1:
            self._on_new_head(leaf)
        if packet.start_tag is None:
            packet.start_tag = leaf.start_tag
            packet.finish_tag = leaf.finish_tag

    def _select_child(self, node: _Node) -> Optional[_Node]:
        """WF²Q+ choice among ``node``'s children (eligible min-F)."""
        best = None
        for child in node.children:
            if not child.backlogged:
                continue
            if child.start_tag > node.virtual + _SLACK:
                continue
            if best is None or child.finish_tag < best.finish_tag:
                best = child
        if best is None:
            # WF2Q+ work conservation: jump the node clock to min S.
            starts = [
                child.start_tag
                for child in node.children
                if child.backlogged
            ]
            if not starts:
                return None
            node.virtual = max(node.virtual, min(starts))
            return self._select_child(node)
        return best

    def select_next(self, now: float) -> Optional[Packet]:
        path: List[_Node] = []
        node = self._root
        while not node.is_leaf:
            chosen = self._select_child(node)
            if chosen is None:
                return None
            path.append(node)
            node = chosen
        leaf = node
        flow = self.flows.get(leaf.flow_id)
        packet = flow.queue.popleft()
        # WF2Q+ virtual-time advance at every node on the path.
        size = packet.size_bits
        for parent in path:
            total = max(parent.child_weight, 1e-12)
            advanced = parent.virtual + size / total
            starts = [
                child.start_tag
                for child in parent.children
                if child.backlogged
            ]
            parent.virtual = (
                max(advanced, min(starts)) if starts else advanced
            )
        # Commit the served chain's finish tags bottom-up, then re-tag
        # each chain node for its (possibly new) subtree head.
        node = leaf
        while node.parent is not None:
            node.last_finish = node.finish_tag
            node = node.parent
        node = leaf
        while node.parent is not None:
            head_size = self._head_size_bits(node)
            if head_size is None:
                node.backlogged = False
            else:
                node.backlogged = True
                self._assign_tags(node, head_size)
            node = node.parent
        return packet
