"""WF²Q+ — ref. [6]: WF²Q's fairness with a cheap virtual clock.

WF²Q+ keeps the eligibility rule of WF²Q but replaces GPS simulation with
a self-contained system virtual time updated only at service instants::

    V(t + L/r) = max(V(t) + L / PHI_total,  min over backlogged flows of S_head)

where ``L`` is the size of the packet just served.  The paper notes the
trade-off it brings: "the disadvantage with WF2Q+, however, is that it
requires two sort operations per packet" — one over finishing tags to
pick the packet, one over start tags for the virtual-time minimum; the
``sort_operations`` counter makes that visible to the benchmarks.
"""

from __future__ import annotations

from typing import Optional

from .base import PacketScheduler
from .packet import Packet

_ELIGIBILITY_SLACK = 1e-9


class WF2QPlusScheduler(PacketScheduler):
    """Eligibility-gated scheduling with the simplified virtual clock."""

    name = "wf2q+"

    def __init__(self, rate_bps: float) -> None:
        super().__init__(rate_bps)
        self._virtual = 0.0
        #: sort operations issued (two per served packet — Section I-B)
        self.sort_operations = 0

    def enqueue(self, packet: Packet, now: float) -> None:
        flow = self.flows.get(packet.flow_id)
        start = max(self._virtual, flow.last_finish_tag)
        finish = start + packet.size_bits / flow.weight
        packet.start_tag = start
        packet.finish_tag = finish
        flow.last_finish_tag = finish
        flow.queue.append(packet)

    def _min_head_start(self) -> Optional[float]:
        starts = [
            flow.head.start_tag for flow in self.flows.backlogged_flows()
        ]
        return min(starts) if starts else None

    def select_next(self, now: float) -> Optional[Packet]:
        best_flow = None
        best_finish = None
        self.sort_operations += 1  # finish-tag sort: pick min eligible F
        for flow in self.flows.backlogged_flows():
            head = flow.head
            if head.start_tag > self._virtual + _ELIGIBILITY_SLACK:
                continue
            if best_finish is None or head.finish_tag < best_finish:
                best_finish = head.finish_tag
                best_flow = flow
        if best_flow is None:
            return None
        packet = best_flow.queue.popleft()
        # Virtual-clock update at the service instant.
        total_weight = max(self.flows.total_weight, 1e-12)
        advanced = self._virtual + packet.size_bits / total_weight
        self.sort_operations += 1  # start-tag sort: min S over backlogged
        min_start = self._min_head_start()
        if min_start is None:
            self._virtual = advanced
        else:
            self._virtual = max(advanced, min_start)
        return packet

    def earliest_eligible_time(self, now: float) -> Optional[float]:
        """WF²Q+ is work-conserving: force the clock to the min start."""
        min_start = self._min_head_start()
        if min_start is None:
            return None
        # The virtual clock jumps to min(S) whenever nothing is eligible,
        # so service can resume immediately.
        self._virtual = max(self._virtual, min_start)
        return now
