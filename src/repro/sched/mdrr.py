"""Modified deficit round robin — the Cisco VoIP-prioritizing DRR variant.

MDRR "adds prioritization to try to provide a minimum delay for
differentiated services" (Section I-B): one designated *priority queue*
(the low-latency queue carrying VoIP) is served ahead of the deficit
rounds, in either strict-priority or alternate mode.  The remaining flows
run plain DRR.  The benchmarks show what the paper argues: MDRR helps the
one privileged class but still cannot give per-flow delay bounds.
"""

from __future__ import annotations

from typing import Optional

from ..hwsim.errors import ConfigurationError
from .base import PacketScheduler
from .drr import DRRScheduler
from .packet import Packet


class MDRRScheduler(PacketScheduler):
    """DRR plus one low-latency priority queue."""

    name = "mdrr"

    def __init__(
        self,
        rate_bps: float,
        *,
        priority_flow: int,
        quantum_bytes: float = 1500.0,
        strict: bool = False,
    ) -> None:
        super().__init__(rate_bps)
        self.priority_flow = priority_flow
        self.strict = strict
        self._drr = DRRScheduler(rate_bps, quantum_bytes=quantum_bytes)
        self._alternate_toggle = False
        # The priority queue lives in this scheduler's own flow table.
        self.flows.add(priority_flow, weight=1.0)

    def add_flow(self, flow_id: int, weight: float = 1.0, **kwargs) -> None:
        if flow_id == self.priority_flow:
            raise ConfigurationError(
                "the priority flow is registered by the constructor"
            )
        self._drr.add_flow(flow_id, weight, **kwargs)

    @property
    def backlog(self) -> int:
        priority = self.flows.get(self.priority_flow)
        return len(priority.queue) + self._drr.backlog

    def enqueue(self, packet: Packet, now: float) -> None:
        if packet.flow_id == self.priority_flow:
            self.flows.get(self.priority_flow).queue.append(packet)
        else:
            self._drr.enqueue(packet, now)

    def select_next(self, now: float) -> Optional[Packet]:
        priority = self.flows.get(self.priority_flow)
        if priority.backlogged:
            if self.strict:
                return priority.queue.popleft()
            # Alternate mode: priority queue gets every other slot.
            self._alternate_toggle = not self._alternate_toggle
            if self._alternate_toggle or self._drr.backlog == 0:
                return priority.queue.popleft()
        return self._drr.select_next(now)
