"""Service lifecycle: exact snapshots, graceful shutdown, recovery.

The service plane's durability story is the checkpoint/restore layer
underneath it: every component the serve engine owns — virtual clock,
packet buffer, scheduling fabric, flow table, admission set, session
table, handle ledger — round-trips exactly through JSON (floats are
``repr``-exact, every other field is integral), so a server restored
from a snapshot continues *event-for-event identical* service: the same
packets pop in the same order with the same tags, and the serve-log
sequence numbers continue unbroken.  The CI serve-smoke job proves this
by diffing an interrupted run (SIGTERM mid-soak, restart from the
snapshot) against an uninterrupted reference.

Snapshots are written atomically (temp file + ``os.replace`` in the
same directory), so a crash mid-write leaves the previous snapshot
intact — recovery never sees a torn file.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict

from ..hwsim.errors import ConfigurationError
from .protocol import PROTOCOL_VERSION

SNAPSHOT_KIND = "serve_snapshot"


# ----------------------------------------------------------------------
# capture / restore

def capture_state(engine) -> Dict[str, Any]:
    """Snapshot one serve engine, exactly.

    ``engine`` is a :class:`~repro.serve.server.ServeEngine`; the
    function lives here (not on the engine) so the snapshot schema and
    its disk format stay in one module.
    """
    return {
        "kind": SNAPSHOT_KIND,
        "version": PROTOCOL_VERSION,
        "config": engine.config.to_dict(),
        "vnow": engine.vnow,
        "served_seq": engine.served_seq,
        "counters": dict(engine.counters),
        "tokens": {
            "next": engine.next_token,
            "handles": sorted(engine.token_handles.items()),
            "packets": sorted(engine.packet_tokens.items()),
        },
        "system": engine.system.to_state(),
        "admission": engine.admission.to_state(),
        "table": engine.table.to_state(),
        "sessions": engine.sessions.to_state(),
        "backpressure": engine.backpressure.to_state(),
    }


def restore_state(engine, state: Dict[str, Any]) -> None:
    """Restore a :func:`capture_state` snapshot into a fresh engine.

    The engine must have been constructed from the same
    :class:`~repro.serve.server.ServeConfig` the snapshot recorded —
    the scheduling-relevant fields are cross-checked here, and each
    component's own ``load_state`` validates its geometry.
    """
    if state.get("kind") != SNAPSHOT_KIND:
        raise ConfigurationError(
            f"not a serve snapshot: kind={state.get('kind')!r}"
        )
    recorded = state["config"]
    current = engine.config.to_dict()
    for field in (
        "link_rate_bps",
        "shards",
        "buffer_capacity",
        "min_rate_bps",
        "table_capacity",
        "scheme",
    ):
        if recorded[field] != current[field]:
            raise ConfigurationError(
                f"snapshot config mismatch: {field} was "
                f"{recorded[field]!r}, server has {current[field]!r}"
            )
    engine.system.load_state(state["system"])
    engine.admission.load_state(state["admission"])
    engine.table.load_state(state["table"])
    engine.sessions.load_state(state["sessions"])
    engine.backpressure.load_state(state["backpressure"])
    engine.vnow = state["vnow"]
    engine.served_seq = int(state["served_seq"])
    engine.counters.update(state["counters"])
    tokens = state["tokens"]
    engine.next_token = int(tokens["next"])
    engine.token_handles = {
        int(token): int(handle) for token, handle in tokens["handles"]
    }
    engine.handle_tokens = {
        handle: token for token, handle in engine.token_handles.items()
    }
    engine.packet_tokens = {
        int(packet_id): int(token)
        for packet_id, token in tokens["packets"]
    }


# ----------------------------------------------------------------------
# disk format

def write_snapshot(path: str, state: Dict[str, Any]) -> None:
    """Atomically persist one snapshot (temp file + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        prefix=".serve-snapshot-", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(state, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def read_snapshot(path: str) -> Dict[str, Any]:
    """Load and sanity-check one snapshot file."""
    with open(path, "r", encoding="utf-8") as handle:
        state = json.load(handle)
    if not isinstance(state, dict) or state.get("kind") != SNAPSHOT_KIND:
        raise ConfigurationError(f"{path} is not a serve snapshot")
    return state


class SnapshotPolicy:
    """When to write periodic live snapshots: every N operations.

    The server calls :meth:`due` after every mutating verb; crossing
    the interval arms one snapshot.  ``interval_ops=0`` disables the
    periodic cadence (shutdown still snapshots).
    """

    def __init__(self, interval_ops: int = 0) -> None:
        if interval_ops < 0:
            raise ConfigurationError("snapshot interval must be >= 0")
        self.interval_ops = interval_ops
        self._since_last = 0
        self.taken = 0

    def due(self) -> bool:
        if self.interval_ops == 0:
            return False
        self._since_last += 1
        if self._since_last >= self.interval_ops:
            self._since_last = 0
            return True
        return False

    def mark_taken(self) -> None:
        self.taken += 1
