"""``python -m repro serve`` — the long-running WFQ scheduling server.

One process serves one link: an asyncio TCP front end speaking the
line-delimited JSON protocol, a :class:`ServeEngine` core owning the
full Fig. 1 system (tag computation + shared buffer + sharded
sort/retrieve fabric), and an optional paced drain loop that serves the
schedule at the configured line rate.

**Determinism.**  The data plane never reads the wall clock: arrivals
advance a *virtual* arrival clock at line rate (packet serialization
time per enqueue), so the schedule — tags, service order, marks — is a
pure function of the request stream.  That is what makes the lifecycle
guarantee provable: snapshot, restart, replay the remaining requests,
and the serve log continues event-for-event identically.

**Handles.**  The wire ``handle`` returned by ``enqueue`` is a stable
server-issued token, not the raw fabric handle: shard rebalancing may
physically migrate queued entries between circuits (changing their
fabric handles), and the engine's relocation-aware ledger absorbs that
— a client's handle survives migrations exactly like a timer token
survives a repin.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..core.engine import resolve_mode
from ..core.words import PAPER_FORMAT, WordFormat
from ..hwsim.errors import ConfigurationError, ProtocolError
from ..net.admission import AdmissionController
from ..net.fabric_system import FabricSchedulerSystem
from ..net.session_table import SessionStateTable
from ..sched.packet import Packet
from . import lifecycle
from .backpressure import SCHEMES, BackpressureController
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolDecodeError,
    decode_line,
    encode,
    error_response,
    ok_response,
    validate_request,
)

#: packets of worst-case tag increment half the tag space must cover
#: (mirrors HardwareWFQSystem.AUTO_GRANULARITY_HEADROOM, but sized from
#: the admission *floor* instead of the registered flow table — a
#: long-running server admits flows after tags are live, so the quantum
#: must be frozen up front from the lightest *admissible* weight)
GRANULARITY_HEADROOM = 128
MAX_PACKET_BYTES = 1500


def derive_granularity(
    link_rate_bps: float,
    min_rate_bps: float,
    fmt: WordFormat = PAPER_FORMAT,
    *,
    headroom: int = GRANULARITY_HEADROOM,
    max_packet_bytes: int = MAX_PACKET_BYTES,
) -> float:
    """The tag quantum a server with an admission rate floor needs.

    The lightest admissible flow has weight ``min_rate / C`` and a
    worst-case per-packet tag increment of ``L_max / weight``;
    ``headroom`` such increments must fit in half the tag space (the
    wrap window), exactly like the offline auto-granularity rule.
    """
    if min_rate_bps <= 0 or link_rate_bps <= 0:
        raise ConfigurationError("rates must be positive")
    min_weight = min_rate_bps / link_rate_bps
    worst_increment = max_packet_bytes * 8 / min_weight
    return headroom * worst_increment / (fmt.capacity // 2)


@dataclass
class ServeConfig:
    """Everything one serving link is configured with.

    The scheduling fields (everything except the runtime block at the
    bottom) are frozen into snapshots; a restore adopts them from the
    snapshot so a restarted server cannot diverge from the state it is
    resuming.
    """

    link_rate_bps: float = 40e9
    shards: int = 4
    buffer_capacity: int = 8192
    table_capacity: int = 8192
    min_rate_bps: float = 1e6
    utilization_limit: float = 0.95
    turbo: bool = True
    mode: Optional[str] = None
    workers: int = 0
    scheme: str = "shared"
    mark_fraction: float = 0.65
    reject_fraction: float = 0.9
    per_queue_mark: int = 64
    # runtime (not scheduling-relevant; never validated against snapshots)
    host: str = "127.0.0.1"
    port: int = 0
    drain_mode: str = "manual"  # "manual" | "paced"
    pace_multiplier: float = 1.0
    snapshot_path: Optional[str] = None
    snapshot_interval_ops: int = 0
    serve_log: Optional[str] = None
    metrics_port: Optional[int] = None
    metrics_host: str = "127.0.0.1"
    live_interval: float = 0.5
    watchdog_timeout: Optional[float] = None
    trace_path: Optional[str] = None
    flight_path: Optional[str] = None

    #: the fields a snapshot freezes (cross-checked on restore)
    SCHEDULING_FIELDS = (
        "link_rate_bps",
        "shards",
        "buffer_capacity",
        "table_capacity",
        "min_rate_bps",
        "utilization_limit",
        "turbo",
        "mode",
        "workers",
        "scheme",
        "mark_fraction",
        "reject_fraction",
        "per_queue_mark",
    )

    def __post_init__(self) -> None:
        # Normalize the engine pair: ``mode`` wins when set; the legacy
        # ``turbo`` bool keeps working (and keeps freezing) for old
        # snapshots and callers.
        if self.mode is None:
            self.mode = "turbo" if self.turbo else "gate"
        else:
            resolve_mode(self.mode)
        self.turbo = self.mode == "turbo"
        if self.drain_mode not in ("manual", "paced"):
            raise ConfigurationError(
                f"drain_mode must be 'manual' or 'paced', "
                f"got {self.drain_mode!r}"
            )
        if self.scheme not in SCHEMES:
            raise ConfigurationError(f"unknown marking scheme {self.scheme!r}")
        if self.pace_multiplier <= 0:
            raise ConfigurationError("pace_multiplier must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def adopt_scheduling_fields(self, recorded: Dict[str, Any]) -> None:
        """Take the snapshot's scheduling fields (restore path)."""
        for name in self.SCHEDULING_FIELDS:
            if name == "mode" and name not in recorded:
                # Pre-engine snapshots froze only the turbo bool.
                value = "turbo" if recorded.get("turbo", True) else "gate"
            else:
                value = recorded[name]
            setattr(self, name, value)
        self.turbo = self.mode == "turbo"


class ServeEngine:
    """The synchronous service core: verbs in, responses out.

    All state mutation happens here, single-threaded (the asyncio loop
    serializes connections), so the engine is directly unit-testable
    without any networking.
    """

    def __init__(self, config: ServeConfig, *, tracer=None) -> None:
        self.config = config
        self.granularity = derive_granularity(
            config.link_rate_bps, config.min_rate_bps
        )
        self.system = FabricSchedulerSystem(
            config.link_rate_bps,
            shards=config.shards,
            granularity=self.granularity,
            buffer_capacity=config.buffer_capacity,
            mode=config.mode,
            workers=config.workers,
            tracer=tracer,
        )
        self.admission = AdmissionController(
            config.link_rate_bps,
            utilization_limit=config.utilization_limit,
            min_rate_bps=config.min_rate_bps,
        )
        self.table = SessionStateTable(config.table_capacity)
        from .sessions import SessionManager

        self.sessions = SessionManager(self.system, self.admission, self.table)
        self.backpressure = BackpressureController(
            self.system.buffer,
            scheme=config.scheme,
            mark_fraction=config.mark_fraction,
            reject_fraction=config.reject_fraction,
            per_queue_mark=config.per_queue_mark,
            flow_backlog=self._flow_backlog,
            weight_share=self._weight_share,
        )
        #: virtual arrival clock: advances by serialization time per
        #: enqueue — the data plane's only notion of time
        self.vnow = 0.0
        #: monotone serve-log sequence, continuing across restarts
        self.served_seq = 0
        self.counters: Dict[str, int] = {
            "requests": 0,
            "errors": 0,
            "enqueued": 0,
            "served": 0,
            "cancelled": 0,
            "rescheduled": 0,
            "backpressure_rejected": 0,
        }
        # The relocation-aware handle ledger (see module docstring).
        self.next_token = 0
        self.token_handles: Dict[int, int] = {}
        self.handle_tokens: Dict[int, int] = {}
        self.packet_tokens: Dict[int, int] = {}
        self.system.add_relocation_listener(self._apply_relocations)
        self.shutdown_requested = False
        self._serve_log = None
        self._dispatch = {
            "hello": self._op_hello,
            "open": self._op_open,
            "close": self._op_close,
            "enqueue": self._op_enqueue,
            "cancel": self._op_cancel,
            "reschedule": self._op_reschedule,
            "drain": self._op_drain,
            "stats": self._op_stats,
            "snapshot": self._op_snapshot,
            "shutdown": self._op_shutdown,
        }
        #: verbs that mutate schedule state (drive the snapshot cadence)
        self.MUTATING = frozenset(
            ("open", "close", "enqueue", "cancel", "reschedule", "drain")
        )

    # ------------------------------------------------------------------
    # accessors the backpressure controller uses

    def _flow_backlog(self, flow_id: int) -> int:
        return self.system.store.flow_backlog(flow_id)

    def _weight_share(self, flow_id: int) -> float:
        """The flow's share of committed guaranteed rate (O(1))."""
        sla = self.admission.admitted_slas().get(flow_id)
        if sla is None:  # pragma: no cover - sessions gate enqueues
            return 0.0
        committed = self.admission.committed_rate_bps
        if committed <= 0:
            return 1.0
        return sla.guaranteed_rate_bps / committed

    # ------------------------------------------------------------------
    # handle ledger

    def _apply_relocations(self, relocations: Dict[int, int]) -> None:
        """Follow migrated fabric handles; tokens stay stable.

        Two-phase (pop everything, then reinsert): a migration's
        put-back path can reuse a just-freed address, so an in-place
        walk could overwrite a mapping before it was read.
        """
        moved = []
        for old, new in relocations.items():
            token = self.handle_tokens.pop(old, None)
            if token is not None:
                moved.append((new, token))
        for new, token in moved:
            self.handle_tokens[new] = token
            self.token_handles[token] = new

    def _issue_token(self, handle: int) -> int:
        token = self.next_token
        self.next_token += 1
        self.token_handles[token] = handle
        self.handle_tokens[handle] = token
        return token

    def _retire_packet(self, packet_id: int) -> None:
        token = self.packet_tokens.pop(packet_id, None)
        if token is not None:
            handle = self.token_handles.pop(token, None)
            if handle is not None:
                self.handle_tokens.pop(handle, None)

    # ------------------------------------------------------------------
    # the drain path (shared by the verb and the paced loop)

    def drain(self, count: int) -> List[Dict[str, Any]]:
        """Serve up to ``count`` packets in schedule order."""
        available = min(count, len(self.system.store))
        if available <= 0:
            return []
        packets = self.system.select_batch(available, self.vnow)
        records = []
        for packet in packets:
            self._retire_packet(packet.packet_id)
            session = self.sessions.session(packet.flow_id)
            if session is not None:
                session.served += 1
            records.append(
                {
                    "seq": self.served_seq,
                    "flow": packet.flow_id,
                    "tag": packet.finish_tag,
                    "size": packet.size_bytes,
                }
            )
            self.served_seq += 1
        self.counters["served"] += len(records)
        self._log_served(records)
        return records

    def _log_served(self, records: List[Dict[str, Any]]) -> None:
        if not records or self.config.serve_log is None:
            return
        if self._serve_log is None:
            self._serve_log = open(
                self.config.serve_log, "a", encoding="utf-8"
            )
        for record in records:
            self._serve_log.write(
                json.dumps(record, separators=(",", ":"), sort_keys=True)
                + "\n"
            )
        self._serve_log.flush()

    # ------------------------------------------------------------------
    # verb handlers

    def _op_hello(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return ok_response(
            request,
            server="repro-serve",
            protocol=PROTOCOL_VERSION,
            link_rate_bps=self.config.link_rate_bps,
            shards=self.config.shards,
            scheme=self.config.scheme,
            granularity=self.granularity,
        )

    def _op_open(self, request: Dict[str, Any]) -> Dict[str, Any]:
        decision = self.sessions.open(
            request["tenant"],
            request["flow"],
            request["rate_bps"],
            burst_bits=request.get("burst_bits", 0.0),
            max_packet_bytes=request.get("max_packet_bytes", 1500),
            delay_target_s=request.get("delay_target_s"),
        )
        if not decision.admitted:
            return error_response(request, decision.reason, admitted=False)
        return ok_response(
            request,
            admitted=True,
            weight=decision.weight,
            delay_bound_s=decision.offered_delay_s,
        )

    def _op_close(self, request: Dict[str, Any]) -> Dict[str, Any]:
        flow = request["flow"]
        try:
            session = self.sessions.close(
                flow, backlog=self._flow_backlog(flow)
            )
        except ConfigurationError as exc:
            return error_response(request, str(exc))
        return ok_response(
            request,
            flow=flow,
            enqueued=session.enqueued,
            served=session.served,
            cancelled=session.cancelled,
        )

    def _op_enqueue(self, request: Dict[str, Any]) -> Dict[str, Any]:
        flow = request["flow"]
        size = request["size"]
        if size < 1 or size > 65535:
            return error_response(
                request, f"packet size {size} outside [1, 65535] bytes"
            )
        session = self.sessions.session(flow)
        if session is None:
            return error_response(
                request, f"flow {flow} has no open session (open it first)"
            )
        decision = self.backpressure.decide(flow)
        if not decision.accept:
            self.counters["backpressure_rejected"] += 1
            return error_response(request, decision.reason, ecn=True)
        packet = Packet(
            flow_id=flow, size_bytes=size, arrival_time=self.vnow
        )
        try:
            handle = self.system.enqueue(packet, self.vnow)
        except ProtocolError as exc:
            # Span-guard refusal: the flow is holding more than its
            # weight's burst allowance of the tag space.  The slot was
            # released; tell the client to back off.
            return error_response(
                request, f"tag space exhausted for flow {flow}: {exc}"
            )
        self.vnow += packet.size_bits / self.config.link_rate_bps
        if handle is None:  # pragma: no cover - reject threshold gates this
            return error_response(request, "shared packet buffer is full")
        token = self._issue_token(handle)
        self.packet_tokens[packet.packet_id] = token
        session.enqueued += 1
        self.counters["enqueued"] += 1
        return ok_response(
            request, handle=token, tag=packet.finish_tag, ecn=decision.mark
        )

    def _op_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        token = request["handle"]
        handle = self.token_handles.pop(token, None)
        if handle is None:
            return error_response(
                request,
                f"handle {token} names no queued packet (already served, "
                "cancelled, or never issued)",
            )
        # Drop the ledger entries *before* touching the fabric: the
        # cancel can trigger a rebalance whose put-back path reuses the
        # freed address, and the relocation callback must not find the
        # dead mapping.
        self.handle_tokens.pop(handle, None)
        try:
            packet = self.system.cancel(handle)
        except ProtocolError as exc:  # pragma: no cover - ledger is sound
            return error_response(request, f"cancel failed: {exc}")
        self.packet_tokens.pop(packet.packet_id, None)
        session = self.sessions.session(packet.flow_id)
        if session is not None:
            session.cancelled += 1
        self.counters["cancelled"] += 1
        return ok_response(
            request, flow=packet.flow_id, tag=packet.finish_tag
        )

    def _op_reschedule(self, request: Dict[str, Any]) -> Dict[str, Any]:
        token = request["handle"]
        new_tag = request["tag"]
        handle = self.token_handles.get(token)
        if handle is None:
            return error_response(
                request, f"handle {token} names no queued packet"
            )
        self.token_handles.pop(token)
        self.handle_tokens.pop(handle, None)
        try:
            new_handle = self.system.reschedule(handle, new_tag)
        except ProtocolError as exc:
            # The span guard rejected the new tag *before* anything
            # moved; the entry is still live under its old handle.
            self.token_handles[token] = handle
            self.handle_tokens[handle] = token
            return error_response(request, f"reschedule rejected: {exc}")
        self.token_handles[token] = new_handle
        self.handle_tokens[new_handle] = token
        self.counters["rescheduled"] += 1
        return ok_response(request, handle=token, tag=new_tag)

    def _op_drain(self, request: Dict[str, Any]) -> Dict[str, Any]:
        count = request["count"]
        if count < 0:
            return error_response(request, "drain count must be >= 0")
        served = self.drain(count)
        return ok_response(request, served=served, backlog=len(self.system.store))

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return ok_response(request, stats=self.stats())

    def _op_snapshot(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self.config.snapshot_path is None:
            return error_response(
                request, "server was started without --snapshot"
            )
        path = self.snapshot()
        return ok_response(request, path=path, seq=self.served_seq)

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.shutdown_requested = True
        return ok_response(request, seq=self.served_seq)

    # ------------------------------------------------------------------
    # dispatch

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and execute one decoded request."""
        self.counters["requests"] += 1
        reason = validate_request(request)
        if reason is not None:
            self.counters["errors"] += 1
            return error_response(request, reason)
        return self._dispatch[request["op"]](request)

    # ------------------------------------------------------------------
    # operations

    def stats(self) -> Dict[str, Any]:
        fabric = self.system.store
        return {
            "vnow": self.vnow,
            "served_seq": self.served_seq,
            "counters": dict(self.counters),
            "sessions": {
                "open": self.sessions.count,
                "opened": self.sessions.opened,
                "closed": self.sessions.closed,
                "rejected": self.sessions.rejected,
                "tenants": self.sessions.tenant_counts(),
            },
            "admission": {
                "committed_rate_bps": self.admission.committed_rate_bps,
                "available_rate_bps": self.admission.available_rate_bps,
                "admitted": self.admission.admitted_count,
            },
            "buffer": {
                "occupancy": self.system.buffer.occupancy,
                "capacity": self.system.buffer.capacity,
                "high_watermark": self.system.buffer.high_watermark,
                "drops": self.system.buffer.drop_count,
            },
            "backpressure": self.backpressure.describe(),
            "fabric": {
                "backlog": len(fabric),
                "occupancies": fabric.occupancies(),
                "pushes": fabric.pushes,
                "pops": fabric.pops,
                "cancels": fabric.cancels,
                "repins": fabric.repins,
                "spills": fabric.manager.spill_count,
                "rebalances": fabric.manager.rebalance_count,
                "flows_moved": fabric.manager.flows_moved,
                "entries_migrated": fabric.manager.entries_migrated,
            },
            "table": {
                "active": self.table.active_sessions,
                "evictions": self.table.evictions,
            },
        }

    def snapshot(self) -> str:
        """Write one exact snapshot; returns its path."""
        state = lifecycle.capture_state(self)
        lifecycle.write_snapshot(self.config.snapshot_path, state)
        return self.config.snapshot_path

    def restore(self, state: Dict[str, Any]) -> None:
        """Adopt a snapshot (engine must be freshly constructed)."""
        lifecycle.restore_state(self, state)

    def close(self) -> None:
        """Release resources (worker pool, serve log)."""
        if self._serve_log is not None:
            self._serve_log.close()
            self._serve_log = None
        self.system.close()


class WfqServer:
    """The asyncio front end around one :class:`ServeEngine`."""

    def __init__(self, engine: ServeEngine) -> None:
        self.engine = engine
        self.config = engine.config
        self._server: Optional[asyncio.AbstractServer] = None
        # Created inside serve(): pre-3.10 asyncio primitives bind the
        # loop that exists at construction time, which may not be the
        # loop the server ends up running on.
        self._shutdown: Optional[asyncio.Event] = None
        self._shutdown_flag = False
        self._snapshot_policy = lifecycle.SnapshotPolicy(
            self.config.snapshot_interval_ops
        )
        self.port: Optional[int] = None
        self._plane = None
        self._tracer = None
        self._suite = None
        self._drain_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Graceful stop: triggered by SIGTERM/SIGINT or the verb."""
        self._shutdown_flag = True
        if self._shutdown is not None:
            self._shutdown.set()

    @property
    def _stopping(self) -> bool:
        return self._shutdown_flag

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stopping:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = decode_line(line)
                except ProtocolDecodeError as exc:
                    writer.write(encode({"ok": False, "reason": str(exc)}))
                    await writer.drain()
                    continue
                response = self.engine.handle_request(request)
                writer.write(encode(response))
                await writer.drain()
                if request.get("op") in self.engine.MUTATING:
                    self._maybe_snapshot()
                if self.engine.shutdown_requested:
                    self.request_shutdown()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _maybe_snapshot(self) -> None:
        if (
            self.config.snapshot_path is not None
            and self._snapshot_policy.due()
        ):
            self.engine.snapshot()
            self._snapshot_policy.mark_taken()

    async def _paced_drain(self) -> None:
        """Serve the schedule at ``pace_multiplier ×`` line rate.

        A token-bucket pacer against the wall clock: every tick it
        serves however many packets the elapsed time's bit budget
        covers.  Pacing affects only *when* packets pop, never in what
        order — the schedule itself is wall-clock free.
        """
        rate = self.config.link_rate_bps * self.config.pace_multiplier
        budget_bits = 0.0
        last = time.monotonic()
        while not self._stopping:
            await asyncio.sleep(0.005)
            now = time.monotonic()
            budget_bits += (now - last) * rate
            last = now
            served_bits = 0.0
            while (
                len(self.engine.system.store)
                and served_bits < budget_bits
            ):
                for record in self.engine.drain(256):
                    served_bits += record["size"] * 8
                if not len(self.engine.system.store):
                    break
            budget_bits = max(0.0, budget_bits - served_bits)
            if not len(self.engine.system.store):
                budget_bits = min(budget_bits, rate * 0.005)

    # ------------------------------------------------------------------

    def attach_live_plane(self) -> None:
        """Wire up /metrics, /health, monitors, and the flight recorder."""
        if self.config.metrics_port is None:
            return
        from ..obs.events import build_trace_header
        from ..obs.flight import FlightRecorder
        from ..obs.live import LivePlane
        from ..obs.monitors import MonitorConfig, MonitorSuite
        from ..obs.probes import StandardProbes
        from ..obs.slo import ServeStreamAuditor
        from ..obs.tracer import Tracer

        fabric = self.engine.system.store
        probes = StandardProbes()
        tracer = Tracer(
            buffer_size=65536,
            sink=self.config.trace_path,
            observers=[probes],
        )
        tracer.write_header(
            build_trace_header(
                seed=0,
                mode="per_op",
                config=fabric.stores[0].describe(),
                ops=0,
                purpose="serve",
                engine=self.config.mode,
            )
        )
        suite = MonitorSuite.for_circuit(
            fabric.stores[0].circuit, tracer=tracer
        )
        tracer.add_observer(suite)
        flight = None
        if self.config.flight_path:
            flight = FlightRecorder(
                self.config.flight_path, header=tracer.header
            )
            flight.attach(tracer)
        monitor_config = MonitorConfig.from_circuit_config(
            fabric.stores[0].describe()
        )
        auditor = ServeStreamAuditor(
            instruments=probes.instruments,
            modular=monitor_config.modular,
            tag_space=monitor_config.tag_space,
        )
        tracer.add_observer(auditor, kinds=ServeStreamAuditor.OBSERVED_KINDS)
        fabric.attach_tracer(tracer)
        engine = self.engine

        def extra_status() -> Dict[str, Any]:
            return {
                "serve": {
                    "sessions": engine.sessions.count,
                    "served_seq": engine.served_seq,
                    "enqueued": engine.counters["enqueued"],
                    "backpressure": {
                        "marked": engine.backpressure.marked,
                        "rejected": engine.backpressure.rejected,
                    },
                    "buffer_high_watermark": (
                        engine.system.buffer.high_watermark
                    ),
                    "vnow": engine.vnow,
                }
            }

        self._plane = LivePlane(
            instruments=probes.instruments,
            progress=lambda: float(fabric.pushes + fabric.pops),
            occupancy=lambda: float(len(fabric)),
            shard_occupancies=lambda: [
                float(n) for n in fabric.occupancies()
            ],
            free_list_depth=lambda: float(
                sum(s.circuit.free_list_depth for s in fabric.stores)
            ),
            monitors=suite,
            tracer=tracer,
            flight=flight,
            auditor=auditor,
            serve_port=self.config.metrics_port,
            serve_host=self.config.metrics_host,
            interval=self.config.live_interval,
            watchdog_timeout=self.config.watchdog_timeout,
            extra_status=extra_status,
        )
        self._tracer = tracer
        self._suite = suite

    @property
    def monitors_ok(self) -> bool:
        """Whether the attached invariant monitors are all clean."""
        return self._suite is None or self._suite.ok

    # ------------------------------------------------------------------

    async def serve(self) -> int:
        """Run until shutdown; returns the process exit status."""
        self._shutdown = asyncio.Event()
        if self._shutdown_flag:
            self._shutdown.set()
        self.attach_live_plane()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, ValueError, RuntimeError):
                # Non-POSIX loop, or running off the main thread (tests
                # embed the server that way): signals are the embedding
                # process's business then.
                pass
        if self._plane is not None:
            self._plane.start()
        announce = {
            "listening": self.config.host,
            "port": self.port,
            "protocol": PROTOCOL_VERSION,
        }
        if self._plane is not None and self._plane.port is not None:
            announce["metrics_port"] = self._plane.port
        print(json.dumps(announce), flush=True)
        if self.config.drain_mode == "paced":
            self._drain_task = asyncio.ensure_future(self._paced_drain())
        try:
            await self._shutdown.wait()
        finally:
            if self._drain_task is not None:
                self._drain_task.cancel()
            self._server.close()
            await self._server.wait_closed()
            if self.config.snapshot_path is not None:
                self.engine.snapshot()
            if self._plane is not None:
                self._plane.finish()
            if self._tracer is not None:
                self._tracer.flush()
                self._tracer.close()
            status = 0 if self.monitors_ok else 1
            self.engine.close()
        return status


# ----------------------------------------------------------------------
# CLI

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the WFQ scheduling server: line-delimited JSON over "
            "TCP in front of the tag-sorting fabric."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--rate", type=float, default=40e9, help="link rate, bits/s"
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--buffer", type=int, default=8192, help="shared buffer slots"
    )
    parser.add_argument(
        "--table", type=int, default=8192, help="session table records"
    )
    parser.add_argument(
        "--min-rate",
        type=float,
        default=1e6,
        help="admission rate floor, bits/s (sizes the tag quantum)",
    )
    parser.add_argument("--utilization", type=float, default=0.95)
    parser.add_argument(
        "--mode",
        choices=("gate", "turbo", "vector"),
        default="turbo",
        help="circuit engine",
    )
    parser.add_argument(
        "--workers", type=int, default=0, help="fabric worker processes"
    )
    parser.add_argument("--scheme", choices=SCHEMES, default="shared")
    parser.add_argument("--mark-fraction", type=float, default=0.65)
    parser.add_argument("--reject-fraction", type=float, default=0.9)
    parser.add_argument("--per-queue-mark", type=int, default=64)
    parser.add_argument(
        "--drain",
        choices=("manual", "paced"),
        default="manual",
        help="manual: clients drain; paced: serve at line rate",
    )
    parser.add_argument("--pace-multiplier", type=float, default=1.0)
    parser.add_argument(
        "--snapshot", metavar="FILE", help="snapshot path (enables lifecycle)"
    )
    parser.add_argument(
        "--snapshot-interval",
        type=int,
        default=0,
        metavar="OPS",
        help="also snapshot every N mutating ops (0: shutdown only)",
    )
    parser.add_argument(
        "--restore",
        metavar="FILE",
        help="restore this snapshot before serving",
    )
    parser.add_argument(
        "--serve-log", metavar="FILE", help="append served packets here"
    )
    parser.add_argument(
        "--metrics",
        type=int,
        metavar="PORT",
        help="attach the live plane (/metrics /health) on this port",
    )
    parser.add_argument("--metrics-host", default="127.0.0.1")
    parser.add_argument("--live-interval", type=float, default=0.5)
    parser.add_argument("--watchdog", type=float, metavar="SECONDS")
    parser.add_argument(
        "--trace", metavar="FILE", help="stream the JSONL event trace here"
    )
    parser.add_argument(
        "--flight", metavar="FILE", help="flight-recorder dump path"
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        link_rate_bps=args.rate,
        shards=args.shards,
        buffer_capacity=args.buffer,
        table_capacity=args.table,
        min_rate_bps=args.min_rate,
        utilization_limit=args.utilization,
        mode=args.mode,
        workers=args.workers,
        scheme=args.scheme,
        mark_fraction=args.mark_fraction,
        reject_fraction=args.reject_fraction,
        per_queue_mark=args.per_queue_mark,
        host=args.host,
        port=args.port,
        drain_mode=args.drain,
        pace_multiplier=args.pace_multiplier,
        snapshot_path=args.snapshot,
        snapshot_interval_ops=args.snapshot_interval,
        serve_log=args.serve_log,
        metrics_port=args.metrics,
        metrics_host=args.metrics_host,
        live_interval=args.live_interval,
        watchdog_timeout=args.watchdog,
        trace_path=args.trace,
        flight_path=args.flight,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = config_from_args(args)
    state = None
    if args.restore:
        state = lifecycle.read_snapshot(args.restore)
        # The snapshot's scheduling fields win: a restored server must
        # resume exactly the system it snapshotted.
        config.adopt_scheduling_fields(state["config"])
    engine = ServeEngine(config)
    if state is not None:
        engine.restore(state)
    server = WfqServer(engine)
    try:
        return asyncio.run(server.serve())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
