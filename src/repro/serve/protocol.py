"""The service plane's wire protocol: line-delimited JSON.

One request object per line, one response object per line, UTF-8.  Every
request carries an ``op`` naming the verb; every response carries
``ok`` (bool) and, on failure, a human-readable ``reason``.  Clients may
attach an ``id`` to any request and the response echoes it verbatim —
the standard correlation trick for pipelined requests on one connection.

The verb schemas live here, next to the codec, so the server's dispatch
and the tests validate against a single source of truth.  Floats ride
through ``repr``-exact JSON (the same property the checkpoint layer
leans on), so a tag echoed by the server re-submits bit-identically in a
``reschedule``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

#: protocol revision, reported by ``hello`` and stamped into snapshots
PROTOCOL_VERSION = 1


class ProtocolDecodeError(ValueError):
    """A wire line that is not a valid request/response object."""


# ----------------------------------------------------------------------
# codec

def encode(message: Dict[str, Any]) -> bytes:
    """One message → one wire line (compact JSON + newline)."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """One wire line → one message dict.

    Raises :class:`ProtocolDecodeError` on malformed JSON or a payload
    that is not an object — the server answers those with an error
    response instead of dropping the connection.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolDecodeError(f"malformed JSON line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolDecodeError(
            f"expected a JSON object, got {type(message).__name__}"
        )
    return message


# ----------------------------------------------------------------------
# verb schemas

def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


#: verb → (required fields, optional fields); each maps name → checker
VERBS: Dict[str, Tuple[Dict[str, Any], Dict[str, Any]]] = {
    # control plane
    "hello": ({}, {}),
    "open": (
        {
            "tenant": lambda v: isinstance(v, str) and bool(v),
            "flow": _is_int,
            "rate_bps": _is_number,
        },
        {
            "burst_bits": _is_number,
            "max_packet_bytes": _is_int,
            "delay_target_s": _is_number,
        },
    ),
    "close": ({"flow": _is_int}, {}),
    # data plane
    "enqueue": ({"flow": _is_int, "size": _is_int}, {}),
    "cancel": ({"handle": _is_int}, {}),
    "reschedule": ({"handle": _is_int, "tag": _is_number}, {}),
    "drain": ({"count": _is_int}, {}),
    # operations
    "stats": ({}, {}),
    "snapshot": ({}, {}),
    "shutdown": ({}, {}),
}


def validate_request(message: Dict[str, Any]) -> Optional[str]:
    """Check one decoded request against its verb schema.

    Returns ``None`` when valid, else the rejection reason.  Unknown
    fields are rejected too — a typo'd optional field failing loudly
    beats a silently ignored one.
    """
    op = message.get("op")
    if not isinstance(op, str):
        return "request needs a string 'op' field"
    schema = VERBS.get(op)
    if schema is None:
        return f"unknown op {op!r} (valid: {', '.join(sorted(VERBS))})"
    required, optional = schema
    for name, check in required.items():
        if name not in message:
            return f"{op}: missing required field {name!r}"
        if not check(message[name]):
            return f"{op}: field {name!r} has an invalid value"
    for name, value in message.items():
        if name in ("op", "id"):
            continue
        if name in required:
            continue
        check = optional.get(name)
        if check is None:
            return f"{op}: unknown field {name!r}"
        if not check(value):
            return f"{op}: field {name!r} has an invalid value"
    return None


# ----------------------------------------------------------------------
# response helpers

def ok_response(request: Dict[str, Any], **fields: Any) -> Dict[str, Any]:
    """A success response, echoing the request's ``id`` if present."""
    response: Dict[str, Any] = {"ok": True}
    if "id" in request:
        response["id"] = request["id"]
    response.update(fields)
    return response


def error_response(
    request: Dict[str, Any], reason: str, **fields: Any
) -> Dict[str, Any]:
    """A failure response with the rejection reason."""
    response: Dict[str, Any] = {"ok": False, "reason": reason}
    if "id" in request:
        response["id"] = request["id"]
    response.update(fields)
    return response
