"""Per-tenant flow sessions: SLA admission wired into live state.

A *session* is one admitted flow on the serving link: its tenant, its
SLA, its scheduler registration, and its per-session hardware record.
:class:`SessionManager` is the control-plane bridge the server verbs
drive:

* ``open`` — evaluate the SLA through the
  :class:`~repro.net.admission.AdmissionController`; on admission,
  register the flow (weight ``g_i / C``) on the scheduler, provision
  its :class:`~repro.net.session_table.SessionStateTable` record, and
  book it to its tenant;
* ``close`` — refuse while the flow still has queued packets (the
  schedule must drain or the client must cancel first), then release
  the SLA, the scheduler-side bookkeeping, and the table record;
* snapshots — sessions serialize with the admission set, so a restored
  server re-admits exactly the flows that were live.

Sessions are durable across connections by design: a load balancer may
reconnect, but the flow's SLA and its queued packets belong to the
*flow*, not to the TCP connection that opened it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..hwsim.errors import CapacityError, ConfigurationError
from ..net.admission import (
    AdmissionController,
    AdmissionDecision,
    ServiceLevelAgreement,
)
from ..net.session_table import SessionStateTable


@dataclass
class FlowSession:
    """One admitted flow's live control-plane state."""

    flow_id: int
    tenant: str
    #: packets accepted for this flow since open (survives restarts)
    enqueued: int = 0
    #: packets served for this flow since open
    served: int = 0
    #: packets cancelled for this flow since open
    cancelled: int = 0


class SessionManager:
    """Admission-controlled session registry for one serving link."""

    def __init__(
        self,
        scheduler,
        admission: AdmissionController,
        table: SessionStateTable,
    ) -> None:
        self.scheduler = scheduler
        self.admission = admission
        self.table = table
        self._sessions: Dict[int, FlowSession] = {}
        #: tenant → open session count
        self._tenants: Dict[str, int] = {}
        self.opened = 0
        self.closed = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    # introspection

    @property
    def count(self) -> int:
        """Open sessions."""
        return len(self._sessions)

    def session(self, flow_id: int) -> Optional[FlowSession]:
        """One flow's session, if open."""
        return self._sessions.get(flow_id)

    def tenant_counts(self) -> Dict[str, int]:
        """Open sessions per tenant (a copy)."""
        return dict(self._tenants)

    # ------------------------------------------------------------------
    # lifecycle

    def open(
        self,
        tenant: str,
        flow_id: int,
        rate_bps: float,
        *,
        burst_bits: float = 0.0,
        max_packet_bytes: int = 1500,
        delay_target_s: Optional[float] = None,
    ) -> AdmissionDecision:
        """Admit one flow for one tenant; the full open path.

        On admission the flow is registered on the scheduler at its SLA
        weight and provisioned in the session table; a table-capacity
        failure rolls the admission back, so a rejected open never
        leaks committed rate.
        """
        try:
            sla = ServiceLevelAgreement(
                flow_id=flow_id,
                guaranteed_rate_bps=rate_bps,
                burst_bits=burst_bits,
                max_packet_bytes=max_packet_bytes,
                delay_target_s=delay_target_s,
            )
        except ConfigurationError as exc:
            self.rejected += 1
            return AdmissionDecision(admitted=False, reason=str(exc))
        decision = self.admission.admit(sla)
        if not decision.admitted:
            self.rejected += 1
            return decision
        weight = decision.weight
        try:
            if flow_id in self.scheduler.flows:
                self.scheduler.set_flow_weight(
                    flow_id, weight, guaranteed_rate_bps=rate_bps
                )
            else:
                self.scheduler.add_flow(
                    flow_id, weight, guaranteed_rate_bps=rate_bps
                )
            if self.table.record_of(flow_id) is None:
                self.table.provision(flow_id, weight)
        except (CapacityError, ConfigurationError) as exc:
            self.admission.release(flow_id)
            self.rejected += 1
            return AdmissionDecision(
                admitted=False, reason=f"session setup failed: {exc}"
            )
        self._sessions[flow_id] = FlowSession(flow_id=flow_id, tenant=tenant)
        self._tenants[tenant] = self._tenants.get(tenant, 0) + 1
        self.opened += 1
        return decision

    def close(self, flow_id: int, *, backlog: int = 0) -> FlowSession:
        """Tear one session down; refuses while packets are queued.

        ``backlog`` is the flow's live queued-packet count (the server
        reads it off the fabric); a non-zero backlog is an error —
        closing would orphan scheduled packets.
        """
        session = self._sessions.get(flow_id)
        if session is None:
            raise ConfigurationError(f"flow {flow_id} has no open session")
        if backlog > 0:
            raise ConfigurationError(
                f"flow {flow_id} still has {backlog} queued packet(s); "
                "drain or cancel them before closing"
            )
        self.admission.release(flow_id)
        if self.table.record_of(flow_id) is not None:
            self.table.release(flow_id)
        del self._sessions[flow_id]
        remaining = self._tenants.get(session.tenant, 1) - 1
        if remaining > 0:
            self._tenants[session.tenant] = remaining
        else:
            self._tenants.pop(session.tenant, None)
        self.closed += 1
        return session

    # ------------------------------------------------------------------
    # checkpoint / restore (service-plane snapshots)

    def to_state(self) -> dict:
        """Serializable snapshot of every open session.

        The admission set and the session table snapshot separately
        (they are shared components); this covers only the session
        bookkeeping itself.
        """
        return {
            "kind": "session_manager",
            "opened": self.opened,
            "closed": self.closed,
            "rejected": self.rejected,
            "sessions": [
                [
                    session.flow_id,
                    session.tenant,
                    session.enqueued,
                    session.served,
                    session.cancelled,
                ]
                for session in sorted(
                    self._sessions.values(), key=lambda s: s.flow_id
                )
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this instance."""
        if state.get("kind") != "session_manager":
            raise ConfigurationError(
                f"not a session manager snapshot: kind={state.get('kind')!r}"
            )
        self._sessions = {}
        self._tenants = {}
        for flow_id, tenant, enqueued, served, cancelled in state["sessions"]:
            session = FlowSession(
                flow_id=int(flow_id),
                tenant=tenant,
                enqueued=int(enqueued),
                served=int(served),
                cancelled=int(cancelled),
            )
            self._sessions[session.flow_id] = session
            self._tenants[tenant] = self._tenants.get(tenant, 0) + 1
        self.opened = int(state["opened"])
        self.closed = int(state["closed"])
        self.rejected = int(state["rejected"])
