"""The always-on service plane: ``python -m repro serve``.

Everything below this package turns the reproduced hardware — WFQ tag
computation, shared packet buffer, sharded sort/retrieve fabric — into a
long-running scheduling *service*:

* :mod:`repro.serve.protocol` — the line-delimited JSON wire protocol
  (one request object per line, one response object per line);
* :mod:`repro.serve.sessions` — per-tenant flow sessions bridging SLA
  admission control and the per-session state table into live
  connection state;
* :mod:`repro.serve.backpressure` — ECN-style marking and admission
  rejection driven by shared-buffer occupancy;
* :mod:`repro.serve.server` — the asyncio TCP server and its paced
  drain loop;
* :mod:`repro.serve.lifecycle` — periodic exact snapshots, graceful
  shutdown, and crash recovery that provably continues the identical
  service order;
* :mod:`repro.serve.client` — a synchronous client plus deterministic
  load scripts (``python -m repro client``).
"""

from .backpressure import BackpressureController, BackpressureDecision
from .protocol import ProtocolDecodeError, decode_line, encode
from .sessions import SessionManager

__all__ = [
    "BackpressureController",
    "BackpressureDecision",
    "ProtocolDecodeError",
    "SessionManager",
    "decode_line",
    "encode",
]
