"""Occupancy-driven backpressure: ECN-style marking and rejection.

The shared packet buffer is the service's one finite data-plane
resource; this module turns its occupancy into per-enqueue decisions the
way router WFQ implementations turn queue length into ECN marks.  Three
marking schemes, modeled on the classic ns WFQ marking variants:

* ``shared`` — mark every accepted packet once the *shared buffer*
  occupancy crosses the mark threshold (one pool, one threshold);
* ``per_queue`` — mark when the arriving packet's own flow already has
  more than ``per_queue_mark`` packets queued (per-virtual-queue
  threshold, independent of the pool);
* ``weighted`` — per-flow threshold scaled by the flow's weight share
  of the marking region: a flow holding ``phi_i / sum(phi)`` of the
  link may hold the same share of the buffer unmarked (the generalized
  multi-queue marking rule).

Rejection is always shared-pool: once occupancy crosses the reject
threshold the enqueue is refused outright (admission-reject response on
the wire) — the service's equivalent of a full-buffer drop, except the
client is told instead of the packet vanishing.  Both thresholds come
from :meth:`~repro.net.buffer.SharedPacketBuffer.mark_threshold`, so
they are consistent with the buffer's own occupancy accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..hwsim.errors import ConfigurationError
from ..net.buffer import SharedPacketBuffer

#: the marking schemes, in the order the CLI documents them
SCHEMES = ("shared", "per_queue", "weighted")


@dataclass(frozen=True)
class BackpressureDecision:
    """One enqueue's verdict: admit it, and if so, mark it?"""

    accept: bool
    mark: bool = False
    reason: Optional[str] = None


class BackpressureController:
    """Turns buffer occupancy into accept/mark/reject decisions."""

    def __init__(
        self,
        buffer: SharedPacketBuffer,
        *,
        scheme: str = "shared",
        mark_fraction: float = 0.65,
        reject_fraction: float = 0.9,
        per_queue_mark: int = 64,
        flow_backlog: Optional[Callable[[int], int]] = None,
        weight_share: Optional[Callable[[int], float]] = None,
    ) -> None:
        if scheme not in SCHEMES:
            raise ConfigurationError(
                f"unknown marking scheme {scheme!r} "
                f"(valid: {', '.join(SCHEMES)})"
            )
        if not 0 < mark_fraction <= reject_fraction <= 1:
            raise ConfigurationError(
                "need 0 < mark_fraction <= reject_fraction <= 1"
            )
        if per_queue_mark < 1:
            raise ConfigurationError("per_queue_mark must be positive")
        if scheme == "per_queue" and flow_backlog is None:
            raise ConfigurationError(
                "per_queue marking needs a flow_backlog accessor"
            )
        if scheme == "weighted" and (
            flow_backlog is None or weight_share is None
        ):
            raise ConfigurationError(
                "weighted marking needs flow_backlog and weight_share "
                "accessors"
            )
        self.buffer = buffer
        self.scheme = scheme
        self.mark_fraction = mark_fraction
        self.reject_fraction = reject_fraction
        self.per_queue_mark = per_queue_mark
        self._flow_backlog = flow_backlog
        self._weight_share = weight_share
        self.mark_threshold = buffer.mark_threshold(mark_fraction)
        self.reject_threshold = buffer.mark_threshold(reject_fraction)
        #: decisions by outcome
        self.accepted = 0
        self.marked = 0
        self.rejected = 0

    # ------------------------------------------------------------------

    def _should_mark(self, flow_id: int) -> bool:
        if self.scheme == "shared":
            return self.buffer.occupancy >= self.mark_threshold
        backlog = self._flow_backlog(flow_id)
        if self.scheme == "per_queue":
            return backlog >= self.per_queue_mark
        # weighted: the flow's fair share of the marking region.  A
        # flow carrying share s of the link weight may hold s of the
        # mark-threshold region unmarked; the 1-packet floor keeps the
        # lightest flows from being marked on their first packet.
        share = self._weight_share(flow_id)
        allowance = max(1, int(self.mark_threshold * share))
        return backlog >= allowance

    def decide(self, flow_id: int) -> BackpressureDecision:
        """Judge one arriving enqueue *before* it touches the buffer."""
        if self.buffer.occupancy >= self.reject_threshold:
            self.rejected += 1
            return BackpressureDecision(
                accept=False,
                reason=(
                    f"backpressure: buffer at {self.buffer.occupancy}/"
                    f"{self.buffer.capacity} exceeds the reject "
                    f"threshold {self.reject_threshold}"
                ),
            )
        marked = self._should_mark(flow_id)
        self.accepted += 1
        if marked:
            self.marked += 1
        return BackpressureDecision(accept=True, mark=marked)

    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """Counters and thresholds for /metrics and ``stats``."""
        return {
            "scheme": self.scheme,
            "mark_threshold": self.mark_threshold,
            "reject_threshold": self.reject_threshold,
            "accepted": self.accepted,
            "marked": self.marked,
            "rejected": self.rejected,
            "occupancy": self.buffer.occupancy,
            "high_watermark": self.buffer.high_watermark,
        }

    def to_state(self) -> dict:
        """Snapshot of the counters (thresholds are re-derived)."""
        return {
            "kind": "backpressure",
            "scheme": self.scheme,
            "accepted": self.accepted,
            "marked": self.marked,
            "rejected": self.rejected,
        }

    def load_state(self, state: dict) -> None:
        if state.get("kind") != "backpressure":
            raise ConfigurationError(
                f"not a backpressure snapshot: kind={state.get('kind')!r}"
            )
        if state["scheme"] != self.scheme:
            raise ConfigurationError(
                f"snapshot scheme {state['scheme']!r} != {self.scheme!r}"
            )
        self.accepted = int(state["accepted"])
        self.marked = int(state["marked"])
        self.rejected = int(state["rejected"])
