"""``python -m repro client`` — load driver for the serve plane.

A small synchronous client speaking the line-delimited JSON protocol,
plus a deterministic workload generator.  Two properties matter:

* **Determinism** — the op stream is a pure function of
  ``(seed, flows, tenants, ops)``; two clients with the same parameters
  submit byte-identical request streams.  Combined with the server's
  virtual arrival clock, the *schedule* is then deterministic too.
* **Slice safety** — every generated op is self-contained (a
  ``cancel`` cancels the handle returned by its *own* paired enqueue,
  never one from an earlier op), so the stream can be split at any
  index: run ops ``[0, k)``, SIGTERM the server, restart from the
  snapshot, run ops ``[k, n)`` — exactly what the restart-parity CI job
  does.
"""

from __future__ import annotations

import argparse
import json
import random
import socket
import sys
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .protocol import ProtocolDecodeError, decode_line, encode


class ServeClient:
    """One connection to a serve endpoint; blocking request/response."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 30.0,
        retries: int = 0,
        retry_delay: float = 0.2,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_delay = retry_delay
        self._sock: Optional[socket.socket] = None
        self._file = None

    # ------------------------------------------------------------------

    def connect(self) -> "ServeClient":
        """Open the connection (with optional retries for slow starts)."""
        attempt = 0
        while True:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                self._file = self._sock.makefile("rb")
                return self
            except OSError:
                attempt += 1
                if attempt > self.retries:
                    raise
                time.sleep(self.retry_delay)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request, block for its response."""
        if self._sock is None:
            raise ConnectionError("client is not connected")
        self._sock.sendall(encode(message))
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        try:
            return decode_line(line)
        except ProtocolDecodeError as exc:
            raise ConnectionError(f"unparseable response: {exc}") from exc

    # convenience verbs -------------------------------------------------

    def hello(self) -> Dict[str, Any]:
        return self.request({"op": "hello"})

    def open_flow(
        self, tenant: str, flow: int, rate_bps: float, **optional: Any
    ) -> Dict[str, Any]:
        message = {
            "op": "open",
            "tenant": tenant,
            "flow": flow,
            "rate_bps": rate_bps,
        }
        message.update(optional)
        return self.request(message)

    def enqueue(self, flow: int, size: int) -> Dict[str, Any]:
        return self.request({"op": "enqueue", "flow": flow, "size": size})

    def cancel(self, handle: int) -> Dict[str, Any]:
        return self.request({"op": "cancel", "handle": handle})

    def reschedule(self, handle: int, tag: float) -> Dict[str, Any]:
        return self.request(
            {"op": "reschedule", "handle": handle, "tag": tag}
        )

    def drain(self, count: int) -> Dict[str, Any]:
        return self.request({"op": "drain", "count": count})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def snapshot(self) -> Dict[str, Any]:
        return self.request({"op": "snapshot"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})


# ----------------------------------------------------------------------
# deterministic workload


def build_script(
    *,
    seed: int,
    flows: int,
    tenants: int,
    ops: int,
    rate_min_bps: float = 1e6,
    rate_max_bps: float = 10e6,
    size_min: int = 64,
    size_max: int = 1500,
    cancel_ratio: float = 0.05,
    reschedule_ratio: float = 0.05,
    drain_ratio: float = 0.2,
    drain_batch: int = 32,
) -> List[Tuple]:
    """The deterministic op stream: opens first, then the mixed soak.

    Returns abstract ops the executor materializes:
    ``("open", tenant, flow, rate)``, ``("enqueue", flow, size)``,
    ``("enqueue_cancel", flow, size)``,
    ``("enqueue_reschedule", flow, size, tag_bump)``, and
    ``("drain", count)``.  The compound ops keep every entry
    self-contained — see the module docstring.
    """
    rng = random.Random(seed)
    script: List[Tuple] = []
    for flow in range(flows):
        rate = rng.uniform(rate_min_bps, rate_max_bps)
        script.append(("open", f"tenant-{flow % tenants}", flow, rate))
    for _ in range(ops):
        roll = rng.random()
        flow = rng.randrange(flows)
        size = rng.randint(size_min, size_max)
        if roll < drain_ratio:
            script.append(("drain", drain_batch))
        elif roll < drain_ratio + cancel_ratio:
            script.append(("enqueue_cancel", flow, size))
        elif roll < drain_ratio + cancel_ratio + reschedule_ratio:
            script.append(
                ("enqueue_reschedule", flow, size, rng.randint(1, 64))
            )
        else:
            script.append(("enqueue", flow, size))
    return script


def run_script(
    client: ServeClient,
    script: List[Tuple],
    *,
    start: int = 0,
    stop: Optional[int] = None,
    granularity: Optional[float] = None,
) -> Dict[str, int]:
    """Execute ``script[start:stop]``; returns outcome counters.

    ``granularity`` scales the reschedule tag bump (fetched from
    ``hello`` when not given) so rescheduled tags stay well inside the
    span guard.
    """
    if granularity is None:
        granularity = client.hello().get("granularity", 1.0)
    counters = {
        "ops": 0,
        "ok": 0,
        "rejected": 0,
        "marked": 0,
        "served": 0,
    }
    for op in script[start:stop]:
        counters["ops"] += 1
        kind = op[0]
        if kind == "open":
            response = client.open_flow(op[1], op[2], op[3])
        elif kind == "enqueue":
            response = client.enqueue(op[1], op[2])
        elif kind == "enqueue_cancel":
            response = client.enqueue(op[1], op[2])
            if response.get("ok"):
                if response.get("ecn"):
                    counters["marked"] += 1
                response = client.cancel(response["handle"])
        elif kind == "enqueue_reschedule":
            response = client.enqueue(op[1], op[2])
            if response.get("ok"):
                if response.get("ecn"):
                    counters["marked"] += 1
                response = client.reschedule(
                    response["handle"],
                    response["tag"] + op[3] * granularity,
                )
        elif kind == "drain":
            response = client.drain(op[1])
            if response.get("ok"):
                counters["served"] += len(response["served"])
        else:  # pragma: no cover - script builder emits no other kinds
            raise ValueError(f"unknown script op {kind!r}")
        if response.get("ok"):
            counters["ok"] += 1
            if response.get("ecn"):
                counters["marked"] += 1
        else:
            counters["rejected"] += 1
    return counters


# ----------------------------------------------------------------------
# CLI


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro client",
        description=(
            "Drive a serve endpoint with a deterministic mixed workload "
            "(opens, enqueues, cancels, reschedules, drains)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--flows", type=int, default=64)
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--ops", type=int, default=1000)
    parser.add_argument(
        "--start", type=int, default=0, help="first script index to run"
    )
    parser.add_argument(
        "--stop",
        type=int,
        default=None,
        help="stop before this script index (default: run to the end)",
    )
    parser.add_argument("--rate-min", type=float, default=1e6)
    parser.add_argument("--rate-max", type=float, default=10e6)
    parser.add_argument("--size-min", type=int, default=64)
    parser.add_argument("--size-max", type=int, default=1500)
    parser.add_argument("--cancel-ratio", type=float, default=0.05)
    parser.add_argument("--reschedule-ratio", type=float, default=0.05)
    parser.add_argument("--drain-ratio", type=float, default=0.2)
    parser.add_argument("--drain-batch", type=int, default=32)
    parser.add_argument(
        "--connect-retries",
        type=int,
        default=0,
        help="retry the TCP connect this many times (server still booting)",
    )
    parser.add_argument(
        "--drain-rest",
        action="store_true",
        help="after the script, drain the remaining backlog to zero",
    )
    parser.add_argument(
        "--shutdown", action="store_true", help="send shutdown at the end"
    )
    parser.add_argument(
        "--summary-json",
        metavar="FILE",
        help="write the outcome counters + final server stats here",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    script = build_script(
        seed=args.seed,
        flows=args.flows,
        tenants=args.tenants,
        ops=args.ops,
        rate_min_bps=args.rate_min,
        rate_max_bps=args.rate_max,
        size_min=args.size_min,
        size_max=args.size_max,
        cancel_ratio=args.cancel_ratio,
        reschedule_ratio=args.reschedule_ratio,
        drain_ratio=args.drain_ratio,
        drain_batch=args.drain_batch,
    )
    client = ServeClient(
        args.host, args.port, retries=args.connect_retries
    )
    with client:
        counters = run_script(
            client, script, start=args.start, stop=args.stop
        )
        if args.drain_rest:
            while True:
                response = client.drain(4096)
                if not response.get("ok"):
                    break
                counters["served"] += len(response["served"])
                if response["backlog"] == 0:
                    break
        stats = client.stats().get("stats", {})
        if args.shutdown:
            client.shutdown()
    summary = {"counters": counters, "stats": stats}
    if args.summary_json:
        with open(args.summary_json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
    print(json.dumps(counters, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
