"""Event tracers: the real ring-buffer/JSONL tracer and the no-op default.

Two implementations share one duck-typed interface:

* :class:`NullTracer` (singleton :data:`NULL_TRACER`) — the default.
  ``enabled`` is ``False`` and the instrumented components skip their
  probe work entirely, so an untraced run pays nothing.
* :class:`Tracer` — keeps the most recent events in a bounded ring
  buffer (100k-op soaks stay cheap), optionally streams every event to a
  JSONL sink, and maintains running per-structure totals so a trace can
  be reconciled against :meth:`repro.hwsim.stats.StatsRegistry.total`
  without replaying the buffer.

**Attribution invariant.**  Each unit of memory traffic recorded by the
:class:`~repro.hwsim.stats.StatsRegistry` during a traced operation is
attributed to exactly one event: op events carry their own per-structure
deltas, and a span (e.g. a batched fast path) carries only the traffic
its child events did *not* claim.  Consequently
:meth:`Tracer.attributed_totals` equals the registry delta over the
traced window exactly — the acceptance check of the telemetry layer.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Dict, IO, Iterable, List, Optional, Union

from ..hwsim.stats import AccessStats, StatsRegistry
from .events import FOOTER_KIND, SPAN_KIND, TraceEvent


class _NullSpan:
    """Context manager that does nothing (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every probe is a no-op.

    Instrumented components check :attr:`enabled` once at attach time
    and skip instrumentation altogether when it is ``False``, so the
    null tracer's methods exist only for duck-typed callers that do not
    bother checking.
    """

    enabled = False

    def event(self, kind: str, **_kwargs: Any) -> None:
        """Discard the event."""

    def span(self, name: str, **_kwargs: Any) -> _NullSpan:
        """Return a no-op context manager."""
        return _NULL_SPAN

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """Always empty."""
        return []

    @property
    def emitted(self) -> int:
        return 0

    @property
    def dropped(self) -> int:
        return 0

    def attributed_totals(self) -> Dict[str, AccessStats]:
        return {}

    def attributed_totals_by_component(
        self,
    ) -> Dict[str, Dict[str, AccessStats]]:
        return {}

    def ingest(
        self, records: Iterable[Any], *, component: Optional[str] = None
    ) -> List[TraceEvent]:
        """Discard foreign events."""
        return []

    def write_header(self, header: Dict[str, Any]) -> None:
        """Discard the header."""

    def flush(self) -> None:
        """Nothing to flush."""

    def close(self) -> None:
        """Nothing to close."""


#: Shared disabled tracer used as the default everywhere.
NULL_TRACER = NullTracer()


class ComponentTracer:
    """A tracer view that stamps every event with a ``component`` attr.

    The sharded fabric attaches one of these per shard, all sharing a
    single inner :class:`Tracer`: shard-local circuit events keep their
    ordinary kinds and delta structure (so reconciliation, profiling,
    and monitoring work unchanged) but gain ``component="shardN"`` for
    per-shard attribution.  Spans are stamped the same way.  The adapter
    is intentionally thin — buffering, sinks, observers, and attributed
    totals all live on the shared inner tracer.
    """

    __slots__ = ("_inner", "component")

    def __init__(self, inner, component: str) -> None:
        self._inner = inner
        self.component = component

    @property
    def enabled(self) -> bool:
        """Mirrors the inner tracer (a disabled inner disables the view)."""
        return getattr(self._inner, "enabled", False)

    @property
    def inner(self):
        """The shared underlying tracer."""
        return self._inner

    def event(self, kind: str, **kwargs: Any) -> Any:
        """Emit via the inner tracer with the component stamped in."""
        kwargs.setdefault("component", self.component)
        return self._inner.event(kind, **kwargs)

    def span(self, name: str, **kwargs: Any) -> Any:
        """Open a span on the inner tracer with the component stamped in."""
        kwargs.setdefault("component", self.component)
        return self._inner.span(name, **kwargs)

    # Passthroughs for duck-typed callers that treat the view as a full
    # tracer (flush/close are shared-resource operations and therefore
    # deliberately NOT forwarded — the owner of the inner tracer closes it).
    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        return self._inner.events(kind)

    @property
    def emitted(self) -> int:
        return self._inner.emitted

    @property
    def dropped(self) -> int:
        return self._inner.dropped

    def attributed_totals(self) -> Dict[str, AccessStats]:
        return self._inner.attributed_totals()

    def attributed_totals_by_component(
        self,
    ) -> Dict[str, Dict[str, AccessStats]]:
        return self._inner.attributed_totals_by_component()

    def ingest(self, records: Iterable[Any], **kwargs: Any) -> List[TraceEvent]:
        """Ingest foreign events, defaulting them to this view's component."""
        kwargs.setdefault("component", self.component)
        return self._inner.ingest(records, **kwargs)

    def flush(self) -> None:
        """No-op: the inner tracer's owner flushes it."""

    def close(self) -> None:
        """No-op: the inner tracer's owner closes it."""


class _Span:
    """One open span: snapshot on entry, self-delta attribution on exit."""

    __slots__ = ("_tracer", "name", "attrs", "_registry", "_snapshot", "span_id", "_attributed")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        registry: Optional[StatsRegistry],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._registry = registry
        self._snapshot: Optional[Dict[str, AccessStats]] = None
        self.span_id: Optional[int] = None
        #: per-structure traffic already claimed by child events/spans
        self._attributed: Dict[str, AccessStats] = {}

    def _absorb(self, deltas: Dict[str, AccessStats]) -> None:
        for name, delta in deltas.items():
            slot = self._attributed.get(name)
            if slot is None:
                self._attributed[name] = delta.snapshot()
            else:
                slot.reads += delta.reads
                slot.writes += delta.writes

    def __enter__(self) -> "_Span":
        self.span_id = self._tracer._open_span(self)
        if self._registry is not None:
            self._snapshot = self._registry.snapshot_all()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        window: Dict[str, AccessStats] = {}
        if self._registry is not None and self._snapshot is not None:
            window = self._registry.deltas_since(self._snapshot)
        self_deltas: Dict[str, AccessStats] = {}
        for name, delta in window.items():
            claimed = self._attributed.get(name)
            reads = delta.reads - (claimed.reads if claimed else 0)
            writes = delta.writes - (claimed.writes if claimed else 0)
            if reads or writes:
                self_deltas[name] = AccessStats(reads=reads, writes=writes)
        attrs = dict(self.attrs)
        if exc_type is not None:
            attrs["failed"] = True
            attrs["error"] = exc_type.__name__
        # The parent span must see this whole window as claimed; when the
        # span had no registry, propagate whatever the children claimed.
        propagate = window if self._registry is not None else self._attributed
        self._tracer._close_span(self, self_deltas, attrs, propagate)
        return False


class Tracer:
    """Structured event tracer with nested spans and a JSONL sink.

    Args:
        buffer_size: ring-buffer capacity; older events are dropped from
            the in-memory view (the JSONL sink, when set, still received
            them) and counted in :attr:`dropped`.
        sink: a path or an open text file to stream one JSON object per
            event into.  Paths are opened lazily on the first event and
            closed by :meth:`close`.
        observers: callables invoked with every emitted
            :class:`~repro.obs.events.TraceEvent` — the hook streaming
            instruments (histograms, gauges) attach to.
    """

    enabled = True

    def __init__(
        self,
        *,
        buffer_size: int = 65536,
        sink: Optional[Union[str, IO[str]]] = None,
        observers: Iterable[Callable[[TraceEvent], None]] = (),
    ) -> None:
        if buffer_size < 1:
            raise ValueError("buffer_size must be at least 1")
        self._buffer: deque = deque(maxlen=buffer_size)
        self._sink_spec = sink
        self._sink: Optional[IO[str]] = None
        self._owns_sink = False
        self._observers: List[Callable[[TraceEvent], None]] = list(observers)
        #: kind -> observers that only want that kind (kept off the
        #: wildcard loop so narrow observers cost nothing on other
        #: events — the serve auditor never sees an insert)
        self._kind_observers: Dict[
            str, List[Callable[[TraceEvent], None]]
        ] = {}
        self._seq = 0
        self._next_span_id = 0
        self._stack: List[_Span] = []
        self._totals: Dict[str, AccessStats] = {}
        #: component attr -> per-structure totals (events without a
        #: component stamp do not appear here)
        self._component_totals: Dict[str, Dict[str, AccessStats]] = {}
        self._header: Optional[Dict[str, Any]] = None
        self._footer_written = False

    # ------------------------------------------------------------------
    # emission

    def add_observer(
        self,
        observer: Callable[[TraceEvent], None],
        *,
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        """Attach a streaming observer (called once per emitted event).

        ``kinds`` restricts delivery to those event kinds: the observer
        is never invoked for anything else, which keeps narrow
        observers off the hot path entirely (an observer call costs
        more than the dispatch check it replaces).
        """
        if kinds is None:
            self._observers.append(observer)
            return
        for kind in kinds:
            self._kind_observers.setdefault(kind, []).append(observer)

    def event(
        self,
        kind: str,
        *,
        name: Optional[str] = None,
        deltas: Optional[Dict[str, AccessStats]] = None,
        **attrs: Any,
    ) -> TraceEvent:
        """Emit one event, attributing ``deltas`` to it."""
        deltas = deltas or {}
        if deltas and self._stack:
            self._stack[-1]._absorb(deltas)
        return self._emit(
            TraceEvent(
                seq=self._seq,
                kind=kind,
                name=name if name is not None else kind,
                span_id=self._stack[-1].span_id if self._stack else None,
                deltas=deltas,
                attrs=attrs,
            )
        )

    def span(
        self,
        name: str,
        *,
        registry: Optional[StatsRegistry] = None,
        **attrs: Any,
    ) -> _Span:
        """Open a nested span (use as a context manager).

        With a ``registry``, the span snapshots it on entry and, on
        exit, emits a :data:`~repro.obs.events.SPAN_KIND` event carrying
        the window's per-structure deltas minus whatever child events
        already claimed.
        """
        return _Span(self, name, registry, attrs)

    def _open_span(self, span: _Span) -> int:
        span_id = self._next_span_id
        self._next_span_id += 1
        self._stack.append(span)
        return span_id

    def _close_span(
        self,
        span: _Span,
        self_deltas: Dict[str, AccessStats],
        attrs: Dict[str, Any],
        propagate: Dict[str, AccessStats],
    ) -> None:
        popped = self._stack.pop()
        if popped is not span:  # pragma: no cover - misuse guard
            raise RuntimeError("span exited out of order")
        parent_id = self._stack[-1].span_id if self._stack else None
        if propagate and self._stack:
            self._stack[-1]._absorb(propagate)
        # The close event's span_id points at the *parent* (nesting), so
        # record the span's own id in attrs for analyses that must map
        # child events (matching span_id) back to their enclosing span.
        attrs["span"] = span.span_id
        self._emit(
            TraceEvent(
                seq=self._seq,
                kind=SPAN_KIND,
                name=span.name,
                span_id=parent_id,
                deltas=self_deltas,
                attrs=attrs,
            )
        )

    def _emit(self, event: TraceEvent) -> TraceEvent:
        self._seq += 1
        component = event.attrs.get("component")
        by_component = (
            self._component_totals.setdefault(str(component), {})
            if component is not None and event.deltas
            else None
        )
        for name, delta in event.deltas.items():
            slot = self._totals.get(name)
            if slot is None:
                self._totals[name] = delta.snapshot()
            else:
                slot.reads += delta.reads
                slot.writes += delta.writes
            if by_component is not None:
                slot = by_component.get(name)
                if slot is None:
                    by_component[name] = delta.snapshot()
                else:
                    slot.reads += delta.reads
                    slot.writes += delta.writes
        self._buffer.append(event)
        if self._sink_spec is not None:
            self._sink_write(event)
        for observer in self._observers:
            observer(event)
        if self._kind_observers:
            for observer in self._kind_observers.get(event.kind, ()):
                observer(event)
        return event

    # ------------------------------------------------------------------
    # cross-process ingestion

    def _mapped_span(self, span_map: Dict[int, int], old: Optional[int]) -> Optional[int]:
        """Resolve a foreign span id into this tracer's id space."""
        if old is None:
            return None
        fresh = span_map.get(old)
        if fresh is None:
            fresh = span_map[old] = self._next_span_id
            self._next_span_id += 1
        return fresh

    def ingest(
        self,
        records: Iterable[Any],
        *,
        component: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Re-emit serialized foreign events as native ones.

        Worker processes trace into a private ring and ship
        ``event.to_dict()`` records home (see
        :mod:`repro.fabric.workers`); those carry the worker tracer's
        seq/span ids.  Each record is re-emitted here with a fresh seq,
        its span ids remapped into this tracer's id space (children can
        arrive before their span-close event — ids are allocated on
        first sight), and ``component`` stamped in when the record has
        none.  Foreign top-level events are parented under the currently
        open span, and their deltas are absorbed by it, so the merged
        trace reconciles exactly as if the events had been emitted in
        process.
        """
        span_map: Dict[int, int] = {}
        ingested: List[TraceEvent] = []
        for record in records:
            event = (
                TraceEvent.from_dict(record)
                if isinstance(record, dict)
                else record
            )
            attrs = dict(event.attrs)
            if component is not None:
                attrs.setdefault("component", component)
            if attrs.get("span") is not None:
                attrs["span"] = self._mapped_span(span_map, attrs["span"])
            if event.span_id is not None:
                span_id = self._mapped_span(span_map, event.span_id)
            else:
                span_id = self._stack[-1].span_id if self._stack else None
            if event.deltas and self._stack:
                self._stack[-1]._absorb(event.deltas)
            ingested.append(
                self._emit(
                    TraceEvent(
                        seq=self._seq,
                        kind=event.kind,
                        name=event.name,
                        span_id=span_id,
                        deltas=event.deltas,
                        attrs=attrs,
                    )
                )
            )
        return ingested

    # ------------------------------------------------------------------
    # sink management

    def _ensure_sink(self) -> Optional[IO[str]]:
        if self._sink is None and self._sink_spec is not None:
            if hasattr(self._sink_spec, "write"):
                self._sink = self._sink_spec  # type: ignore[assignment]
            else:
                self._sink = open(self._sink_spec, "w", encoding="utf-8")
                self._owns_sink = True
        return self._sink

    def _sink_write(self, event: TraceEvent) -> None:
        sink = self._ensure_sink()
        if sink is not None:
            sink.write(json.dumps(event.to_dict(), sort_keys=False) + "\n")

    def write_header(self, header: Dict[str, Any]) -> None:
        """Record the trace header and stream it as the sink's first line.

        Build the record with
        :func:`repro.obs.events.build_trace_header`.  Must be called
        before the first event reaches the sink; setting a header also
        arms the matching ``trace_footer`` record (emitted/dropped
        totals), written when the tracer is closed.
        """
        if self._seq:
            raise RuntimeError("write_header must precede the first event")
        self._header = dict(header)
        sink = self._ensure_sink()
        if sink is not None:
            sink.write(json.dumps(self._header, sort_keys=False) + "\n")

    @property
    def header(self) -> Optional[Dict[str, Any]]:
        """The trace header set via :meth:`write_header`, if any."""
        return dict(self._header) if self._header is not None else None

    def flush(self) -> None:
        """Flush the JSONL sink, if open."""
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Write the footer (headered traces), then close an owned sink."""
        if (
            self._header is not None
            and not self._footer_written
            and self._sink is not None
        ):
            footer = {
                "kind": FOOTER_KIND,
                "emitted": self._seq,
                "dropped": self.dropped,
            }
            self._sink.write(json.dumps(footer, sort_keys=False) + "\n")
            self._footer_written = True
        if self._sink is not None and self._owns_sink:
            self._sink.close()
        self._sink = None
        self._owns_sink = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # inspection

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """Buffered events (most recent ``buffer_size``), oldest first."""
        if kind is None:
            return list(self._buffer)
        return [event for event in self._buffer if event.kind == kind]

    @property
    def emitted(self) -> int:
        """Events emitted over the tracer's lifetime."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer (sink still saw them)."""
        return self._seq - len(self._buffer)

    @property
    def open_spans(self) -> int:
        """Currently nested spans (0 when quiescent)."""
        return len(self._stack)

    def attributed_totals(self) -> Dict[str, AccessStats]:
        """Per-structure traffic summed over *every* emitted event.

        Maintained incrementally, so it is exact even after ring-buffer
        eviction.  Over a window where all registry traffic happened
        inside traced operations, this equals
        ``registry.deltas_since(<window start>)`` structure for
        structure.
        """
        return {name: stats.snapshot() for name, stats in self._totals.items()}

    def attributed_grand_total(self) -> AccessStats:
        """Summed reads/writes over every emitted event."""
        combined = AccessStats()
        for stats in self._totals.values():
            combined.reads += stats.reads
            combined.writes += stats.writes
        return combined

    def attributed_totals_by_component(
        self,
    ) -> Dict[str, Dict[str, AccessStats]]:
        """Per-structure traffic split by each event's ``component`` attr.

        Only events stamped with a component (shard views, ingested
        worker events) contribute; the unstamped remainder is
        :meth:`attributed_totals` minus the sum of these.  Maintained
        incrementally like the grand totals, so exact under ring
        eviction.
        """
        return {
            component: {
                name: stats.snapshot() for name, stats in totals.items()
            }
            for component, totals in self._component_totals.items()
        }
