"""Streaming instruments: histograms, gauges, counters.

The paper argues in *worst cases* (Table I); debugging a reproduction
needs *distributions*.  :class:`Histogram` keeps an HDR-style
log-bucketed sketch — constant memory, bounded relative error — so a
100k-op soak can report p50/p99/max access counts, occupancies, and
queue depths without storing per-op samples.  :class:`Gauge` tracks a
level (occupancy, backlog) with running min/max; :class:`Counter` is a
monotone total.

:class:`InstrumentSet` is the named registry the exporters consume
(:func:`repro.obs.exporters.prometheus_snapshot`).  Every instrument
name is a *family* that may hold one unlabeled series plus any number of
labeled series (``counter("events_insert", labels={"shard": "3"})``),
the Prometheus data model: the sharded fabric records each sample twice
— once unlabeled (the fleet aggregate) and once under its shard's label
— so labeled series sum exactly to the aggregate by construction.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: A canonical, hashable label set: sorted (name, value) pairs.  The
#: empty tuple is the unlabeled series of a family.
LabelKey = Tuple[Tuple[str, str], ...]

#: The Prometheus label-name grammar (label values are free-form UTF-8
#: and get escaped at exposition time instead).
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def label_key(labels: Optional[Mapping[str, object]]) -> LabelKey:
    """Canonicalize a label mapping into a hashable, sorted key.

    Label *names* must match the Prometheus grammar and may not start
    with ``__`` (reserved); *values* are coerced to strings and may hold
    anything — the exposition renderer escapes them.
    """
    if not labels:
        return ()
    key: List[Tuple[str, str]] = []
    for name in sorted(labels):
        if not isinstance(name, str) or not _LABEL_NAME_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
        if name.startswith("__"):
            raise ValueError(f"label name {name!r} is reserved (__ prefix)")
        key.append((name, str(labels[name])))
    return tuple(key)


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition grammar.

    Backslash, double quote, and newline are the three characters the
    Prometheus text format requires escaping inside label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_label_key(key: LabelKey) -> str:
    """``{a="x",b="y"}`` rendering of a label key (``""`` if empty)."""
    if not key:
        return ""
    body = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in key
    )
    return "{" + body + "}"


class Histogram:
    """Fixed-memory histogram of non-negative values with bounded error.

    Values below ``2**subbucket_bits`` are recorded exactly; larger
    values land in power-of-two ranges split into ``2**subbucket_bits``
    linear sub-buckets, so any recorded quantile differs from the true
    sample quantile by at most a factor of ``2**-subbucket_bits``
    (3.125% at the default 5 bits).

    Non-integer values are scaled by ``scale`` and rounded, letting the
    same sketch hold e.g. quanta-valued clamp errors; reported
    statistics are scaled back.
    """

    def __init__(self, *, subbucket_bits: int = 5, scale: float = 1.0) -> None:
        if not 1 <= subbucket_bits <= 16:
            raise ValueError("subbucket_bits must be in [1, 16]")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self._sub_bits = subbucket_bits
        self._sub_count = 1 << subbucket_bits
        self._scale = scale
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self._sum = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    # ------------------------------------------------------------------
    # recording

    def _index(self, value: int) -> int:
        if value < self._sub_count:
            return value
        exp = value.bit_length() - self._sub_bits - 1
        mantissa = value >> exp
        return ((exp + 1) << self._sub_bits) + (mantissa - self._sub_count)

    def _bucket_high(self, index: int) -> int:
        """Largest raw value mapping to ``index`` (the reported bound)."""
        if index < self._sub_count:
            return index
        exp = (index >> self._sub_bits) - 1
        mantissa = (index & (self._sub_count - 1)) + self._sub_count
        return ((mantissa + 1) << exp) - 1

    def _bucket_low(self, index: int) -> int:
        """Smallest raw value mapping to ``index``."""
        if index < self._sub_count:
            return index
        exp = (index >> self._sub_bits) - 1
        mantissa = (index & (self._sub_count - 1)) + self._sub_count
        return mantissa << exp

    def record(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` times)."""
        if count <= 0:
            raise ValueError("count must be positive")
        raw = int(round(value * self._scale))
        if raw < 0:
            raise ValueError(f"histogram values must be non-negative, got {value}")
        index = self._index(raw)
        self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += count
        self._sum += raw * count
        if self._min is None or raw < self._min:
            self._min = raw
        if self._max is None or raw > self._max:
            self._max = raw

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same shape) into this one."""
        if (other._sub_bits, other._scale) != (self._sub_bits, self._scale):
            raise ValueError("histogram shapes differ; cannot merge")
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self._sum += other._sum
        for theirs in (other._min,):
            if theirs is not None and (self._min is None or theirs < self._min):
                self._min = theirs
        for theirs in (other._max,):
            if theirs is not None and (self._max is None or theirs > self._max):
                self._max = theirs

    def snapshot(self) -> "Histogram":
        """An independent copy (same shape) for later delta computation.

        Safe to call from a collector thread while the owning thread
        keeps recording: the bucket dict is copied in one pass and a
        concurrent resize simply surfaces as a retryable
        :class:`RuntimeError` (the windowed collector skips that tick).
        """
        clone = Histogram(subbucket_bits=self._sub_bits, scale=self._scale)
        clone._buckets = dict(self._buckets)
        clone.count = self.count
        clone._sum = self._sum
        clone._min = self._min
        clone._max = self._max
        return clone

    def delta_since(self, earlier: "Histogram") -> "Histogram":
        """The histogram of values recorded *after* ``earlier``.

        ``earlier`` must be a previous :meth:`snapshot` of this
        histogram (same shape, subset counts).  The delta's bucket
        counts are exact; its min/max are the covering bucket bounds of
        the delta mass (within the sketch's relative-error contract),
        which is what windowed percentile rollups need.
        """
        if (earlier._sub_bits, earlier._scale) != (
            self._sub_bits,
            self._scale,
        ):
            raise ValueError("histogram shapes differ; cannot diff")
        delta = Histogram(subbucket_bits=self._sub_bits, scale=self._scale)
        buckets: Dict[int, int] = {}
        for index, count in list(self._buckets.items()):
            grown = count - earlier._buckets.get(index, 0)
            if grown > 0:
                buckets[index] = grown
        delta._buckets = buckets
        delta.count = sum(buckets.values())
        delta._sum = max(0, self._sum - earlier._sum)
        if buckets:
            delta._min = self._bucket_low(min(buckets))
            delta._max = self._bucket_high(max(buckets))
            if self._max is not None and delta._max > self._max:
                delta._max = self._max
        return delta

    # ------------------------------------------------------------------
    # statistics

    @property
    def min(self) -> float:
        return (self._min or 0) / self._scale

    @property
    def max(self) -> float:
        return (self._max or 0) / self._scale

    @property
    def mean(self) -> float:
        if not self.count:
            return 0.0
        return self._sum / self.count / self._scale

    def percentile(self, q: float) -> float:
        """The q-th percentile (0 < q <= 100), nearest-rank.

        Returns the recorded bucket's upper bound (exact for values
        below the linear range; within the relative-error bound above
        it), clamped to the true observed maximum.
        """
        if not 0 < q <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if not self.count:
            return 0.0
        rank = max(1, -(-int(q * self.count) // 100))  # ceil(q/100 * count)
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                high = min(self._bucket_high(index), self._max or 0)
                return high / self._scale
        return self.max  # pragma: no cover - rank <= count always hits

    def summary(self) -> Dict[str, float]:
        """JSON-ready {count, min, mean, p50, p90, p99, max}."""
        return {
            "count": self.count,
            "min": self.min,
            "mean": round(self.mean, 4),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def buckets(self) -> Iterator[Tuple[float, int]]:
        """(upper_bound, count) pairs in ascending order (sparse)."""
        for index in sorted(self._buckets):
            yield self._bucket_high(index) / self._scale, self._buckets[index]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs — Prometheus ``le`` form."""
        out: List[Tuple[float, int]] = []
        seen = 0
        for bound, count in self.buckets():
            seen += count
            out.append((bound, seen))
        return out

    @property
    def sum(self) -> float:
        """Sum of recorded values (scaled back)."""
        return self._sum / self._scale

    def to_state(self) -> Dict[str, object]:
        """Exact JSON-serializable snapshot (sparse buckets included)."""
        return {
            "subbucket_bits": self._sub_bits,
            "scale": self._scale,
            "buckets": sorted(self._buckets.items()),
            "count": self.count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "Histogram":
        """Rebuild a histogram from :meth:`to_state` (bucket-exact)."""
        hist = cls(
            subbucket_bits=int(state["subbucket_bits"]),
            scale=float(state["scale"]),
        )
        hist._buckets = {
            int(index): int(count) for index, count in state["buckets"]
        }
        hist.count = int(state["count"])
        hist._sum = int(state["sum"])
        hist._min = None if state["min"] is None else int(state["min"])
        hist._max = None if state["max"] is None else int(state["max"])
        return hist


class Gauge:
    """A level with running min/max (occupancy, backlog, span depth)."""

    def __init__(self, initial: float = 0.0) -> None:
        self.value = initial
        self.min = initial
        self.max = initial
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.updates += 1

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def summary(self) -> Dict[str, float]:
        return {
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "updates": self.updates,
        }

    def snapshot(self) -> "Gauge":
        """An independent copy (level plus running extremes)."""
        clone = Gauge(self.value)
        clone.min = self.min
        clone.max = self.max
        clone.updates = self.updates
        return clone

    def to_state(self) -> Dict[str, float]:
        return {
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "updates": self.updates,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, float]) -> "Gauge":
        gauge = cls(state["value"])
        gauge.min = state["min"]
        gauge.max = state["max"]
        gauge.updates = int(state["updates"])
        return gauge

    def merge(self, other: "Gauge") -> None:
        """Fold a disjoint source's level into this one.

        Levels from disjoint sources (per-shard occupancies) *add*; the
        running extremes keep a conservative envelope (min of mins, max
        of the summed maxima would overstate — we keep max of maxes,
        which is exact when sources never overlap in time and an
        underestimate otherwise, documented as such).
        """
        self.value += other.value
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.updates += other.updates


class Counter:
    """A monotone total."""

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> "Counter":
        """An independent copy."""
        clone = Counter()
        clone.value = self.value
        return clone

    def merge(self, other: "Counter") -> None:
        """Fold another counter's total into this one (exact sum)."""
        self.value += other.value

    def delta_since(self, earlier: "Counter") -> "Counter":
        """A counter holding the growth since ``earlier`` (clamped >= 0)."""
        delta = Counter()
        delta.value = max(0, self.value - earlier.value)
        return delta

    def to_state(self) -> Dict[str, int]:
        return {"value": self.value}

    @classmethod
    def from_state(cls, state: Mapping[str, int]) -> "Counter":
        counter = cls()
        counter.value = int(state["value"])
        return counter


class InstrumentSet:
    """Named instrument families, get-or-create style, for the exporters.

    ``hist("x").record(...)`` either reuses the existing histogram
    ``x`` or creates it; same for :meth:`gauge` and :meth:`counter`.
    Names are export identifiers (Prometheus metric names), so keep
    them ``snake_case``.

    Each name is a *family*: passing ``labels={"shard": "3"}`` addresses
    an independent labeled series under the same name, with one shared
    kind per family (a name cannot be a labeled gauge and an unlabeled
    counter).  The no-``labels`` API is exactly the pre-label behavior —
    :meth:`items`, :meth:`__contains__`, and :meth:`__getitem__` see
    only the unlabeled series, so aggregate consumers never double
    count; label-aware consumers iterate :meth:`families` or
    :meth:`series`.
    """

    def __init__(self) -> None:
        #: family name -> label key -> instrument ((), the empty key,
        #: is the unlabeled series)
        self._families: Dict[str, Dict[LabelKey, object]] = {}
        #: family name -> instrument class (kind consistency across
        #: every series of the family, labeled or not)
        self._kinds: Dict[str, type] = {}
        #: set once a labeled series exists; lets per-tick consumers
        #: (the live collector) skip whole-registry label scans on
        #: unsharded runs with an O(1) check
        self._has_labeled = False

    def _get(
        self,
        name: str,
        kind: type,
        factory,
        labels: Optional[Mapping[str, object]],
    ) -> object:
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
        elif known is not kind:
            raise TypeError(
                f"instrument {name!r} is a {known.__name__}, "
                f"not a {kind.__name__}"
            )
        if labels is None:
            key: LabelKey = ()
        else:
            key = label_key(labels)
            if key:
                self._has_labeled = True
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = {}
        instrument = family.get(key)
        if instrument is None:
            instrument = family[key] = factory()
        return instrument

    def hist(
        self,
        name: str,
        *,
        labels: Optional[Mapping[str, object]] = None,
        **kwargs,
    ) -> Histogram:
        if labels and "le" in labels:
            raise ValueError(
                "'le' is reserved for histogram bucket bounds"
            )
        return self._get(name, Histogram, lambda: Histogram(**kwargs), labels)

    def gauge(
        self, name: str, *, labels: Optional[Mapping[str, object]] = None
    ) -> Gauge:
        return self._get(name, Gauge, Gauge, labels)

    def counter(
        self, name: str, *, labels: Optional[Mapping[str, object]] = None
    ) -> Counter:
        return self._get(name, Counter, Counter, labels)

    def names(self) -> List[str]:
        """Sorted family names (labeled-only families included)."""
        return sorted(self._families)

    def __contains__(self, name: str) -> bool:
        family = self._families.get(name)
        return bool(family) and () in family

    def __getitem__(self, name: str) -> object:
        return self._families[name][()]

    def items(self) -> Sequence[Tuple[str, object]]:
        """Sorted ``(name, instrument)`` pairs — *unlabeled series only*.

        This is the aggregate view every pre-label consumer reads;
        labeled series live alongside and never show up here.
        """
        return sorted(
            (name, family[()])
            for name, family in self._families.items()
            if () in family
        )

    def series(self, name: str) -> Dict[LabelKey, object]:
        """Every series of one family, keyed by canonical label key."""
        return dict(self._families.get(name, {}))

    def families(self) -> List[Tuple[str, Dict[LabelKey, object]]]:
        """Sorted ``(name, {label_key: instrument})`` over all families."""
        return sorted(
            (name, dict(family)) for name, family in self._families.items()
        )

    def kind_of(self, name: str) -> Optional[type]:
        """The instrument class of a family (None if unknown)."""
        return self._kinds.get(name)

    @property
    def has_labeled_series(self) -> bool:
        """True once any labeled series has been registered."""
        return self._has_labeled

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready summary of every series.

        Unlabeled series keep their bare family name as the key;
        labeled series render as ``name{a="b"}`` (exposition-style,
        escaped), so the JSON snapshot of a sharded run reads like its
        scrape.
        """
        out: Dict[str, Dict[str, float]] = {}
        for name, family in sorted(self._families.items()):
            for key in sorted(family):
                instrument = family[key]
                label = f"{name}{render_label_key(key)}"
                if isinstance(instrument, (Histogram, Gauge)):
                    out[label] = instrument.summary()
                elif isinstance(instrument, Counter):
                    out[label] = {"value": instrument.value}
        return out

    # ------------------------------------------------------------------
    # label-aware merge / snapshot / delta

    def merge(self, other: "InstrumentSet") -> None:
        """Fold another set into this one, series by series.

        Label-aware and exact for counters (sums) and histograms
        (bucket-exact merges); gauges add levels with a conservative
        extreme envelope (see :meth:`Gauge.merge`).  This is the
        aggregation step for telemetry shipped home from worker
        processes or sibling shards.
        """
        for name, family in other._families.items():
            kind = other._kinds[name]
            for key, theirs in family.items():
                if kind is Histogram:
                    mine = self._get(
                        name,
                        Histogram,
                        lambda h=theirs: Histogram(
                            subbucket_bits=h._sub_bits, scale=h._scale
                        ),
                        dict(key),
                    )
                    mine.merge(theirs)
                elif kind is Gauge:
                    self._get(name, Gauge, Gauge, dict(key)).merge(theirs)
                else:
                    self._get(name, Counter, Counter, dict(key)).merge(
                        theirs
                    )

    def snapshot(self) -> "InstrumentSet":
        """An independent copy of every series (same family layout)."""
        clone = InstrumentSet()
        clone._has_labeled = self._has_labeled
        for name, family in self._families.items():
            clone._kinds[name] = self._kinds[name]
            clone._families[name] = {
                key: instrument.snapshot()
                for key, instrument in family.items()
            }
        return clone

    def deltas_since(self, earlier: "InstrumentSet") -> "InstrumentSet":
        """Growth since an earlier :meth:`snapshot`, series by series.

        Counters and histograms diff exactly (missing-in-earlier series
        count from zero); gauges are levels, so the delta carries the
        *current* gauge unchanged.
        """
        delta = InstrumentSet()
        delta._has_labeled = self._has_labeled
        for name, family in self._families.items():
            kind = self._kinds[name]
            earlier_family = earlier._families.get(name, {})
            delta._kinds[name] = kind
            slot: Dict[LabelKey, object] = {}
            for key, instrument in family.items():
                before = earlier_family.get(key)
                if before is None:
                    slot[key] = instrument.snapshot()
                elif kind is Gauge:
                    slot[key] = instrument.snapshot()
                else:
                    slot[key] = instrument.delta_since(before)
            delta._families[name] = slot
        return delta
