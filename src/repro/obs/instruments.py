"""Streaming instruments: histograms, gauges, counters.

The paper argues in *worst cases* (Table I); debugging a reproduction
needs *distributions*.  :class:`Histogram` keeps an HDR-style
log-bucketed sketch — constant memory, bounded relative error — so a
100k-op soak can report p50/p99/max access counts, occupancies, and
queue depths without storing per-op samples.  :class:`Gauge` tracks a
level (occupancy, backlog) with running min/max; :class:`Counter` is a
monotone total.

:class:`InstrumentSet` is the named registry the exporters consume
(:func:`repro.obs.exporters.prometheus_snapshot`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class Histogram:
    """Fixed-memory histogram of non-negative values with bounded error.

    Values below ``2**subbucket_bits`` are recorded exactly; larger
    values land in power-of-two ranges split into ``2**subbucket_bits``
    linear sub-buckets, so any recorded quantile differs from the true
    sample quantile by at most a factor of ``2**-subbucket_bits``
    (3.125% at the default 5 bits).

    Non-integer values are scaled by ``scale`` and rounded, letting the
    same sketch hold e.g. quanta-valued clamp errors; reported
    statistics are scaled back.
    """

    def __init__(self, *, subbucket_bits: int = 5, scale: float = 1.0) -> None:
        if not 1 <= subbucket_bits <= 16:
            raise ValueError("subbucket_bits must be in [1, 16]")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self._sub_bits = subbucket_bits
        self._sub_count = 1 << subbucket_bits
        self._scale = scale
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self._sum = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    # ------------------------------------------------------------------
    # recording

    def _index(self, value: int) -> int:
        if value < self._sub_count:
            return value
        exp = value.bit_length() - self._sub_bits - 1
        mantissa = value >> exp
        return ((exp + 1) << self._sub_bits) + (mantissa - self._sub_count)

    def _bucket_high(self, index: int) -> int:
        """Largest raw value mapping to ``index`` (the reported bound)."""
        if index < self._sub_count:
            return index
        exp = (index >> self._sub_bits) - 1
        mantissa = (index & (self._sub_count - 1)) + self._sub_count
        return ((mantissa + 1) << exp) - 1

    def _bucket_low(self, index: int) -> int:
        """Smallest raw value mapping to ``index``."""
        if index < self._sub_count:
            return index
        exp = (index >> self._sub_bits) - 1
        mantissa = (index & (self._sub_count - 1)) + self._sub_count
        return mantissa << exp

    def record(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` times)."""
        if count <= 0:
            raise ValueError("count must be positive")
        raw = int(round(value * self._scale))
        if raw < 0:
            raise ValueError(f"histogram values must be non-negative, got {value}")
        index = self._index(raw)
        self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += count
        self._sum += raw * count
        if self._min is None or raw < self._min:
            self._min = raw
        if self._max is None or raw > self._max:
            self._max = raw

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same shape) into this one."""
        if (other._sub_bits, other._scale) != (self._sub_bits, self._scale):
            raise ValueError("histogram shapes differ; cannot merge")
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self._sum += other._sum
        for theirs in (other._min,):
            if theirs is not None and (self._min is None or theirs < self._min):
                self._min = theirs
        for theirs in (other._max,):
            if theirs is not None and (self._max is None or theirs > self._max):
                self._max = theirs

    def snapshot(self) -> "Histogram":
        """An independent copy (same shape) for later delta computation.

        Safe to call from a collector thread while the owning thread
        keeps recording: the bucket dict is copied in one pass and a
        concurrent resize simply surfaces as a retryable
        :class:`RuntimeError` (the windowed collector skips that tick).
        """
        clone = Histogram(subbucket_bits=self._sub_bits, scale=self._scale)
        clone._buckets = dict(self._buckets)
        clone.count = self.count
        clone._sum = self._sum
        clone._min = self._min
        clone._max = self._max
        return clone

    def delta_since(self, earlier: "Histogram") -> "Histogram":
        """The histogram of values recorded *after* ``earlier``.

        ``earlier`` must be a previous :meth:`snapshot` of this
        histogram (same shape, subset counts).  The delta's bucket
        counts are exact; its min/max are the covering bucket bounds of
        the delta mass (within the sketch's relative-error contract),
        which is what windowed percentile rollups need.
        """
        if (earlier._sub_bits, earlier._scale) != (
            self._sub_bits,
            self._scale,
        ):
            raise ValueError("histogram shapes differ; cannot diff")
        delta = Histogram(subbucket_bits=self._sub_bits, scale=self._scale)
        buckets: Dict[int, int] = {}
        for index, count in list(self._buckets.items()):
            grown = count - earlier._buckets.get(index, 0)
            if grown > 0:
                buckets[index] = grown
        delta._buckets = buckets
        delta.count = sum(buckets.values())
        delta._sum = max(0, self._sum - earlier._sum)
        if buckets:
            delta._min = self._bucket_low(min(buckets))
            delta._max = self._bucket_high(max(buckets))
            if self._max is not None and delta._max > self._max:
                delta._max = self._max
        return delta

    # ------------------------------------------------------------------
    # statistics

    @property
    def min(self) -> float:
        return (self._min or 0) / self._scale

    @property
    def max(self) -> float:
        return (self._max or 0) / self._scale

    @property
    def mean(self) -> float:
        if not self.count:
            return 0.0
        return self._sum / self.count / self._scale

    def percentile(self, q: float) -> float:
        """The q-th percentile (0 < q <= 100), nearest-rank.

        Returns the recorded bucket's upper bound (exact for values
        below the linear range; within the relative-error bound above
        it), clamped to the true observed maximum.
        """
        if not 0 < q <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if not self.count:
            return 0.0
        rank = max(1, -(-int(q * self.count) // 100))  # ceil(q/100 * count)
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                high = min(self._bucket_high(index), self._max or 0)
                return high / self._scale
        return self.max  # pragma: no cover - rank <= count always hits

    def summary(self) -> Dict[str, float]:
        """JSON-ready {count, min, mean, p50, p90, p99, max}."""
        return {
            "count": self.count,
            "min": self.min,
            "mean": round(self.mean, 4),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def buckets(self) -> Iterator[Tuple[float, int]]:
        """(upper_bound, count) pairs in ascending order (sparse)."""
        for index in sorted(self._buckets):
            yield self._bucket_high(index) / self._scale, self._buckets[index]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs — Prometheus ``le`` form."""
        out: List[Tuple[float, int]] = []
        seen = 0
        for bound, count in self.buckets():
            seen += count
            out.append((bound, seen))
        return out

    @property
    def sum(self) -> float:
        """Sum of recorded values (scaled back)."""
        return self._sum / self._scale


class Gauge:
    """A level with running min/max (occupancy, backlog, span depth)."""

    def __init__(self, initial: float = 0.0) -> None:
        self.value = initial
        self.min = initial
        self.max = initial
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.updates += 1

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def summary(self) -> Dict[str, float]:
        return {
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "updates": self.updates,
        }


class Counter:
    """A monotone total."""

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class InstrumentSet:
    """Named instruments, get-or-create style, for the exporters.

    ``hist("x").record(...)`` either reuses the existing histogram
    ``x`` or creates it; same for :meth:`gauge` and :meth:`counter`.
    Names are export identifiers (Prometheus metric names), so keep
    them ``snake_case``.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind: type, factory) -> object:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"instrument {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def hist(self, name: str, **kwargs) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(**kwargs))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __getitem__(self, name: str) -> object:
        return self._instruments[name]

    def items(self) -> Sequence[Tuple[str, object]]:
        return sorted(self._instruments.items())

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready summary of every instrument."""
        out: Dict[str, Dict[str, float]] = {}
        for name, instrument in self.items():
            if isinstance(instrument, (Histogram, Gauge)):
                out[name] = instrument.summary()
            elif isinstance(instrument, Counter):
                out[name] = {"value": instrument.value}
        return out
