"""Opt-in telemetry: structured tracing, instruments, exporters.

The software equivalent of logic-analyzer probes on the paper's circuit:

* :mod:`repro.obs.events` — the structured event schema;
* :mod:`repro.obs.tracer` — :class:`Tracer` (ring buffer + JSONL sink +
  per-structure delta attribution) and the zero-cost
  :data:`NULL_TRACER` default;
* :mod:`repro.obs.instruments` — streaming :class:`Histogram` /
  :class:`Gauge` / :class:`Counter` and the :class:`InstrumentSet`
  registry;
* :mod:`repro.obs.exporters` — JSONL, Prometheus-style text, and the
  human-readable run report;
* :mod:`repro.obs.probes` — observers wiring op events into standard
  instruments;
* :mod:`repro.obs.runner` — the traced-soak driver behind
  ``python -m repro obs`` (imported lazily by the CLI; not re-exported
  here to keep this package importable from :mod:`repro.core`).

Attach a tracer with
:meth:`repro.core.sort_retrieve.TagSortRetrieveCircuit.attach_tracer`
or by passing ``tracer=`` to the circuit, the
:class:`~repro.net.hardware_store.HardwareTagStore`, or the
:class:`~repro.net.scheduler_system.HardwareWFQSystem`.
"""

from .events import MAINTENANCE_KINDS, OP_KINDS, SPAN_KIND, TraceEvent
from .exporters import (
    prometheus_snapshot,
    read_jsonl,
    run_report,
    write_jsonl,
)
from .instruments import Counter, Gauge, Histogram, InstrumentSet
from .probes import StandardProbes
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentSet",
    "MAINTENANCE_KINDS",
    "NULL_TRACER",
    "NullTracer",
    "OP_KINDS",
    "SPAN_KIND",
    "StandardProbes",
    "TraceEvent",
    "Tracer",
    "prometheus_snapshot",
    "read_jsonl",
    "run_report",
    "write_jsonl",
]
