"""Opt-in telemetry: structured tracing, instruments, exporters.

The software equivalent of logic-analyzer probes on the paper's circuit:

* :mod:`repro.obs.events` — the structured event schema;
* :mod:`repro.obs.tracer` — :class:`Tracer` (ring buffer + JSONL sink +
  per-structure delta attribution) and the zero-cost
  :data:`NULL_TRACER` default;
* :mod:`repro.obs.instruments` — streaming :class:`Histogram` /
  :class:`Gauge` / :class:`Counter` and the :class:`InstrumentSet`
  registry;
* :mod:`repro.obs.exporters` — JSONL, Prometheus-style text, and the
  human-readable run report;
* :mod:`repro.obs.probes` — observers wiring op events into standard
  instruments;
* :mod:`repro.obs.monitors` — online invariant monitors verifying the
  paper's guarantees against the live event stream;
* :mod:`repro.obs.profiler` — cost-attribution rollups and worst-case
  forensics over span-attributed deltas;
* :mod:`repro.obs.diff` — differential trace analysis (logical-op
  alignment, first divergence, per-kind cost deltas);
* :mod:`repro.obs.timeline` — Chrome trace-event (Perfetto) export;
* :mod:`repro.obs.live` — the live observability plane: the
  :class:`MetricsServer` (``/metrics`` ``/health`` ``/snapshot`` from a
  running soak), the windowed collector, and the :class:`LivePlane`
  bundle the runners attach;
* :mod:`repro.obs.slo` — online fairness/SLO auditing: the streaming
  :class:`FairnessAuditor` over the incremental GPS core, the shared
  :class:`RankInversionCounter`, and :class:`SloRule` burn accounting;
* :mod:`repro.obs.flight` — the :class:`FlightRecorder` (auto-dumped
  context window around the first invariant violation) and the
  :class:`StallWatchdog`;
* :mod:`repro.obs.runner` / :mod:`repro.obs.analyze` — the drivers
  behind ``python -m repro obs`` and ``python -m repro analyze``
  (imported lazily by the CLI; not re-exported here to keep this
  package importable from :mod:`repro.core`).

Attach a tracer with
:meth:`repro.core.sort_retrieve.TagSortRetrieveCircuit.attach_tracer`
or by passing ``tracer=`` to the circuit, the
:class:`~repro.net.hardware_store.HardwareTagStore`, or the
:class:`~repro.net.scheduler_system.HardwareWFQSystem`.
"""

from .diff import TraceCompatibilityError, TraceDiff, diff_traces
from .events import (
    FABRIC_KINDS,
    FOOTER_KIND,
    HEADER_KIND,
    INVARIANT_KIND,
    LIVE_KINDS,
    MAINTENANCE_KINDS,
    OP_KINDS,
    SLO_KIND,
    SPAN_KIND,
    TRACE_SCHEMA,
    WATCHDOG_KIND,
    TraceEvent,
    build_trace_header,
)
from .exporters import (
    TraceDocument,
    prometheus_snapshot,
    read_jsonl,
    read_trace,
    run_report,
    sanitize_metric_name,
    write_jsonl,
)
from .flight import FlightRecorder, StallWatchdog
from .instruments import Counter, Gauge, Histogram, InstrumentSet
from .live import LivePlane, MetricsServer, WindowedCollector
from .monitors import MonitorConfig, MonitorSuite, Violation, check_trace
from .probes import StandardProbes
from .profiler import Profile, profile_events
from .slo import (
    FairnessAuditor,
    RankInversionCounter,
    ServeStreamAuditor,
    SloRule,
)
from .timeline import build_timeline, write_timeline
from .tracer import NULL_TRACER, ComponentTracer, NullTracer, Tracer

__all__ = [
    "ComponentTracer",
    "Counter",
    "FABRIC_KINDS",
    "FOOTER_KIND",
    "FairnessAuditor",
    "FlightRecorder",
    "Gauge",
    "HEADER_KIND",
    "Histogram",
    "INVARIANT_KIND",
    "InstrumentSet",
    "LIVE_KINDS",
    "LivePlane",
    "MAINTENANCE_KINDS",
    "MetricsServer",
    "MonitorConfig",
    "MonitorSuite",
    "NULL_TRACER",
    "NullTracer",
    "OP_KINDS",
    "Profile",
    "RankInversionCounter",
    "SLO_KIND",
    "SPAN_KIND",
    "ServeStreamAuditor",
    "SloRule",
    "StallWatchdog",
    "StandardProbes",
    "TRACE_SCHEMA",
    "TraceCompatibilityError",
    "TraceDiff",
    "TraceDocument",
    "TraceEvent",
    "Tracer",
    "Violation",
    "WATCHDOG_KIND",
    "WindowedCollector",
    "build_timeline",
    "build_trace_header",
    "check_trace",
    "diff_traces",
    "prometheus_snapshot",
    "profile_events",
    "read_jsonl",
    "read_trace",
    "run_report",
    "sanitize_metric_name",
    "write_jsonl",
    "write_timeline",
]
