"""Trace forensics CLI: the machinery behind ``python -m repro analyze``.

Four subcommands over archived JSONL traces:

* ``profile TRACE`` — per-component / per-kind / flamegraph cost
  rollups plus top-K worst-case forensics (:mod:`repro.obs.profiler`);
* ``check TRACE`` — replay the trace through the online invariant
  monitors (:mod:`repro.obs.monitors`); nonzero exit on any violation;
* ``diff A B`` — logical-op alignment and per-kind cost deltas
  (:mod:`repro.obs.diff`); nonzero exit on divergence;
* ``timeline TRACE -o OUT.json`` — Perfetto-loadable Chrome trace-event
  export (:mod:`repro.obs.timeline`).

**Lossy traces fail loudly.**  Every subcommand refuses a trace whose
footer records ring-buffer drops or whose event count falls short of the
footer's emitted total (a truncated file), unless ``--allow-lossy``
downgrades the refusal to a stderr warning.  Unframed traces (no
header/footer — PR 2 era) are accepted with a note; they carry no drop
evidence either way.

Kept out of :mod:`repro.obs`'s eager imports — the CLI dispatches here
lazily, mirroring ``repro obs`` / ``repro bench``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .diff import TraceCompatibilityError, diff_traces
from .exporters import TraceDocument, read_trace
from .monitors import check_trace
from .profiler import profile_events
from .timeline import build_timeline


class LossyTraceError(RuntimeError):
    """The trace is incomplete and the caller did not allow that."""


def _gate_lossy(
    document: TraceDocument, path: str, *, allow_lossy: bool
) -> None:
    """Enforce the lossy-trace policy (refuse, or warn to stderr)."""
    problems: List[str] = []
    if document.missing:
        problems.append(
            f"{path}: file holds {len(document.events)} events but the "
            f"footer promises {document.footer.get('emitted')} — "
            f"truncated or buffer-evicted before the sink"
        )
    if document.dropped:
        problems.append(
            f"{path}: writer reported {document.dropped} ring-buffer drops"
        )
    if document.header is None:
        print(
            f"note: {path} is unframed (no trace_header record); "
            f"completeness cannot be verified",
            file=sys.stderr,
        )
    for problem in problems:
        if allow_lossy:
            print(f"WARNING (lossy trace): {problem}", file=sys.stderr)
        else:
            raise LossyTraceError(
                f"{problem}\n(re-run with --allow-lossy to analyze anyway)"
            )


def _load(path: str, *, allow_lossy: bool) -> TraceDocument:
    document = read_trace(path)
    _gate_lossy(document, path, allow_lossy=allow_lossy)
    return document


def _cmd_profile(args: argparse.Namespace) -> int:
    document = _load(args.trace, allow_lossy=args.allow_lossy)
    profile = profile_events(document.events)
    if args.flamegraph:
        with open(args.flamegraph, "w", encoding="utf-8") as handle:
            for line in profile.flamegraph_lines():
                handle.write(line + "\n")
    if args.format == "json":
        payload = profile.to_dict()
        payload["trace_header"] = document.header
        sys.stdout.write(json.dumps(payload, indent=2) + "\n")
    else:
        sys.stdout.write(profile.report(top_k=args.top, window=args.window))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    document = _load(args.trace, allow_lossy=args.allow_lossy)
    suite = check_trace(document.events, header=document.header)
    if args.format == "json":
        payload = {
            "trace": args.trace,
            "events": len(document.events),
            "checked": suite.checked,
            "ok": suite.ok,
            "violations": [v.to_dict() for v in suite.violations],
            "dropped": document.dropped,
        }
        sys.stdout.write(json.dumps(payload, indent=2) + "\n")
    else:
        sys.stdout.write(suite.summary() + "\n")
    return 0 if suite.ok else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    document_a = _load(args.trace_a, allow_lossy=args.allow_lossy)
    document_b = _load(args.trace_b, allow_lossy=args.allow_lossy)
    try:
        diff = diff_traces(
            document_a.events,
            document_b.events,
            header_a=document_a.header,
            header_b=document_b.header,
            labels=(args.trace_a, args.trace_b),
            force=args.force,
        )
    except TraceCompatibilityError as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        sys.stdout.write(json.dumps(diff.to_dict(), indent=2) + "\n")
    else:
        sys.stdout.write(diff.report())
    return 0 if diff.aligned else 1


def _cmd_timeline(args: argparse.Namespace) -> int:
    document = _load(args.trace, allow_lossy=args.allow_lossy)
    timeline = build_timeline(document.events, header=document.header)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(timeline, handle, separators=(",", ":"))
        handle.write("\n")
    print(
        f"wrote {len(timeline['traceEvents'])} trace events to "
        f"{args.output} (load in https://ui.perfetto.dev)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Forensic analyses over archived JSONL traces.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--allow-lossy",
            action="store_true",
            help="warn instead of refusing on an incomplete trace",
        )
        sub.add_argument(
            "--format",
            choices=("text", "json"),
            default="text",
            help="output format",
        )

    profile = subparsers.add_parser(
        "profile", help="cost attribution rollups + worst-case forensics"
    )
    profile.add_argument("trace", help="JSONL trace file")
    profile.add_argument(
        "--top", type=int, default=5, help="worst-case events to show"
    )
    profile.add_argument(
        "--window",
        type=int,
        default=3,
        help="surrounding events per worst case",
    )
    profile.add_argument(
        "--flamegraph",
        metavar="FILE",
        help="also write folded-stack lines here",
    )
    common(profile)
    profile.set_defaults(handler=_cmd_profile)

    check = subparsers.add_parser(
        "check", help="replay the invariant monitors over a trace"
    )
    check.add_argument("trace", help="JSONL trace file")
    common(check)
    check.set_defaults(handler=_cmd_check)

    diff = subparsers.add_parser(
        "diff", help="align two traces and report the first divergence"
    )
    diff.add_argument("trace_a", help="baseline JSONL trace")
    diff.add_argument("trace_b", help="candidate JSONL trace")
    diff.add_argument(
        "--force",
        action="store_true",
        help="diff even when seeds/configs mismatch",
    )
    common(diff)
    diff.set_defaults(handler=_cmd_diff)

    timeline = subparsers.add_parser(
        "timeline", help="export a Perfetto-loadable Chrome trace"
    )
    timeline.add_argument("trace", help="JSONL trace file")
    timeline.add_argument(
        "-o",
        "--output",
        required=True,
        metavar="FILE",
        help="timeline JSON destination",
    )
    common(timeline)
    timeline.set_defaults(handler=_cmd_timeline)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except LossyTraceError as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
