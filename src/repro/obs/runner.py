"""Traced-soak driver: the machinery behind ``python -m repro obs``.

Runs the bench harness's bursty WFQ-shaped mixed workload (the same
generator the perf suite times) through a
:class:`~repro.net.hardware_store.HardwareTagStore` with a live
:class:`~repro.obs.tracer.Tracer` attached, streams the events through
:class:`~repro.obs.probes.StandardProbes`, and verifies the telemetry
acceptance invariant: the summed per-structure deltas of the event
stream reconcile *exactly* with ``StatsRegistry.total()``.

Kept out of :mod:`repro.obs`'s eager imports (it pulls in the net/bench
layers) — the CLI imports it lazily.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bench.perf import _drive_batched, _drive_per_op, make_mixed_ops
from ..net.hardware_store import HardwareTagStore
from .events import build_trace_header
from .exporters import prometheus_snapshot, run_report
from .instruments import InstrumentSet
from .monitors import MonitorSuite
from .probes import StandardProbes
from .tracer import Tracer


@dataclass
class TracedRun:
    """Everything a traced soak produced."""

    tracer: Tracer
    store: HardwareTagStore
    instruments: InstrumentSet
    ops: int
    seed: int
    batched: bool
    served: int
    turbo: bool = False
    monitors: Optional[MonitorSuite] = None

    @property
    def event_counts(self) -> Dict[str, int]:
        """Events emitted per kind (from the probe counters, so exact
        even after ring-buffer eviction)."""
        counts: Dict[str, int] = {}
        prefix = "events_"
        for name in self.instruments.names():
            if name.startswith(prefix):
                counts[name[len(prefix):]] = self.instruments.counter(name).value
        return counts

    @property
    def reconciliation(self) -> Dict[str, int]:
        """Traced-vs-registry access totals (equal on a correct trace)."""
        return {
            "traced": self.tracer.attributed_grand_total().total,
            "registry": self.store.circuit.registry.total().total,
        }

    @property
    def reconciled(self) -> bool:
        """True when every registry access is attributed to an event."""
        traced = self.tracer.attributed_totals()
        registry = self.store.circuit.registry
        for name in registry.names():
            stats = registry[name]
            mine = traced.get(name)
            got = (mine.reads, mine.writes) if mine else (0, 0)
            if got != (stats.reads, stats.writes):
                return False
        return True

    def report(self) -> str:
        """The human-readable run report."""
        mode = "batched fast-mode" if self.batched else "per-op"
        if self.turbo:
            mode += ", turbo engine"
        notes = [
            f"tracer: {self.tracer.emitted} events emitted, "
            f"{self.tracer.dropped} evicted from the ring buffer",
        ]
        if self.monitors is not None:
            notes.append(self.monitors.summary())
        return run_report(
            title=(
                f"traced mixed soak: {self.ops} ops ({mode}), "
                f"seed {self.seed}"
            ),
            totals={
                name: self.store.circuit.registry[name]
                for name in self.store.circuit.registry.names()
            },
            instruments=self.instruments,
            event_counts=self.event_counts,
            reconciliation=self.reconciliation,
            dropped=self.tracer.dropped,
            notes=notes,
        )

    def to_document(self) -> Dict:
        """The JSON-format report (one output convention with the
        artifact CLI's ``--format json``)."""
        return {
            "workload": {
                "ops": self.ops,
                "seed": self.seed,
                "mode": "batched" if self.batched else "per_op",
                "engine": "turbo" if self.turbo else "gate",
                "granularity": self.store.granularity,
                "served": self.served,
            },
            "totals": {
                name: self.store.circuit.registry[name].to_dict()
                for name in self.store.circuit.registry.names()
            },
            "event_counts": self.event_counts,
            "instruments": self.instruments.summaries(),
            "reconciliation": {
                **self.reconciliation,
                "exact": self.reconciled,
            },
            "tracer": {
                "emitted": self.tracer.emitted,
                "dropped": self.tracer.dropped,
            },
            "monitors": (
                None
                if self.monitors is None
                else {
                    "checked": self.monitors.checked,
                    "ok": self.monitors.ok,
                    "violations": [
                        violation.to_dict()
                        for violation in self.monitors.violations
                    ],
                }
            ),
        }


def run_traced_soak(
    *,
    ops: int = 10_000,
    seed: int = 20060101,
    granularity: float = 8.0,
    batched: bool = False,
    turbo: bool = False,
    trace_sink: Optional[str] = None,
    buffer_size: int = 65536,
    monitor: bool = False,
) -> TracedRun:
    """Drive a traced mixed push/pop soak and return its telemetry.

    ``batched=True`` exercises the coalesced fast paths (span-attributed
    deltas); the default per-op mode attributes every access to its
    exact operation.  ``trace_sink`` streams the full JSONL trace to a
    file even when the ring buffer is smaller than the run.  The trace
    is framed: a header record (schema/seed/config/mode) leads the
    JSONL stream and a footer (emitted/dropped) closes it.

    ``turbo=True`` runs the store on the access-fused turbo engine
    (identical service order and accounting; the trace must diff clean
    against a gate run of the same seed — the CI soak asserts exactly
    that).  ``monitor=True`` additionally screens every event through the
    online invariant monitors (:class:`~repro.obs.monitors.MonitorSuite`)
    while the soak runs; violations land in the returned run's
    ``monitors`` suite and, as ``invariant_violation`` events, in the
    trace itself.
    """
    probes = StandardProbes()
    tracer = Tracer(
        buffer_size=buffer_size, sink=trace_sink, observers=[probes]
    )
    store = HardwareTagStore(
        granularity=granularity, fast_mode=batched, turbo=turbo,
        tracer=tracer,
    )
    tracer.write_header(
        build_trace_header(
            seed=seed,
            mode="batched" if batched else "per_op",
            config=store.describe(),
            ops=ops,
            buffer_size=buffer_size,
            engine="turbo" if turbo else "gate",
        )
    )
    suite: Optional[MonitorSuite] = None
    if monitor:
        suite = MonitorSuite.for_circuit(store.circuit, tracer=tracer)
        tracer.add_observer(suite)
    stream = make_mixed_ops(ops, seed)
    drive = _drive_batched if batched else _drive_per_op
    served = drive(store, stream)
    tracer.flush()
    tracer.close()
    return TracedRun(
        tracer=tracer,
        store=store,
        instruments=probes.instruments,
        ops=ops,
        seed=seed,
        batched=batched,
        served=len(served),
        turbo=turbo,
        monitors=suite,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description=(
            "Run a traced mixed soak through the hardware tag store and "
            "export its telemetry (JSONL trace, metrics, run report)."
        ),
    )
    parser.add_argument(
        "--ops", type=int, default=10_000, help="operations in the soak"
    )
    parser.add_argument(
        "--seed", type=int, default=20060101, help="workload seed"
    )
    parser.add_argument(
        "--granularity", type=float, default=8.0, help="tag quantum"
    )
    parser.add_argument(
        "--batched",
        action="store_true",
        help="use the coalesced fast paths (span-attributed deltas)",
    )
    parser.add_argument(
        "--mode",
        choices=("gate", "turbo"),
        default="gate",
        help=(
            "circuit engine: 'gate' walks the gate-accurate model, "
            "'turbo' uses the access-fused hot paths (identical service "
            "order and accounting, faster wall clock)"
        ),
    )
    parser.add_argument(
        "--trace", metavar="FILE", help="stream the JSONL event trace here"
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a Prometheus-style metrics snapshot here",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the run report here (default: stdout)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="run-report format",
    )
    parser.add_argument(
        "--buffer-size",
        type=int,
        default=65536,
        help="tracer ring-buffer capacity",
    )
    parser.add_argument(
        "--monitor",
        action="store_true",
        help=(
            "screen every event through the online invariant monitors; "
            "exit 1 on any violated paper guarantee"
        ),
    )
    parser.add_argument(
        "--allow-lossy",
        action="store_true",
        help=(
            "exit 0 even when the ring buffer evicted events (a "
            "streaming --trace sink still captures the full stream)"
        ),
    )
    args = parser.parse_args(argv)

    run = run_traced_soak(
        ops=args.ops,
        seed=args.seed,
        granularity=args.granularity,
        batched=args.batched,
        turbo=args.mode == "turbo",
        trace_sink=args.trace,
        buffer_size=args.buffer_size,
        monitor=args.monitor,
    )

    if args.format == "json":
        report = json.dumps(run.to_document(), indent=2) + "\n"
    else:
        report = run.report()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    else:
        sys.stdout.write(report)

    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(prometheus_snapshot(run.instruments))

    status = 0
    if not run.reconciled:
        print(
            "FAIL: trace deltas do not reconcile with the stats registry",
            file=sys.stderr,
        )
        status = 1
    if run.monitors is not None and not run.monitors.ok:
        print(
            f"FAIL: {len(run.monitors.violations)} invariant "
            f"violation(s) — see the run report",
            file=sys.stderr,
        )
        status = 1
    if run.tracer.dropped and not args.allow_lossy:
        print(
            f"FAIL: {run.tracer.dropped} events evicted from the ring "
            f"buffer (raise --buffer-size, or pass --allow-lossy if a "
            f"--trace sink captured the stream)",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
