"""Traced-soak driver: the machinery behind ``python -m repro obs``.

Runs the bench harness's bursty WFQ-shaped mixed workload (the same
generator the perf suite times) through a
:class:`~repro.net.hardware_store.HardwareTagStore` with a live
:class:`~repro.obs.tracer.Tracer` attached, streams the events through
:class:`~repro.obs.probes.StandardProbes`, and verifies the telemetry
acceptance invariant: the summed per-structure deltas of the event
stream reconcile *exactly* with ``StatsRegistry.total()``.

Kept out of :mod:`repro.obs`'s eager imports (it pulls in the net/bench
layers) — the CLI imports it lazily.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..bench.perf import _drive_batched, _drive_per_op, make_mixed_ops
from ..core.engine import VALID_MODES, resolve_mode
from ..core.sort_retrieve import FaultInjection
from ..net.hardware_store import HardwareTagStore
from .events import build_trace_header
from .exporters import prometheus_snapshot, run_report
from .flight import FlightRecorder
from .instruments import InstrumentSet
from .live import LivePlane
from .monitors import MonitorConfig, MonitorSuite
from .probes import StandardProbes
from .slo import ServeStreamAuditor
from .tracer import Tracer

#: Seeded-fault presets for ``--inject-fault`` — one per monitor family,
#: mirroring the fault matrix the monitor tests prove catches each one.
FAULT_PRESETS: Dict[str, FaultInjection] = {
    "insert_budget": FaultInjection(extra_insert_writes=1),
    "dequeue_bound": FaultInjection(extra_dequeue_reads=3),
    "free_list": FaultInjection(skip_free_release=True),
    "monotonic": FaultInjection(misreport_serve_offset=-2048),
    "coverage": FaultInjection(misreport_serve_offset=1024),
}


@dataclass
class TracedRun:
    """Everything a traced soak produced."""

    tracer: Tracer
    store: HardwareTagStore
    instruments: InstrumentSet
    ops: int
    seed: int
    batched: bool
    served: int
    turbo: bool = False
    engine: str = "gate"
    monitors: Optional[MonitorSuite] = None
    live: Optional[Dict] = None
    live_instruments: Optional[InstrumentSet] = None
    flight: Optional[FlightRecorder] = None
    auditor: Optional[ServeStreamAuditor] = None
    fault: Optional[str] = None

    @property
    def event_counts(self) -> Dict[str, int]:
        """Events emitted per kind (from the probe counters, so exact
        even after ring-buffer eviction)."""
        counts: Dict[str, int] = {}
        prefix = "events_"
        for name in self.instruments.names():
            if name.startswith(prefix):
                counts[name[len(prefix):]] = self.instruments.counter(name).value
        return counts

    @property
    def reconciliation(self) -> Dict[str, int]:
        """Traced-vs-registry access totals (equal on a correct trace)."""
        return {
            "traced": self.tracer.attributed_grand_total().total,
            "registry": self.store.circuit.registry.total().total,
        }

    @property
    def reconciled(self) -> bool:
        """True when every registry access is attributed to an event."""
        traced = self.tracer.attributed_totals()
        registry = self.store.circuit.registry
        for name in registry.names():
            stats = registry[name]
            mine = traced.get(name)
            got = (mine.reads, mine.writes) if mine else (0, 0)
            if got != (stats.reads, stats.writes):
                return False
        return True

    def report(self) -> str:
        """The human-readable run report."""
        mode = "batched fast-mode" if self.batched else "per-op"
        if self.engine != "gate":
            mode += f", {self.engine} engine"
        notes = [
            f"tracer: {self.tracer.emitted} events emitted, "
            f"{self.tracer.dropped} evicted from the ring buffer",
        ]
        if self.monitors is not None:
            notes.append(self.monitors.summary())
        if self.live is not None:
            port = self.live.get("port")
            served_at = f" on port {port}" if port else ""
            notes.append(
                f"live plane{served_at}: {self.live['windows']} windows "
                f"({self.live['skipped_ticks']} skipped), "
                f"{self.live['uptime_seconds']}s up"
            )
        if self.auditor is not None:
            audit = self.auditor.summary()
            notes.append(
                f"serve audit: {audit['serves']} serves, "
                f"{audit['inversions']} rank inversions"
            )
        if self.flight is not None:
            summary = self.flight.summary()
            if summary["dumped"]:
                trigger = summary["trigger"] or {}
                notes.append(
                    f"flight recorder: dumped {summary['path']} around "
                    f"{trigger.get('monitor') or trigger.get('kind')}"
                )
            else:
                notes.append(
                    f"flight recorder: armed, no trigger "
                    f"({summary['observed']} events observed)"
                )
        return run_report(
            title=(
                f"traced mixed soak: {self.ops} ops ({mode}), "
                f"seed {self.seed}"
            ),
            totals={
                name: self.store.circuit.registry[name]
                for name in self.store.circuit.registry.names()
            },
            instruments=self.instruments,
            event_counts=self.event_counts,
            reconciliation=self.reconciliation,
            dropped=self.tracer.dropped,
            notes=notes,
        )

    def to_document(self) -> Dict:
        """The JSON-format report (one output convention with the
        artifact CLI's ``--format json``)."""
        return {
            "workload": {
                "ops": self.ops,
                "seed": self.seed,
                "mode": "batched" if self.batched else "per_op",
                "engine": self.engine,
                "granularity": self.store.granularity,
                "served": self.served,
            },
            "totals": {
                name: self.store.circuit.registry[name].to_dict()
                for name in self.store.circuit.registry.names()
            },
            "event_counts": self.event_counts,
            "instruments": self.instruments.summaries(),
            "reconciliation": {
                **self.reconciliation,
                "exact": self.reconciled,
            },
            "tracer": {
                "emitted": self.tracer.emitted,
                "dropped": self.tracer.dropped,
            },
            "monitors": (
                None
                if self.monitors is None
                else {
                    "checked": self.monitors.checked,
                    "ok": self.monitors.ok,
                    "violations": [
                        violation.to_dict()
                        for violation in self.monitors.violations
                    ],
                }
            ),
            "live": self.live,
            "serve_audit": (
                None if self.auditor is None else self.auditor.summary()
            ),
            "flight": (
                None if self.flight is None else self.flight.summary()
            ),
            "fault": self.fault,
        }

    def metrics_text(self) -> str:
        """Prometheus exposition: run instruments plus live rollups."""
        text = prometheus_snapshot(self.instruments)
        if self.live_instruments is not None:
            text += prometheus_snapshot(self.live_instruments)
        return text


def run_traced_soak(
    *,
    ops: int = 10_000,
    seed: int = 20060101,
    granularity: float = 8.0,
    batched: bool = False,
    turbo: bool = False,
    mode: Optional[str] = None,
    trace_sink: Optional[str] = None,
    buffer_size: int = 65536,
    monitor: bool = False,
    serve_port: Optional[int] = None,
    serve_host: str = "127.0.0.1",
    serve_linger: float = 0.0,
    live_interval: float = 0.5,
    watchdog_timeout: Optional[float] = None,
    flight_path: Optional[str] = None,
    fault: Optional[str] = None,
    fault_after: Optional[int] = None,
    serve_ready: Optional[Callable[[LivePlane], None]] = None,
) -> TracedRun:
    """Drive a traced mixed push/pop soak and return its telemetry.

    ``batched=True`` exercises the coalesced fast paths (span-attributed
    deltas); the default per-op mode attributes every access to its
    exact operation.  ``trace_sink`` streams the full JSONL trace to a
    file even when the ring buffer is smaller than the run.  The trace
    is framed: a header record (schema/seed/config/mode) leads the
    JSONL stream and a footer (emitted/dropped) closes it.

    ``turbo=True`` runs the store on the access-fused turbo engine
    (identical service order and accounting; the trace must diff clean
    against a gate run of the same seed — the CI soak asserts exactly
    that).  ``mode`` generalizes it to any registered engine
    (``gate``/``turbo``/``vector``) and wins over ``turbo`` when both
    are given.  ``monitor=True`` additionally screens every event through the
    online invariant monitors (:class:`~repro.obs.monitors.MonitorSuite`)
    while the soak runs; violations land in the returned run's
    ``monitors`` suite and, as ``invariant_violation`` events, in the
    trace itself.

    ``serve_port`` attaches the live observability plane
    (:class:`~repro.obs.live.LivePlane`): the windowed collector plus an
    HTTP server answering ``/metrics``, ``/health``, and ``/snapshot``
    while the soak runs (port 0 binds ephemerally; the bound port lands
    in the run's ``live`` summary), along with the tag-domain serve
    auditor.  ``serve_linger`` keeps serving that long after the drive
    finishes (CI scrapes during the window).  ``flight_path`` arms an
    always-on :class:`~repro.obs.flight.FlightRecorder` that auto-dumps
    an analyze-loadable mini-trace around the first invariant violation.
    ``fault`` injects a seeded telemetry fault (a :data:`FAULT_PRESETS`
    name) after ``fault_after`` clean warmup ops (default ``ops // 2``),
    so monitors have true reference state to convict against — the
    flight-recorder CI path uses exactly this.
    """
    if fault is not None and fault not in FAULT_PRESETS:
        raise ValueError(
            f"unknown fault preset {fault!r}; "
            f"expected one of {sorted(FAULT_PRESETS)}"
        )
    mode = resolve_mode(mode, turbo)
    probes = StandardProbes()
    tracer = Tracer(
        buffer_size=buffer_size, sink=trace_sink, observers=[probes]
    )
    store = HardwareTagStore(
        granularity=granularity, fast_mode=batched, mode=mode,
        tracer=tracer,
    )
    tracer.write_header(
        build_trace_header(
            seed=seed,
            mode="batched" if batched else "per_op",
            config=store.describe(),
            ops=ops,
            buffer_size=buffer_size,
            engine=mode,
        )
    )
    suite: Optional[MonitorSuite] = None
    if monitor:
        suite = MonitorSuite.for_circuit(store.circuit, tracer=tracer)
        tracer.add_observer(suite)

    live_enabled = serve_port is not None
    flight: Optional[FlightRecorder] = None
    if flight_path is not None:
        flight = FlightRecorder(flight_path, header=tracer.header)
        flight.attach(tracer)
    auditor: Optional[ServeStreamAuditor] = None
    plane: Optional[LivePlane] = None
    if live_enabled:
        monitor_config = MonitorConfig.from_circuit_config(store.describe())
        auditor = ServeStreamAuditor(
            instruments=probes.instruments,
            modular=monitor_config.modular,
            tag_space=monitor_config.tag_space,
        )
        tracer.add_observer(
            auditor, kinds=ServeStreamAuditor.OBSERVED_KINDS
        )
        registry = store.circuit.registry
        plane = LivePlane(
            instruments=probes.instruments,
            progress=lambda: registry.total().total,
            occupancy=lambda: store.circuit.count,
            free_list_depth=lambda: store.circuit.free_list_depth,
            monitors=suite,
            tracer=tracer,
            flight=flight,
            auditor=auditor,
            serve_port=serve_port,
            serve_host=serve_host,
            interval=live_interval,
            watchdog_timeout=watchdog_timeout,
        )
        plane.start()
        if serve_ready is not None:
            # Hands the bound plane (ephemeral port included) to the
            # caller before any operation runs — tests and supervisors
            # use this to scrape the endpoints mid-soak.
            serve_ready(plane)

    stream = make_mixed_ops(ops, seed)
    drive = _drive_batched if batched else _drive_per_op
    live_summary: Optional[Dict] = None
    try:
        if fault is None:
            served = drive(store, stream)
        else:
            warmup = ops // 2 if fault_after is None else fault_after
            warmup = max(0, min(warmup, len(stream)))
            served = drive(store, stream[:warmup])
            store.circuit.fault_injection = FAULT_PRESETS[fault]
            served = served + drive(store, stream[warmup:])
    finally:
        if plane is not None:
            if serve_linger > 0:
                import time as _time

                _time.sleep(serve_linger)
            live_summary = plane.finish()
        tracer.flush()
        tracer.close()
        if flight is not None:
            flight.close()
    return TracedRun(
        tracer=tracer,
        store=store,
        instruments=probes.instruments,
        ops=ops,
        seed=seed,
        batched=batched,
        served=len(served),
        turbo=mode == "turbo",
        engine=mode,
        monitors=suite,
        live=live_summary,
        live_instruments=(
            plane.collector.live if plane is not None else None
        ),
        flight=flight,
        auditor=auditor,
        fault=fault,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description=(
            "Run a traced mixed soak through the hardware tag store and "
            "export its telemetry (JSONL trace, metrics, run report)."
        ),
    )
    parser.add_argument(
        "--ops", type=int, default=10_000, help="operations in the soak"
    )
    parser.add_argument(
        "--seed", type=int, default=20060101, help="workload seed"
    )
    parser.add_argument(
        "--granularity", type=float, default=8.0, help="tag quantum"
    )
    parser.add_argument(
        "--batched",
        action="store_true",
        help="use the coalesced fast paths (span-attributed deltas)",
    )
    parser.add_argument(
        "--mode",
        choices=tuple(VALID_MODES),
        default="gate",
        help=(
            "circuit engine: 'gate' walks the gate-accurate model, "
            "'turbo' uses the access-fused hot paths, 'vector' the "
            "numpy array data plane (identical service order and "
            "gate-shaped accounting, faster wall clock)"
        ),
    )
    parser.add_argument(
        "--trace", metavar="FILE", help="stream the JSONL event trace here"
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a Prometheus-style metrics snapshot here",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the run report here (default: stdout)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "prometheus"),
        default="text",
        help=(
            "run-report format ('prometheus' writes a scrape-shaped "
            "metrics snapshot without starting the server)"
        ),
    )
    parser.add_argument(
        "--buffer-size",
        type=int,
        default=65536,
        help="tracer ring-buffer capacity",
    )
    parser.add_argument(
        "--monitor",
        action="store_true",
        help=(
            "screen every event through the online invariant monitors; "
            "exit 1 on any violated paper guarantee"
        ),
    )
    parser.add_argument(
        "--allow-lossy",
        action="store_true",
        help=(
            "exit 0 even when the ring buffer evicted events (a "
            "streaming --trace sink still captures the full stream)"
        ),
    )
    parser.add_argument(
        "--serve",
        type=int,
        metavar="PORT",
        default=None,
        help=(
            "attach the live observability plane and serve /metrics, "
            "/health, /snapshot on this port while the soak runs "
            "(0 = ephemeral)"
        ),
    )
    parser.add_argument(
        "--serve-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the live endpoints up this long after the soak",
    )
    parser.add_argument(
        "--live-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="windowed-collector cadence",
    )
    parser.add_argument(
        "--watchdog",
        type=float,
        default=None,
        metavar="SECONDS",
        help="declare a stall after this long without progress",
    )
    parser.add_argument(
        "--flight",
        metavar="FILE",
        help=(
            "arm the flight recorder: auto-dump an analyze-loadable "
            "mini-trace around the first invariant violation"
        ),
    )
    parser.add_argument(
        "--inject-fault",
        choices=sorted(FAULT_PRESETS),
        default=None,
        help=(
            "seed a telemetry fault halfway through the soak (pairs "
            "with --monitor and --flight to exercise the forensics "
            "path; the run exits 1 by design)"
        ),
    )
    parser.add_argument(
        "--fault-after",
        type=int,
        default=None,
        metavar="OPS",
        help="clean warmup ops before --inject-fault kicks in",
    )
    args = parser.parse_args(argv)

    run = run_traced_soak(
        ops=args.ops,
        seed=args.seed,
        granularity=args.granularity,
        batched=args.batched,
        mode=args.mode,
        trace_sink=args.trace,
        buffer_size=args.buffer_size,
        monitor=args.monitor,
        serve_port=args.serve,
        serve_linger=args.serve_linger,
        live_interval=args.live_interval,
        watchdog_timeout=args.watchdog,
        flight_path=args.flight,
        fault=args.inject_fault,
        fault_after=args.fault_after,
    )

    if args.format == "json":
        report = json.dumps(run.to_document(), indent=2) + "\n"
    elif args.format == "prometheus":
        report = run.metrics_text()
    else:
        report = run.report()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    else:
        sys.stdout.write(report)

    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(prometheus_snapshot(run.instruments))

    status = 0
    if not run.reconciled:
        print(
            "FAIL: trace deltas do not reconcile with the stats registry",
            file=sys.stderr,
        )
        status = 1
    if run.monitors is not None and not run.monitors.ok:
        print(
            f"FAIL: {len(run.monitors.violations)} invariant "
            f"violation(s) — see the run report",
            file=sys.stderr,
        )
        status = 1
    if run.tracer.dropped and not args.allow_lossy:
        print(
            f"FAIL: {run.tracer.dropped} events evicted from the ring "
            f"buffer (raise --buffer-size, or pass --allow-lossy if a "
            f"--trace sink captured the stream)",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
