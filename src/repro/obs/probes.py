"""Standard probes: stream trace events into histograms and gauges.

:class:`StandardProbes` is a tracer observer (see
:meth:`repro.obs.tracer.Tracer.add_observer`) that converts the event
stream of a traced circuit/store run into the distribution view the
ISSUE calls for: per-op access counts, cycles, occupancy, linked-list
depths, clamp magnitudes, backup-path activations.

It never touches the traced components — everything is derived from the
events — so the same probes work on a live tracer or on a replayed
JSONL file (:func:`repro.obs.exporters.read_jsonl`).
"""

from __future__ import annotations

from .events import OP_KINDS, SPAN_KIND, TraceEvent
from .instruments import InstrumentSet


class StandardProbes:
    """Maps trace events onto a standard set of instruments.

    Instruments populated (all optional — absent if no event carried
    the field):

    * ``op_accesses`` — per-operation memory accesses (per-op mode
      events carry exact deltas);
    * ``batch_accesses_per_op`` — amortized per-op accesses of batched
      spans (span self-delta / op count, captured at 0.01 resolution);
    * ``op_cycles`` — circuit cycles per operation;
    * ``occupancy`` — stored tags after each operation (histogram) and
      ``occupancy_now`` (gauge);
    * ``free_list_depth`` — storage empty-list depth per op;
    * ``clamp_quanta`` — clamp magnitude per backup-path activation of
      the store;
    * ``section_purged`` — stale markers deleted per section clear;
    * counters ``events_<kind>``, ``backup_activations``,
      ``failed_operations``.
    """

    def __init__(self, instruments: InstrumentSet = None) -> None:
        self.instruments = instruments if instruments is not None else InstrumentSet()

    def __call__(self, event: TraceEvent) -> None:
        inst = self.instruments
        inst.counter(f"events_{event.kind}").inc()
        attrs = event.attrs
        if attrs.get("failed"):
            inst.counter("failed_operations").inc()
        if event.kind in OP_KINDS:
            if event.deltas:
                inst.hist("op_accesses").record(event.delta_total)
            cycles = attrs.get("cycles")
            if cycles is not None:
                inst.hist("op_cycles").record(cycles)
            occupancy = attrs.get("occupancy")
            if occupancy is not None:
                inst.hist("occupancy").record(occupancy)
                inst.gauge("occupancy_now").set(occupancy)
            depth = attrs.get("free_list_depth")
            if depth is not None:
                inst.hist("free_list_depth").record(depth)
            if attrs.get("used_backup"):
                inst.counter("backup_activations").inc()
        elif event.kind == SPAN_KIND:
            count = attrs.get("count")
            if count and event.deltas:
                inst.hist("batch_accesses_per_op", scale=100).record(
                    event.delta_total / count
                )
        elif event.kind == "clamp":
            quanta = attrs.get("quanta")
            if quanta is not None:
                inst.hist("clamp_quanta").record(quanta)
        elif event.kind == "section_clear" and not attrs.get("failed"):
            inst.hist("section_purged").record(attrs.get("purged", 0))
