"""Standard probes: stream trace events into histograms and gauges.

:class:`StandardProbes` is a tracer observer (see
:meth:`repro.obs.tracer.Tracer.add_observer`) that converts the event
stream of a traced circuit/store run into the distribution view the
ISSUE calls for: per-op access counts, cycles, occupancy, linked-list
depths, clamp magnitudes, backup-path activations.

It never touches the traced components — everything is derived from the
events — so the same probes work on a live tracer or on a replayed
JSONL file (:func:`repro.obs.exporters.read_jsonl`).

Events stamped with a ``component`` attr (per-shard views, ingested
worker events) are recorded **twice**: once into the unlabeled family
(the fleet aggregate, exactly the pre-label behavior) and once into the
``shard``-labeled series of the same family.  Per-shard series therefore
sum to the aggregate *by construction* — the invariant the hypothesis
property test pins down.
"""

from __future__ import annotations

from typing import Dict, Optional

from .events import OP_KINDS, SPAN_KIND, TraceEvent
from .instruments import InstrumentSet

#: Component prefix the sharded fabric stamps on per-shard views.
SHARD_PREFIX = "shard"


def shard_labels(component: str) -> Dict[str, str]:
    """The label set a component string maps to.

    Fabric shards are stamped ``shardN`` and become ``{"shard": "N"}``
    so the label value matches the shard index used everywhere else
    (SLO rules, skew gauges, Perfetto tracks).  Any other component
    (e.g. ``fabric`` itself) keeps its full name as the label value —
    still one series per traffic source, never silently dropped.
    """
    if component.startswith(SHARD_PREFIX) and component[len(SHARD_PREFIX):].isdigit():
        return {"shard": component[len(SHARD_PREFIX):]}
    return {"shard": component}


class StandardProbes:
    """Maps trace events onto a standard set of instruments.

    Instruments populated (all optional — absent if no event carried
    the field):

    * ``op_accesses`` — per-operation memory accesses (per-op mode
      events carry exact deltas);
    * ``batch_accesses_per_op`` — amortized per-op accesses of batched
      spans (span self-delta / op count, captured at 0.01 resolution);
    * ``op_cycles`` — circuit cycles per operation;
    * ``occupancy`` — stored tags after each operation (histogram) and
      ``occupancy_now`` (gauge);
    * ``free_list_depth`` — storage empty-list depth per op;
    * ``clamp_quanta`` — clamp magnitude per backup-path activation of
      the store;
    * ``section_purged`` — stale markers deleted per section clear;
    * counters ``events_<kind>``, ``backup_activations``,
      ``failed_operations``.

    Component-stamped events additionally populate the ``shard``-labeled
    series of every family above (see :func:`shard_labels`).
    """

    def __init__(self, instruments: InstrumentSet = None) -> None:
        self.instruments = instruments if instruments is not None else InstrumentSet()

    def __call__(self, event: TraceEvent) -> None:
        self._record(event, None)
        component = event.attrs.get("component")
        if component is not None:
            self._record(event, shard_labels(str(component)))

    def _record(
        self, event: TraceEvent, labels: Optional[Dict[str, str]]
    ) -> None:
        inst = self.instruments
        inst.counter(f"events_{event.kind}", labels=labels).inc()
        attrs = event.attrs
        if attrs.get("failed"):
            inst.counter("failed_operations", labels=labels).inc()
        if event.kind in OP_KINDS:
            if event.deltas:
                inst.hist("op_accesses", labels=labels).record(
                    event.delta_total
                )
            cycles = attrs.get("cycles")
            if cycles is not None:
                inst.hist("op_cycles", labels=labels).record(cycles)
            occupancy = attrs.get("occupancy")
            if occupancy is not None:
                inst.hist("occupancy", labels=labels).record(occupancy)
                inst.gauge("occupancy_now", labels=labels).set(occupancy)
            depth = attrs.get("free_list_depth")
            if depth is not None:
                inst.hist("free_list_depth", labels=labels).record(depth)
            if attrs.get("used_backup"):
                inst.counter("backup_activations", labels=labels).inc()
        elif event.kind == SPAN_KIND:
            count = attrs.get("count")
            if count and event.deltas:
                inst.hist(
                    "batch_accesses_per_op", scale=100, labels=labels
                ).record(event.delta_total / count)
        elif event.kind == "clamp":
            quanta = attrs.get("quanta")
            if quanta is not None:
                inst.hist("clamp_quanta", labels=labels).record(quanta)
        elif event.kind == "section_clear" and not attrs.get("failed"):
            inst.hist("section_purged", labels=labels).record(
                attrs.get("purged", 0)
            )
