"""Flight recorder and stall watchdog — always-on crash forensics.

A soak that trips an invariant monitor today leaves you with whatever
the ring buffer happens to hold when the run *ends*; with a streaming
sink disabled there may be nothing to analyze at all.  The
:class:`FlightRecorder` fixes that: attached as a tracer observer, it
keeps a bounded ring of recent events and, the moment a trigger event
(by default an :data:`~repro.obs.events.INVARIANT_KIND` violation)
appears, captures the surrounding context window — everything currently
in the ring plus a fixed number of post-trigger events — and dumps it as
a *framed* JSONL mini-trace that ``python -m repro analyze`` loads like
any other trace: header first (copied from the run's header, stamped
``purpose: "flight_recorder"`` plus trigger coordinates), then the
events, then a footer whose ``emitted`` count matches the file, so the
lossy-trace gate accepts it.

:class:`StallWatchdog` is the liveness half: it watches a *progress
reading* (registry grand total, fabric operation count) sampled by the
live collector thread and declares a stall when the reading stops
changing for longer than the timeout — which catches a hung
multiprocessing worker pool without adding any per-operation cost to
the hot path.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from .events import (
    FOOTER_KIND,
    INVARIANT_KIND,
    TRACE_SCHEMA,
    TraceEvent,
    WATCHDOG_KIND,
)

#: Default context captured around the first trigger event.
DEFAULT_RING = 4096
DEFAULT_POST_CONTEXT = 256

#: Kinds that arm a dump.
DEFAULT_TRIGGER_KINDS = (INVARIANT_KIND, WATCHDOG_KIND)


class FlightRecorder:
    """Bounded ring of recent trace events with auto-dump on violation.

    Attach with :meth:`attach` (rides the tracer's ring buffer; zero
    per-event cost until a trigger fires) or, for tracerless callers,
    feed events directly — the recorder is itself an observer keeping a
    private ring.  Either way it is passive until a trigger-kind event
    arrives; it then keeps absorbing
    ``post_context`` more events (the aftermath often matters as much as
    the lead-up) and writes the window to ``path``.  Only the *first*
    trigger dumps — a broken invariant usually cascades, and the first
    window is the one with the uncorrupted lead-up.  :meth:`close`
    flushes a pending dump whose aftermath was cut short by the end of
    the run.
    """

    def __init__(
        self,
        path: str,
        *,
        ring: int = DEFAULT_RING,
        post_context: int = DEFAULT_POST_CONTEXT,
        trigger_kinds: Sequence[str] = DEFAULT_TRIGGER_KINDS,
        header: Optional[Dict[str, Any]] = None,
    ) -> None:
        if ring < 1:
            raise ValueError("ring must hold at least one event")
        if post_context < 0:
            raise ValueError("post_context must be non-negative")
        self.path = path
        self._ring: deque = deque(maxlen=ring)
        # Bound once: the observer runs on every traced event and the
        # attribute walk is measurable there.
        self._ring_append = self._ring.append
        self._post_context = post_context
        self._trigger_kinds = tuple(trigger_kinds)
        self._header = dict(header) if header else None
        self.trigger: Optional[TraceEvent] = None
        self.dumped = False
        self._post_remaining = 0
        #: events seen over the recorder's lifetime (for drop accounting)
        self.observed = 0
        #: set by :meth:`attach`; the recorder then rides the tracer's
        #: own ring instead of mirroring every event into a private one
        self._tracer = None

    def set_header(self, header: Dict[str, Any]) -> None:
        """Adopt the run's trace header (copied into the dump)."""
        self._header = dict(header)

    def attach(self, tracer) -> None:
        """Ride the tracer's own ring instead of keeping a private one.

        The recorder subscribes only for its trigger kinds, so the
        clean path — no violation ever fires — pays *nothing* per
        event: the lead-up window is sliced from the tracer's ring
        buffer at dump time (bounded by this recorder's ``ring``), and
        the aftermath countdown adds a wildcard observer only once a
        trigger has actually fired.  The tracer's buffer must be at
        least as deep as the wanted lead-up for the full window to
        survive to the dump (the default 65536-event buffer dwarfs the
        default 4096-event window).
        """
        if self._tracer is not None:
            raise RuntimeError("flight recorder is already attached")
        self._tracer = tracer
        tracer.add_observer(self._on_trigger, kinds=self._trigger_kinds)

    def _on_trigger(self, event: TraceEvent) -> None:
        """Kind-filtered observer: first trigger arms the countdown."""
        if self.trigger is not None:
            return
        self.trigger = event
        self._post_remaining = self._post_context
        if self._post_remaining == 0:
            self._dump()
        else:
            self._tracer.add_observer(self._aftermath)

    def _aftermath(self, event: TraceEvent) -> None:
        """Wildcard observer attached only after the trigger fired."""
        if self.dumped:
            return
        self._post_remaining -= 1
        if self._post_remaining <= 0:
            self._dump()

    @property
    def triggered(self) -> bool:
        return self.trigger is not None

    def __call__(self, event: TraceEvent) -> None:
        """Tracer-observer entry: absorb one event."""
        # Hot path: runs on every traced event.  Until the first
        # trigger arrives this is an increment, a bound append, and one
        # membership test.
        self.observed += 1
        self._ring_append(event)
        if self.trigger is None:
            if event.kind in self._trigger_kinds:
                self.trigger = event
                self._post_remaining = self._post_context
                if self._post_remaining == 0:
                    self._dump()
        elif not self.dumped:
            self._post_remaining -= 1
            if self._post_remaining <= 0:
                self._dump()

    def close(self) -> None:
        """Flush a pending dump (trigger seen, aftermath cut short)."""
        if self.triggered and not self.dumped:
            self._dump()

    # ------------------------------------------------------------------

    def _dump_header(self, events: List[TraceEvent]) -> Dict[str, Any]:
        header: Dict[str, Any] = (
            dict(self._header)
            if self._header is not None
            else {
                "kind": "trace_header",
                "schema": TRACE_SCHEMA,
                "seed": 0,
                "mode": "unknown",
                "config": {},
            }
        )
        trigger = self.trigger
        header["purpose"] = "flight_recorder"
        header["trigger"] = {
            "seq": trigger.seq if trigger else None,
            "kind": trigger.kind if trigger else None,
            "monitor": (
                trigger.attrs.get("monitor") if trigger else None
            ),
            "offender_seq": (
                trigger.attrs.get("offender_seq") if trigger else None
            ),
        }
        header["window"] = {
            "events": len(events),
            "first_seq": events[0].seq if events else None,
            "last_seq": events[-1].seq if events else None,
            "ring": self._ring.maxlen,
            "post_context": self._post_context,
        }
        return header

    def _dump(self) -> None:
        if self._tracer is not None:
            self.observed = self._tracer.emitted
            window = self._ring.maxlen or 0
            events = self._tracer.events()[-window:]
        else:
            events = list(self._ring)
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(self._dump_header(events), sort_keys=False) + "\n"
            )
            for event in events:
                handle.write(
                    json.dumps(event.to_dict(), sort_keys=False) + "\n"
                )
            footer = {
                "kind": FOOTER_KIND,
                "emitted": len(events),
                "dropped": 0,
            }
            handle.write(json.dumps(footer, sort_keys=False) + "\n")
        self.dumped = True

    def summary(self) -> Dict[str, Any]:
        if self._tracer is not None:
            self.observed = self._tracer.emitted
        return {
            "path": self.path,
            "observed": self.observed,
            "triggered": self.triggered,
            "dumped": self.dumped,
            "trigger": (
                {
                    "seq": self.trigger.seq,
                    "kind": self.trigger.kind,
                    "monitor": self.trigger.attrs.get("monitor"),
                }
                if self.trigger
                else None
            ),
        }


class StallWatchdog:
    """Progress-based liveness watchdog (no hot-path instrumentation).

    Feed it a monotone progress reading — the registry grand total for a
    single store, the fabric's operation counter, anything that moves
    whenever the run moves — via :meth:`observe`, typically from the
    live collector's periodic tick.  If the reading stops changing for
    longer than ``timeout`` seconds while the watchdog is armed, it
    latches :attr:`stalled`; the next tick's caller can then emit a
    :data:`~repro.obs.events.WATCHDOG_KIND` event (safe from the
    collector thread precisely *because* the main thread is making no
    progress) and trigger a flight-recorder dump.

    A recovery (the reading moves again) clears :attr:`stalled` but
    keeps :attr:`stall_count` — a worker pool that hiccups repeatedly is
    worth knowing about even if every hiccup eventually clears.
    """

    def __init__(
        self,
        *,
        timeout: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self._clock = clock
        self._last_value: Optional[Union[int, float]] = None
        self._last_change = clock()
        self.stalled = False
        self.stall_count = 0
        self.armed = True

    def beat(self) -> None:
        """Explicit heartbeat (counts as progress)."""
        self._last_change = self._clock()
        if self.stalled:
            self.stalled = False

    def observe(self, value: Union[int, float]) -> bool:
        """Sample the progress reading; returns True on a *new* stall."""
        now = self._clock()
        if self._last_value is None or value != self._last_value:
            self._last_value = value
            self._last_change = now
            if self.stalled:
                self.stalled = False
            return False
        if not self.armed or self.stalled:
            return False
        if now - self._last_change > self.timeout:
            self.stalled = True
            self.stall_count += 1
            return True
        return False

    @property
    def seconds_since_progress(self) -> float:
        """Age of the last observed progress (the heartbeat reading)."""
        return max(0.0, self._clock() - self._last_change)

    def disarm(self) -> None:
        """Stop declaring new stalls (run is shutting down)."""
        self.armed = False

    def summary(self) -> Dict[str, Any]:
        return {
            "timeout": self.timeout,
            "stalled": self.stalled,
            "stall_count": self.stall_count,
            "seconds_since_progress": round(self.seconds_since_progress, 3),
            "armed": self.armed,
        }
