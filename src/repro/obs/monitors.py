"""Online invariant monitors: the paper's guarantees, checked live.

Each monitor encodes one guarantee from the paper and watches the event
stream for an operation that breaks it:

===========================  ========================================
monitor                      paper guarantee
===========================  ========================================
``insert_budget``            Fig. 9 / Section III-A: an insert costs at
                             most 2 reads + 2 writes on the tag storage
                             (the fixed four-access window; the
                             init-counter allocation and the first
                             insert into an empty memory come in
                             *under* budget).
``dequeue_bound``            Section II-C sort model: a dequeue is a
                             fixed-cost head removal — no search.  In
                             deferred-marker (paper) mode it touches
                             the tag storage only (1R + 1W); eager mode
                             adds the marker/translation removal, still
                             bounded by the W/k tree depth.
``free_list_conservation``   Fig. 10: link slots are conserved —
                             occupancy moves by exactly +1 per insert,
                             −1 per dequeue, 0 per combined
                             insert+dequeue, and every dequeue threads
                             its freed link back onto the empty list
                             (an explicit storage write; the combined
                             op reuses the slot instead).
``handle_liveness``          Dynamic updates: a remove/retag names a
                             handle that is live per the event stream —
                             issued by an insert, not yet served,
                             removed, or retagged — and the tag it
                             reports matches the tag the handle was
                             issued for.
``free_list_removal``        Fig. 10 under removal: an arbitrary unlink
                             returns exactly one slot to the empty list
                             (occupancy −1, free-list depth +1) and
                             performs the empty-list threading write
                             (two storage writes mid-list: the splice
                             and the release; one at the head).
``serve_monotonic``          Section II-B WFQ invariant: served tags
                             are non-decreasing (wrap-aware in modular
                             mode) until the circuit drains and a new
                             busy period may legitimately restart
                             lower.
``coverage``                 Figs. 6/11 consistency: only live (still
                             inserted) values are ever served, a
                             stale-section clear never hits a section
                             holding live tags, and a marker flush only
                             happens with the storage empty.
``fabric_tournament_order``  Fabric (``repro.fabric``) k-way merge: a
                             shard serves only while no other shard
                             holds a live tag preceding it (ties to the
                             lower shard index).  Inert outside fabric
                             traces.
``fabric_balance``           Fabric routing bookkeeping: the occupancy
                             vector each ``rebalance`` event reports
                             matches the per-shard event streams.
===========================  ========================================

Stateful monitors key their reference state by the event's
``component`` attribute, so a fabric trace interleaving N shards is
screened as N independent stores plus the two cross-shard checks; a
single-circuit trace (no ``component``) collapses to one key and
behaves exactly as before.

A :class:`MonitorSuite` is a :class:`~repro.obs.tracer.Tracer` observer:
attach it and every emitted event is screened *while the soak runs*.
Violations are recorded on the suite and — when the suite knows its
tracer — re-emitted as structured
:data:`~repro.obs.events.INVARIANT_KIND` events so they land in the
trace itself.

**Claim ordering.**  Monitors are evaluated in a fixed priority order
and the first one to flag an event *claims* it: later monitors do not
re-flag the same operation, so one faulty op produces exactly one
violation — the most specific diagnosis.  The claiming monitor never
absorbs the event into its own reference state (a misreported served
tag must not corrupt the monotonicity watermark and indict every later,
correct serve; it only *resyncs* where a ledger would otherwise drift),
while every other monitor still tracks the event normally so their
reference state follows reality through a fault someone else already
diagnosed.

The same monitors run offline over a loaded trace via
:func:`check_trace` — the engine behind ``repro analyze check``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from .events import INVARIANT_KIND, SPAN_KIND, TraceEvent

#: Registry name of the linked-list tag storage (paper Figs. 9/10).
STORAGE = "tag_storage"

#: Component label prefix of shard-local events in fabric traces.
_SHARD_PREFIX = "shard"


def _component(event: TraceEvent) -> str:
    """The emitting component: ``"shardN"`` in fabric traces, else ``""``.

    Stateful monitors key their reference state (occupancy ledger,
    serve watermark, live-tag sets) by component, so interleaved
    multi-store traces are screened per store — a single-circuit trace
    collapses to the one ``""`` key and behaves exactly as before.
    """
    return event.attrs.get("component", "")


def _shard_index(component: str) -> Optional[int]:
    """Parse ``"shardN"`` → ``N`` (None for non-shard components)."""
    if component.startswith(_SHARD_PREFIX):
        suffix = component[len(_SHARD_PREFIX):]
        if suffix.isdigit():
            return int(suffix)
    return None


@dataclass(frozen=True)
class MonitorConfig:
    """Architectural parameters the monitor bounds derive from."""

    levels: int = 3
    tag_space: int = 4096
    modular: bool = True
    eager_marker_removal: bool = False
    section_bits: int = 8
    branching_factor: int = 16

    @classmethod
    def from_circuit_config(cls, config: Dict[str, Any]) -> "MonitorConfig":
        """Build from a :meth:`TagSortRetrieveCircuit.describe` dict.

        Tolerates missing keys (older trace headers) by falling back to
        the paper-format defaults.
        """
        word_bits = int(config.get("word_bits", 12))
        literal_bits = int(config.get("literal_bits", 4))
        return cls(
            levels=int(config.get("levels", 3)),
            tag_space=int(config.get("tag_space", 1 << word_bits)),
            modular=bool(config.get("modular", True)),
            eager_marker_removal=bool(
                config.get("eager_marker_removal", False)
            ),
            section_bits=word_bits - literal_bits,
            branching_factor=int(
                config.get("branching_factor", 1 << literal_bits)
            ),
        )

    @property
    def dequeue_access_bound(self) -> int:
        """Worst-case accesses of one dequeue, from the architecture.

        Deferred (paper) mode: the head removal's 1R + 1W on the tag
        storage, nothing else.  Eager mode adds the translation-table
        invalidation (1R + 1W) and the marker removal's walk down the
        W/k-level tree (one read + one write per level).
        """
        bound = 2
        if self.eager_marker_removal:
            bound += 2 + 2 * self.levels
        return bound


@dataclass(frozen=True)
class Violation:
    """One observed break of a paper guarantee."""

    monitor: str
    seq: int
    kind: str
    message: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "monitor": self.monitor,
            "seq": self.seq,
            "kind": self.kind,
            "message": self.message,
            "attrs": dict(self.attrs),
        }

    def __str__(self) -> str:
        return f"[{self.monitor}] event #{self.seq} ({self.kind}): {self.message}"


def _storage_delta(event: TraceEvent):
    return event.deltas.get(STORAGE)


def _is_failed(event: TraceEvent) -> bool:
    return bool(event.attrs.get("failed"))


class _Monitor:
    """One invariant: a pure ``check`` plus a state-committing ``update``.

    The suite calls every monitor's :meth:`check` first; only when *no*
    monitor objects does any monitor :meth:`update` — a violating event
    never perturbs monitor state (see the claim-ordering note in the
    module docstring).
    """

    name = "monitor"

    def __init__(self, config: MonitorConfig) -> None:
        self.config = config

    def check(self, event: TraceEvent) -> Optional[str]:
        """Return a violation message, or None when the event conforms."""
        raise NotImplementedError

    def update(self, event: TraceEvent) -> None:
        """Absorb a conforming event into the monitor's state."""

    def on_violation(self, event: TraceEvent) -> None:
        """Resynchronize after claiming ``event`` (never absorb it).

        The default keeps the pre-violation state, so one glitch cannot
        poison the monitor's reference and indict later, correct
        operations.
        """


class InsertBudgetMonitor(_Monitor):
    """Fig. 9: insert ≤ 2 reads + 2 writes on the tag storage."""

    name = "insert_budget"

    def check(self, event: TraceEvent) -> Optional[str]:
        if event.kind in ("insert", "insert_dequeue") and event.deltas:
            delta = _storage_delta(event)
            if delta is None:
                return None
            if delta.reads > 2 or delta.writes > 2:
                return (
                    f"insert cost {delta.reads}R+{delta.writes}W on tag "
                    f"storage exceeds the fixed 2R+2W budget (Fig. 9)"
                )
        elif event.kind == SPAN_KIND and event.name == "insert_batch":
            # A batched run amortizes the finger walk's *reads* across
            # data-dependent distances, but the write budget is exact:
            # at most two storage writes per inserted tag.
            count = int(event.attrs.get("count", 0))
            delta = _storage_delta(event)
            if count and delta is not None and delta.writes > 2 * count:
                return (
                    f"insert_batch of {count} cost {delta.writes} storage "
                    f"writes, over the 2 writes/insert budget (Fig. 9)"
                )
        return None


class DequeueBoundMonitor(_Monitor):
    """Sort model: a dequeue is a bounded head removal, never a search."""

    name = "dequeue_bound"

    def check(self, event: TraceEvent) -> Optional[str]:
        bound = self.config.dequeue_access_bound
        if event.kind == "dequeue" and event.deltas:
            total = event.delta_total
            if total > bound:
                return (
                    f"dequeue cost {total} accesses, over the architectural "
                    f"bound of {bound} (fixed head removal, W/k tree)"
                )
        elif event.kind == SPAN_KIND and event.name == "dequeue_batch":
            count = int(event.attrs.get("count", 0))
            if count and event.delta_total > bound * count:
                return (
                    f"dequeue_batch of {count} cost {event.delta_total} "
                    f"accesses, over {bound}/dequeue "
                    f"({bound * count} total)"
                )
        return None


class HandleLivenessMonitor(_Monitor):
    """Dynamic updates only touch handles the event stream says are live.

    Tracks the live handle set per component from the op stream (an
    insert issues its address as a handle; a serve, remove, or retag
    retires it; a retag issues the new address).  A remove/retag naming
    an address outside that set is a stale or double-freed handle; one
    whose reported tag differs from the issuing insert's is aliasing a
    reused slot.  A component with no observed inserts yet is left
    unjudged (the trace may have started mid-stream from a restored
    checkpoint).
    """

    name = "handle_liveness"

    def __init__(self, config: MonitorConfig) -> None:
        super().__init__(config)
        #: per-component handle ledger: address -> tag at issue time
        self._handles: Dict[str, Dict[int, int]] = {}

    def check(self, event: TraceEvent) -> Optional[str]:
        if event.kind not in ("remove", "retag"):
            return None
        address = event.attrs.get("address")
        if address is None:
            return None
        ledger = self._handles.get(_component(event))
        if ledger is None:
            return None
        if address not in ledger:
            return (
                f"{event.kind} named handle {address} with no live "
                f"entry: the handle is stale, double-freed, or was "
                f"never issued"
            )
        tag = event.attrs.get("tag")
        if tag is not None and ledger[address] != tag:
            return (
                f"{event.kind} of handle {address} reported tag {tag} "
                f"but the handle was issued for tag {ledger[address]}: "
                f"a reused slot is being aliased"
            )
        return None

    def _ledger_for(self, event: TraceEvent) -> Dict[int, int]:
        component = _component(event)
        ledger = self._handles.get(component)
        if ledger is None:
            ledger = self._handles[component] = {}
        return ledger

    def update(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind not in (
            "insert",
            "dequeue",
            "insert_dequeue",
            "remove",
            "retag",
        ):
            return
        address = event.attrs.get("address")
        if kind == "insert":
            tag = event.attrs.get("tag")
            if address is not None and tag is not None:
                self._ledger_for(event)[address] = tag
        elif kind == "dequeue":
            if address is not None:
                self._ledger_for(event).pop(address, None)
        elif kind == "insert_dequeue":
            ledger = self._ledger_for(event)
            served_address = event.attrs.get("served_address")
            if served_address is not None:
                ledger.pop(served_address, None)
            tag = event.attrs.get("tag")
            if address is not None and tag is not None:
                ledger[address] = tag
        elif kind == "remove":
            if address is not None:
                self._ledger_for(event).pop(address, None)
        else:  # retag
            ledger = self._ledger_for(event)
            if address is not None:
                ledger.pop(address, None)
            new_address = event.attrs.get("new_address")
            new_tag = event.attrs.get("new_tag")
            if new_address is not None and new_tag is not None:
                ledger[new_address] = new_tag


class RemovalConservationMonitor(_Monitor):
    """Fig. 10 under removal: one slot freed, threading write performed."""

    name = "free_list_removal"

    def __init__(self, config: MonitorConfig) -> None:
        super().__init__(config)
        #: per-component (occupancy, free_list_depth) after the last
        #: event that reported both; None-dropped when a batched run
        #: (which reports no free-list depth) makes the depth unknown.
        self._state: Dict[str, tuple] = {}

    def check(self, event: TraceEvent) -> Optional[str]:
        if event.kind != "remove":
            return None
        if event.deltas:
            delta = _storage_delta(event)
            # Mid-list: splice + release; head: release only (the
            # departing link itself carries the new head).
            floor = 1 if event.attrs.get("head") else 2
            if delta is not None and delta.writes < floor:
                return (
                    f"remove made {delta.writes} storage write(s), "
                    f"under the {floor} required: the empty-list "
                    f"release was skipped (Fig. 10)"
                )
        previous = self._state.get(_component(event))
        occupancy = event.attrs.get("occupancy")
        depth = event.attrs.get("free_list_depth")
        if previous is not None and occupancy is not None and depth is not None:
            prev_occupancy, prev_depth = previous
            if occupancy != prev_occupancy - 1 or depth != prev_depth + 1:
                return (
                    f"remove moved occupancy {prev_occupancy}→{occupancy} "
                    f"and free-list depth {prev_depth}→{depth}; slot "
                    f"conservation requires −1/+1 (Fig. 10)"
                )
        return None

    def update(self, event: TraceEvent) -> None:
        occupancy = event.attrs.get("occupancy")
        depth = event.attrs.get("free_list_depth")
        component = _component(event)
        if occupancy is not None and depth is not None:
            self._state[component] = (occupancy, depth)
        elif occupancy is not None:
            # Occupancy moved but the free-list depth was not reported
            # (batched per-op events): the depth reference is stale.
            self._state.pop(component, None)

    def on_violation(self, event: TraceEvent) -> None:
        # Resync to the reported pair so one fault is one violation.
        self.update(event)


class FreeListConservationMonitor(_Monitor):
    """Fig. 10: slots conserved; every dequeue releases onto the empty list."""

    name = "free_list_conservation"

    _OCCUPANCY_STEP = {
        "insert": 1,
        "dequeue": -1,
        "insert_dequeue": 0,
        "remove": -1,
        "retag": 0,
    }

    def __init__(self, config: MonitorConfig) -> None:
        super().__init__(config)
        #: per-component occupancy ledger (fabric traces interleave
        #: shards; each shard's slots are conserved independently)
        self._expected: Dict[str, int] = {}

    def check(self, event: TraceEvent) -> Optional[str]:
        step = self._OCCUPANCY_STEP.get(event.kind)
        if step is not None:
            occupancy = event.attrs.get("occupancy")
            expected = self._expected.get(_component(event))
            if (
                occupancy is not None
                and expected is not None
                and occupancy != expected + step
            ):
                return (
                    f"occupancy {occupancy} after {event.kind}, expected "
                    f"{expected + step} (allocations − releases must "
                    f"equal the occupancy delta, Fig. 10)"
                )
        if event.kind == "dequeue" and event.deltas:
            # The freed link must be written onto the empty list — the
            # head read alone does not release the slot.
            delta = _storage_delta(event)
            if delta is not None and delta.writes < 1:
                return (
                    "dequeue freed a link with no storage write: the "
                    "empty-list release was skipped (Fig. 10)"
                )
        if event.kind == SPAN_KIND and event.name == "dequeue_batch":
            count = int(event.attrs.get("count", 0))
            delta = _storage_delta(event)
            if count and delta is not None and delta.writes < count:
                return (
                    f"dequeue_batch of {count} made only {delta.writes} "
                    f"storage writes: at least one empty-list release was "
                    f"skipped (Fig. 10)"
                )
        return None

    def update(self, event: TraceEvent) -> None:
        step = self._OCCUPANCY_STEP.get(event.kind)
        if step is None:
            return
        occupancy = event.attrs.get("occupancy")
        if occupancy is not None:
            self._expected[_component(event)] = occupancy

    def on_violation(self, event: TraceEvent) -> None:
        # Re-anchor the ledger to the observed occupancy so each later
        # operation is judged on its own delta, not on a flood of
        # mismatches descending from one bad op.
        occupancy = event.attrs.get("occupancy")
        if occupancy is not None:
            self._expected[_component(event)] = occupancy


class MonotonicityMonitor(_Monitor):
    """WFQ: served tags never go backwards between busy periods."""

    name = "serve_monotonic"

    def __init__(self, config: MonitorConfig) -> None:
        super().__init__(config)
        #: per-component serve watermark (each store in a multi-store
        #: trace serves monotonically on its own; the cross-shard order
        #: is the fabric-order monitor's job)
        self._last: Dict[str, int] = {}
        #: inactive for a non-modular eager circuit: that is the
        #: general-purpose priority-queue configuration, which drops the
        #: WFQ monotonicity requirement by design.
        self._active = config.modular or not config.eager_marker_removal

    def _served_tag(self, event: TraceEvent) -> Optional[int]:
        if event.kind == "dequeue":
            return event.attrs.get("tag")
        if event.kind == "insert_dequeue":
            return event.attrs.get("served_tag")
        return None

    def check(self, event: TraceEvent) -> Optional[str]:
        if not self._active:
            return None
        tag = self._served_tag(event)
        if tag is None:
            return None
        last = self._last.get(_component(event))
        if last is None:
            return None
        if self.config.modular:
            space = self.config.tag_space
            distance = (tag - last) % space
            if distance >= space // 2:
                return (
                    f"served tag {tag} is behind the previous serve "
                    f"{last} (wrapped distance {distance} ≥ "
                    f"{space // 2}): min-tag service went backwards"
                )
        elif tag < last:
            return (
                f"served tag {tag} below the previous serve {last}: "
                f"min-tag service went backwards"
            )
        return None

    def update(self, event: TraceEvent) -> None:
        if not self._active:
            return
        component = _component(event)
        if event.kind == "marker_flush":
            # A flush marks a drained circuit; the next busy period may
            # restart at lower tags.
            self._last.pop(component, None)
            return
        if event.kind == "remove" and event.attrs.get("occupancy") == 0:
            # A removal drained the circuit; like a served drain, the
            # next busy period may legitimately restart lower.
            self._last.pop(component, None)
            return
        tag = self._served_tag(event)
        if tag is not None:
            self._last[component] = tag
            if event.attrs.get("occupancy") == 0:
                # Drained: the watermark no longer binds future serves.
                self._last.pop(component, None)


class CoverageMonitor(_Monitor):
    """Figs. 6/11: serves, clears, and flushes only touch dead values."""

    name = "coverage"

    def __init__(self, config: MonitorConfig) -> None:
        super().__init__(config)
        #: per-component live-tag multiset (shards hold disjoint storage)
        self._live: Dict[str, Counter] = {}

    def _live_for(self, event: TraceEvent) -> Counter:
        component = _component(event)
        live = self._live.get(component)
        if live is None:
            live = self._live[component] = Counter()
        return live

    def check(self, event: TraceEvent) -> Optional[str]:
        live_tags = self._live_for(event)
        if event.kind == "dequeue":
            tag = event.attrs.get("tag")
            if tag is not None and live_tags[tag] <= 0:
                return (
                    f"served tag {tag} has no live insert: the head link "
                    f"or its translation entry points at a dead value"
                )
        elif event.kind == "insert_dequeue":
            tag = event.attrs.get("served_tag")
            if tag is not None and live_tags[tag] <= 0:
                return (
                    f"served tag {tag} has no live insert: the head link "
                    f"or its translation entry points at a dead value"
                )
        elif event.kind == "section_clear":
            literal = event.attrs.get("root_literal")
            if literal is not None:
                low = literal << self.config.section_bits
                high = low + (1 << self.config.section_bits)
                live = [
                    value
                    for value in live_tags
                    if low <= value < high and live_tags[value] > 0
                ]
                if live:
                    return (
                        f"section {literal} cleared while holding "
                        f"{len(live)} live value(s) (e.g. {min(live)}): "
                        f"the Fig. 6 wrap discipline was broken"
                    )
        elif event.kind == "marker_flush":
            live = sum(live_tags.values())
            if live:
                return (
                    f"marker flush with {live} live tag(s) in storage: "
                    f"initialization-mode reset outside an empty circuit"
                )
        return None

    def update(self, event: TraceEvent) -> None:
        live_tags = self._live_for(event)
        if event.kind == "insert":
            tag = event.attrs.get("tag")
            if tag is not None:
                live_tags[tag] += 1
        elif event.kind == "dequeue":
            tag = event.attrs.get("tag")
            if tag is not None:
                live_tags[tag] -= 1
                if live_tags[tag] <= 0:
                    del live_tags[tag]
        elif event.kind == "insert_dequeue":
            tag = event.attrs.get("tag")
            served = event.attrs.get("served_tag")
            if tag is not None:
                live_tags[tag] += 1
            if served is not None:
                live_tags[served] -= 1
                if live_tags[served] <= 0:
                    del live_tags[served]
        elif event.kind == "remove":
            tag = event.attrs.get("tag")
            if tag is not None:
                live_tags[tag] -= 1
                if live_tags[tag] <= 0:
                    del live_tags[tag]
        elif event.kind == "retag":
            tag = event.attrs.get("tag")
            new_tag = event.attrs.get("new_tag")
            if tag is not None:
                live_tags[tag] -= 1
                if live_tags[tag] <= 0:
                    del live_tags[tag]
            if new_tag is not None:
                live_tags[new_tag] += 1


class FabricOrderMonitor(_Monitor):
    """Fabric tournament correctness: every serve is the global minimum.

    Cross-shard counterpart of ``serve_monotonic``: a dequeue from shard
    X with tag T is legal only when no other shard holds a live tag that
    precedes T — ties allowed only when X has the lower shard index (the
    tournament's deterministic tie rule).  Inert outside fabric traces
    (it watches only events whose ``component`` is a ``shardN`` label),
    and no false positives from late low tags: an insert behind the
    global watermark raises each shard's *live set*, which is exactly
    what the check consults.
    """

    name = "fabric_tournament_order"

    def __init__(self, config: MonitorConfig) -> None:
        super().__init__(config)
        self._live: Dict[str, Counter] = {}

    def _precedes(self, a: int, b: int) -> bool:
        if self.config.modular:
            space = self.config.tag_space
            return (a - b) % space >= space // 2
        return a < b

    def check(self, event: TraceEvent) -> Optional[str]:
        if event.kind != "dequeue":
            return None
        component = _component(event)
        shard = _shard_index(component)
        tag = event.attrs.get("tag")
        if shard is None or tag is None:
            return None
        for other, live in self._live.items():
            other_shard = _shard_index(other)
            if other_shard is None or other_shard == shard:
                continue
            for value, count in live.items():
                if count <= 0:
                    continue
                if self._precedes(value, tag) or (
                    value == tag and other_shard < shard
                ):
                    return (
                        f"shard{shard} served tag {tag} while {other} "
                        f"held live tag {value}: the tournament did not "
                        f"select the global minimum"
                    )
        return None

    def update(self, event: TraceEvent) -> None:
        component = _component(event)
        if _shard_index(component) is None:
            return
        live = self._live.get(component)
        if live is None:
            live = self._live[component] = Counter()
        tag = event.attrs.get("tag")
        if event.kind == "insert":
            if tag is not None:
                live[tag] += 1
        elif event.kind == "dequeue":
            if tag is not None:
                live[tag] -= 1
                if live[tag] <= 0:
                    del live[tag]
        elif event.kind == "insert_dequeue":
            served = event.attrs.get("served_tag")
            if tag is not None:
                live[tag] += 1
            if served is not None:
                live[served] -= 1
                if live[served] <= 0:
                    del live[served]
        elif event.kind == "remove":
            if tag is not None:
                live[tag] -= 1
                if live[tag] <= 0:
                    del live[tag]
        elif event.kind == "retag":
            new_tag = event.attrs.get("new_tag")
            if tag is not None:
                live[tag] -= 1
                if live[tag] <= 0:
                    del live[tag]
            if new_tag is not None:
                live[new_tag] += 1


class FabricBalanceMonitor(_Monitor):
    """Fabric occupancy-balance bookkeeping stays consistent.

    Maintains a per-shard occupancy ledger from the shard-local op
    events (worker-mode batches, which emit no per-op events, advance
    the ledger via their ``shard_enqueue`` counts) and cross-checks the
    occupancy vector every ``rebalance`` event reports.  A mismatch
    means the fabric's balance decisions were taken on occupancies that
    do not match what the shards actually did — routing state drift.
    Inert outside fabric traces.
    """

    name = "fabric_balance"

    _STEP_KINDS = ("insert", "dequeue", "insert_dequeue", "remove", "retag")

    def __init__(self, config: MonitorConfig) -> None:
        super().__init__(config)
        self._ledger: Dict[int, int] = {}

    def check(self, event: TraceEvent) -> Optional[str]:
        if event.kind != "rebalance":
            return None
        occupancies = event.attrs.get("occupancies")
        if not occupancies:
            return None
        for shard, occupancy in enumerate(occupancies):
            known = self._ledger.get(shard)
            if known is not None and known != occupancy:
                return (
                    f"rebalance reported occupancy {occupancy} for "
                    f"shard{shard} but its event stream accounts for "
                    f"{known}: balance decisions drifted from shard state"
                )
        return None

    def update(self, event: TraceEvent) -> None:
        if event.kind in self._STEP_KINDS:
            shard = _shard_index(_component(event))
            occupancy = event.attrs.get("occupancy")
            if shard is not None and occupancy is not None:
                self._ledger[shard] = occupancy
        elif event.kind == "shard_enqueue" and event.attrs.get("worker"):
            # Worker-mode batches run out of process: no per-op events,
            # so the batch count advances the ledger instead.  A shard
            # never seen before stays unknown (we cannot assume it was
            # empty — the fabric may have been restored mid-run).
            shard = event.attrs.get("shard")
            count = event.attrs.get("count")
            if shard in self._ledger and count is not None:
                self._ledger[shard] += int(count)

    def on_violation(self, event: TraceEvent) -> None:
        # Resync to the reported vector so one drift is one violation.
        occupancies = event.attrs.get("occupancies") or []
        for shard, occupancy in enumerate(occupancies):
            if shard in self._ledger:
                self._ledger[shard] = occupancy


#: Evaluation order: the most specific diagnosis claims the event.
MONITOR_CLASSES = (
    InsertBudgetMonitor,
    DequeueBoundMonitor,
    HandleLivenessMonitor,
    RemovalConservationMonitor,
    FreeListConservationMonitor,
    MonotonicityMonitor,
    CoverageMonitor,
    FabricOrderMonitor,
    FabricBalanceMonitor,
)


class MonitorSuite:
    """All invariant monitors behind one tracer-observer callable.

    Attach to a :class:`~repro.obs.tracer.Tracer` via ``observers=`` (or
    :meth:`Tracer.add_observer`); pass the tracer back via ``tracer=``
    so each violation is also re-emitted into the trace as an
    :data:`~repro.obs.events.INVARIANT_KIND` event.
    """

    def __init__(
        self, config: Optional[MonitorConfig] = None, *, tracer=None
    ) -> None:
        self.config = config if config is not None else MonitorConfig()
        self.monitors: List[_Monitor] = [
            cls(self.config) for cls in MONITOR_CLASSES
        ]
        self.violations: List[Violation] = []
        self.checked = 0
        self._tracer = tracer

    @classmethod
    def for_circuit(cls, circuit, *, tracer=None) -> "MonitorSuite":
        """Configure from a live :class:`TagSortRetrieveCircuit`."""
        return cls(
            MonitorConfig.from_circuit_config(circuit.describe()),
            tracer=tracer,
        )

    @classmethod
    def from_header(
        cls, header: Optional[Dict[str, Any]], *, tracer=None
    ) -> "MonitorSuite":
        """Configure from a JSONL trace-header record (offline checks).

        An absent or config-less header falls back to the paper-format
        defaults.
        """
        config = (header or {}).get("config") or {}
        return cls(MonitorConfig.from_circuit_config(config), tracer=tracer)

    def __call__(self, event: TraceEvent) -> None:
        """Screen one event (the tracer-observer entry point)."""
        if event.kind == INVARIANT_KIND or _is_failed(event):
            # Never re-screen our own reports; an op that raised is a
            # caller protocol error, not a broken hardware guarantee.
            return
        self.checked += 1
        claimer: Optional[_Monitor] = None
        message: Optional[str] = None
        for monitor in self.monitors:
            message = monitor.check(event)
            if message is not None:
                claimer = monitor
                break
        if claimer is not None:
            self._report(claimer, event, message)
        # Every monitor except the claimer absorbs the event: the other
        # guarantees' reference state (occupancy ledger, live-tag set,
        # serve watermark) must track reality even through a fault that
        # one monitor already diagnosed.  The claimer only resyncs.
        for monitor in self.monitors:
            if monitor is claimer:
                monitor.on_violation(event)
            else:
                monitor.update(event)

    def _report(
        self, monitor: _Monitor, event: TraceEvent, message: Optional[str]
    ) -> None:
        assert message is not None
        violation = Violation(
            monitor=monitor.name,
            seq=event.seq,
            kind=event.kind,
            message=message,
            attrs={
                key: event.attrs[key]
                for key in (
                    "tag",
                    "served_tag",
                    "root_literal",
                    "count",
                    "component",
                    "shard",
                    "address",
                    "new_tag",
                    "new_address",
                    "head",
                )
                if key in event.attrs
            },
        )
        self.violations.append(violation)
        if self._tracer is not None:
            extra = {}
            component = event.attrs.get("component")
            if component is not None:
                extra["component"] = component
            self._tracer.event(
                INVARIANT_KIND,
                name=monitor.name,
                monitor=monitor.name,
                offender_seq=event.seq,
                offender_kind=event.kind,
                message=message,
                **extra,
            )

    @property
    def ok(self) -> bool:
        """True while no guarantee has been observed broken."""
        return not self.violations

    def counts_by_monitor(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.monitor] = counts.get(violation.monitor, 0) + 1
        return counts

    def summary(self) -> str:
        """One-paragraph verdict for reports and CLI output."""
        if self.ok:
            return (
                f"invariants OK: {self.checked} events screened by "
                f"{len(self.monitors)} monitors, 0 violations"
            )
        lines = [
            f"invariants VIOLATED: {len(self.violations)} violation(s) "
            f"over {self.checked} screened events"
        ]
        for name, count in sorted(self.counts_by_monitor().items()):
            lines.append(f"  {name}: {count}")
        for violation in self.violations[:10]:
            lines.append(f"  {violation}")
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)


def check_trace(
    events: Iterable[TraceEvent],
    *,
    header: Optional[Dict[str, Any]] = None,
    config: Optional[MonitorConfig] = None,
) -> MonitorSuite:
    """Replay a loaded trace through a fresh :class:`MonitorSuite`.

    ``config`` wins over ``header``; with neither, paper-format defaults
    apply.  Returns the suite (inspect ``.violations`` / ``.summary()``).
    """
    if config is not None:
        suite = MonitorSuite(config)
    else:
        suite = MonitorSuite.from_header(header)
    for event in events:
        suite(event)
    return suite
