"""Chrome trace-event (Perfetto-loadable) export of a JSONL trace.

Converts an event trace into the Trace Event Format JSON that
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* every logical operation is a complete (``"X"``) slice on the **ops**
  thread, with its duration in modeled clock cycles;
* maintenance activity (Fig. 6 section clears, marker flushes, clamps)
  gets its own **maintenance** thread, duration = its attributed memory
  accesses (one access per cycle in the modeled SRAM);
* batch spans render on the **batch** thread, stretching from their
  first child to their close plus the span's own amortized self-cost,
  so amortization is *visible* — a wide batch slice over a run of
  fixed-width op slices;
* ``occupancy`` and ``free_list_depth`` become counter (``"C"``) tracks;
* invariant violations render as instant (``"i"``) markers;
* events stamped with a ``component`` attr (per-shard fabric views,
  ingested worker events) get their own synthetic *process* per
  component — ``shard0``, ``shard1``, ``fabric``, ... — each with the
  same ops/maintenance/batch thread trio and its own counter tracks, so
  a sharded trace renders as side-by-side per-shard lanes.  Traces with
  no component stamps produce exactly the single-process document they
  always did.

The timeline runs on a **synthetic clock**: the modeled circuit is
fully deterministic, so the x-axis is cumulative modeled cycles (μs in
the viewer = cycles here), not wall time.  Timestamps are emitted in
non-decreasing order within every pid/tid by construction — a single
monotone clock drives every track.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .events import INVARIANT_KIND, OP_KINDS, SPAN_KIND, TraceEvent

#: One synthetic process for the circuit, three threads + counters.
PID = 1
TID_OPS = 1
TID_MAINTENANCE = 2
TID_BATCH = 3

#: Counter-valued per-op attributes promoted to counter tracks.
_COUNTER_ATTRS = ("occupancy", "free_list_depth")

#: Op-event attributes copied into slice args.
_ARG_ATTRS = (
    "tag",
    "served_tag",
    "address",
    "count",
    "root_literal",
    "purged",
    "used_backup",
    "monitor",
    "message",
)


def _args(event: TraceEvent) -> Dict[str, Any]:
    args: Dict[str, Any] = {"seq": event.seq}
    for key in _ARG_ATTRS:
        if key in event.attrs:
            args[key] = event.attrs[key]
    if event.deltas:
        args["accesses"] = event.delta_total
    return args


def build_timeline(
    events: Sequence[TraceEvent],
    *,
    header: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Fold a loaded trace into a Trace Event Format document."""
    trace_events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": PID,
            "name": "process_name",
            "args": {"name": "sort_retrieve_circuit"},
        },
        {
            "ph": "M",
            "pid": PID,
            "tid": TID_OPS,
            "name": "thread_name",
            "args": {"name": "ops"},
        },
        {
            "ph": "M",
            "pid": PID,
            "tid": TID_MAINTENANCE,
            "name": "thread_name",
            "args": {"name": "maintenance"},
        },
        {
            "ph": "M",
            "pid": PID,
            "tid": TID_BATCH,
            "name": "thread_name",
            "args": {"name": "batch spans"},
        },
    ]

    clock = 0
    #: open span id -> clock at its first observed child
    span_start: Dict[int, int] = {}
    #: component attr -> synthetic pid (lazily allocated; pid 1 stays
    #: the unstamped process, so component-free traces are unchanged)
    component_pids: Dict[str, int] = {}

    def pid_for(event: TraceEvent) -> int:
        component = event.attrs.get("component")
        if component is None:
            return PID
        component = str(component)
        pid = component_pids.get(component)
        if pid is None:
            pid = PID + 1 + len(component_pids)
            component_pids[component] = pid
            trace_events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "name": "process_name",
                    "args": {"name": component},
                }
            )
            for tid, label in (
                (TID_OPS, "ops"),
                (TID_MAINTENANCE, "maintenance"),
                (TID_BATCH, "batch spans"),
            ):
                trace_events.append(
                    {
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "name": "thread_name",
                        "args": {"name": label},
                    }
                )
        return pid

    def emit_counters(event: TraceEvent, ts: int, pid: int) -> None:
        for name in _COUNTER_ATTRS:
            if name in event.attrs:
                trace_events.append(
                    {
                        "ph": "C",
                        "pid": pid,
                        "name": name,
                        "ts": ts,
                        "args": {name: event.attrs[name]},
                    }
                )

    for event in events:
        if event.span_id is not None and event.span_id not in span_start:
            span_start[event.span_id] = clock
        pid = pid_for(event)

        if event.kind == SPAN_KIND:
            own_id = event.attrs.get("span")
            start = (
                span_start.pop(own_id, clock) if own_id is not None else clock
            )
            # The span's own amortized work occupies the tail, after
            # the children it paid for.
            end = clock + event.delta_total
            trace_events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": TID_BATCH,
                    "name": event.name,
                    "ts": start,
                    "dur": end - start,
                    "args": _args(event),
                }
            )
            clock = end
        elif event.kind in OP_KINDS:
            duration = int(event.attrs.get("cycles", 0)) or max(
                event.delta_total, 1
            )
            trace_events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": TID_OPS,
                    "name": event.name,
                    "ts": clock,
                    "dur": duration,
                    "args": _args(event),
                }
            )
            clock += duration
            emit_counters(event, clock, pid)
        elif event.kind == INVARIANT_KIND:
            trace_events.append(
                {
                    "ph": "i",
                    "pid": pid,
                    "tid": TID_OPS,
                    "name": f"violation:{event.name}",
                    "ts": clock,
                    "s": "p",
                    "args": _args(event),
                }
            )
        else:  # maintenance: section_clear, marker_flush, clamp, ...
            duration = event.delta_total
            trace_events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": TID_MAINTENANCE,
                    "name": event.name,
                    "ts": clock,
                    "dur": duration,
                    "args": _args(event),
                }
            )
            clock += duration

    document: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "modeled cycles (synthetic, deterministic)",
            "source": "repro.obs.timeline",
        },
    }
    if header is not None:
        document["otherData"]["trace_header"] = header
    return document


def write_timeline(
    events: Sequence[TraceEvent],
    destination: str,
    *,
    header: Optional[Dict[str, Any]] = None,
) -> int:
    """Write the Perfetto JSON for ``events``; returns slice count."""
    document = build_timeline(events, header=header)
    with open(destination, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return len(document["traceEvents"])
