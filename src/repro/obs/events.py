"""Structured trace events — the software logic-analyzer sample format.

One :class:`TraceEvent` is one probe sample: a circuit operation, a
maintenance action (section clear, marker flush, clamp), or a closed
span.  Events carry *per-structure* read/write deltas keyed by the
:class:`~repro.hwsim.stats.StatsRegistry` names, so a trace can be
reconciled exactly against the registry totals (the sum of every event's
deltas over a traced window equals the registry delta over that window —
see :meth:`repro.obs.tracer.Tracer.attributed_totals`).

The JSONL schema (documented in DESIGN.md) is the :meth:`TraceEvent.to_dict`
output: stable keys, no nesting deeper than the ``deltas`` map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..hwsim.stats import AccessStats

#: Event kinds emitted by the traced circuit / store / scheduler stack.
#: Op kinds (one logical circuit operation each):
OP_KINDS = ("insert", "dequeue", "insert_dequeue")
#: Maintenance kinds (wrap discipline, backup paths):
MAINTENANCE_KINDS = ("section_clear", "marker_flush", "clamp")
#: Structural kind closing a nested span:
SPAN_KIND = "span"


@dataclass
class TraceEvent:
    """One telemetry sample.

    Attributes:
        seq: monotone emission index (0-based, per tracer).
        kind: one of :data:`OP_KINDS`, :data:`MAINTENANCE_KINDS`, or
            :data:`SPAN_KIND`.
        name: human label — the op kind again for ops, the span name for
            spans.
        span_id: id of the enclosing open span, or ``None`` at top level.
        deltas: per-structure memory-traffic attribution for this event
            *alone* (span events carry only traffic not already
            attributed to their children).
        attrs: kind-specific payload (tag, address, cycles, occupancy,
            used_backup, purged, ...).
    """

    seq: int
    kind: str
    name: str
    span_id: Optional[int] = None
    deltas: Dict[str, AccessStats] = field(default_factory=dict)
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def delta_reads(self) -> int:
        """Summed reads attributed to this event."""
        return sum(delta.reads for delta in self.deltas.values())

    @property
    def delta_writes(self) -> int:
        """Summed writes attributed to this event."""
        return sum(delta.writes for delta in self.deltas.values())

    @property
    def delta_total(self) -> int:
        """Summed accesses (reads + writes) attributed to this event."""
        return self.delta_reads + self.delta_writes

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict in the documented JSONL schema."""
        record: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
        }
        if self.span_id is not None:
            record["span_id"] = self.span_id
        if self.deltas:
            record["deltas"] = {
                name: delta.to_dict() for name, delta in self.deltas.items()
            }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        """Rebuild an event from its :meth:`to_dict` form (JSONL replay)."""
        deltas = {
            name: AccessStats(reads=entry["reads"], writes=entry["writes"])
            for name, entry in record.get("deltas", {}).items()
        }
        return cls(
            seq=record["seq"],
            kind=record["kind"],
            name=record["name"],
            span_id=record.get("span_id"),
            deltas=deltas,
            attrs=dict(record.get("attrs", {})),
        )
