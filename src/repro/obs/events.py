"""Structured trace events — the software logic-analyzer sample format.

One :class:`TraceEvent` is one probe sample: a circuit operation, a
maintenance action (section clear, marker flush, clamp), or a closed
span.  Events carry *per-structure* read/write deltas keyed by the
:class:`~repro.hwsim.stats.StatsRegistry` names, so a trace can be
reconciled exactly against the registry totals (the sum of every event's
deltas over a traced window equals the registry delta over that window —
see :meth:`repro.obs.tracer.Tracer.attributed_totals`).

The JSONL schema (documented in DESIGN.md) is the :meth:`TraceEvent.to_dict`
output: stable keys, no nesting deeper than the ``deltas`` map.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..hwsim.stats import AccessStats

#: Event kinds emitted by the traced circuit / store / scheduler stack.
#: Op kinds (one logical circuit operation each):
OP_KINDS = ("insert", "dequeue", "insert_dequeue")
#: Maintenance kinds (wrap discipline, backup paths):
MAINTENANCE_KINDS = ("section_clear", "marker_flush", "clamp")
#: Structural kind closing a nested span:
SPAN_KIND = "span"
#: Kind emitted by the online invariant monitors when a paper guarantee
#: is observed broken (:mod:`repro.obs.monitors`).
INVARIANT_KIND = "invariant_violation"
#: Kinds emitted by the sharded scheduling fabric (:mod:`repro.fabric`):
#: flow-to-shard routing, tournament winner selection, online
#: rebalancing (plus the backlog migration it triggers), and overflow
#: spill-to-neighbor.  Shard-local circuit events keep the
#: :data:`OP_KINDS` above and carry a ``component`` attribute naming
#: their shard.
FABRIC_KINDS = (
    "shard_enqueue",
    "tournament_select",
    "rebalance",
    "shard_migrate",
    "spill",
)
#: Kinds emitted by the live observability plane: an SLO rule breached
#: for the first time (:mod:`repro.obs.slo`) and a stall detected by the
#: progress watchdog (:mod:`repro.obs.flight`).  Both are telemetry
#: verdicts like :data:`INVARIANT_KIND` — monitors skip them on replay.
SLO_KIND = "slo_violation"
WATCHDOG_KIND = "watchdog_stall"
LIVE_KINDS = (SLO_KIND, WATCHDOG_KIND)

#: JSONL trace framing records (not :class:`TraceEvent` samples): the
#: header is the first line of a versioned trace and carries the schema
#: version, workload seed, circuit config, and drive mode; the footer is
#: the last line and carries the emitted/dropped totals a reader needs
#: to detect a lossy or truncated file.
HEADER_KIND = "trace_header"
FOOTER_KIND = "trace_footer"
FRAMING_KINDS = (HEADER_KIND, FOOTER_KIND)

#: Version of the JSONL trace framing (header/footer records).  Bump on
#: any incompatible change to the header layout; event records carry no
#: per-line version (readers must tolerate unknown fields instead).
TRACE_SCHEMA = 1


def build_trace_header(
    *,
    seed: int,
    mode: str,
    config: Dict[str, Any],
    **extra: Any,
) -> Dict[str, Any]:
    """The JSONL trace header record (first line of a versioned trace).

    ``mode`` is ``"per_op"`` or ``"batched"``; ``config`` describes the
    traced circuit (word format, capacity, granularity, marker mode) —
    :meth:`repro.net.hardware_store.HardwareTagStore.describe` produces
    the canonical form.  ``extra`` lands verbatim in the record (ops,
    labels); readers must tolerate fields they do not know.
    """
    record: Dict[str, Any] = {
        "kind": HEADER_KIND,
        "schema": TRACE_SCHEMA,
        "seed": seed,
        "mode": mode,
        "config": dict(config),
    }
    record.update(extra)
    return record


class TraceEvent:
    """One telemetry sample.

    A ``__slots__`` plain class rather than a dataclass: one instance is
    allocated per traced circuit operation, so the per-event ``__dict__``
    is measurable overhead on the hot path (and 3.9-compatible
    dataclasses cannot drop it).

    Attributes:
        seq: monotone emission index (0-based, per tracer).
        kind: one of :data:`OP_KINDS`, :data:`MAINTENANCE_KINDS`, or
            :data:`SPAN_KIND`.
        name: human label — the op kind again for ops, the span name for
            spans.
        span_id: id of the enclosing open span, or ``None`` at top level.
        deltas: per-structure memory-traffic attribution for this event
            *alone* (span events carry only traffic not already
            attributed to their children).
        attrs: kind-specific payload (tag, address, cycles, occupancy,
            used_backup, purged, ...).
    """

    __slots__ = ("seq", "kind", "name", "span_id", "deltas", "attrs")

    def __init__(
        self,
        seq: int,
        kind: str,
        name: str,
        span_id: Optional[int] = None,
        deltas: Optional[Dict[str, AccessStats]] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.seq = seq
        self.kind = kind
        self.name = name
        self.span_id = span_id
        self.deltas = {} if deltas is None else deltas
        self.attrs = {} if attrs is None else attrs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot)
            for slot in self.__slots__
        )

    def __repr__(self) -> str:
        body = ", ".join(
            f"{slot}={getattr(self, slot)!r}" for slot in self.__slots__
        )
        return f"TraceEvent({body})"

    @property
    def delta_reads(self) -> int:
        """Summed reads attributed to this event."""
        return sum(delta.reads for delta in self.deltas.values())

    @property
    def delta_writes(self) -> int:
        """Summed writes attributed to this event."""
        return sum(delta.writes for delta in self.deltas.values())

    @property
    def delta_total(self) -> int:
        """Summed accesses (reads + writes) attributed to this event."""
        return self.delta_reads + self.delta_writes

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict in the documented JSONL schema."""
        record: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
        }
        if self.span_id is not None:
            record["span_id"] = self.span_id
        if self.deltas:
            record["deltas"] = {
                name: delta.to_dict() for name, delta in self.deltas.items()
            }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        """Rebuild an event from its :meth:`to_dict` form (JSONL replay).

        Tolerant by design: unknown top-level or delta fields are
        ignored and missing delta counters default to zero, so a reader
        at trace schema N can load traces written at schema N+1.
        """
        deltas = {
            name: AccessStats(
                reads=int(entry.get("reads", 0)),
                writes=int(entry.get("writes", 0)),
            )
            for name, entry in record.get("deltas", {}).items()
        }
        return cls(
            seq=int(record.get("seq", 0)),
            kind=record["kind"],
            name=record.get("name", record["kind"]),
            span_id=record.get("span_id"),
            deltas=deltas,
            attrs=dict(record.get("attrs", {})),
        )

    def to_json(self) -> str:
        """One compact JSON line (the JSONL wire form)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        """Inverse of :meth:`to_json`, with :meth:`from_dict` tolerance."""
        return cls.from_dict(json.loads(line))
