"""Live observability plane: metrics server + windowed collector.

Everything in :mod:`repro.obs` so far is post-hoc — inspectable only
after a batch soak finishes.  This module makes the same telemetry
*scrapeable while the run is in flight*:

* :class:`MetricsServer` — a stdlib :mod:`http.server` background
  thread serving three endpoints from any running soak / system /
  fabric:

  - ``/metrics`` — Prometheus text exposition
    (:func:`~repro.obs.exporters.prometheus_snapshot` over the run's
    instruments plus the live rollup gauges);
  - ``/health`` — JSON liveness: monitor status, occupancy, free-list
    depth, uptime, watchdog heartbeat (HTTP 503 once a violation or
    stall is latched);
  - ``/snapshot`` — JSON dump of instrument summaries, registry
    totals, and recent windows.

* :class:`WindowedCollector` — a periodic sampler turning instrument
  deltas into per-interval rollups (ops/s, p50/p99 op cycles,
  occupancy) exported as ``live_*`` time-series gauges, and feeding the
  :class:`~repro.obs.flight.StallWatchdog` a progress reading.

* :class:`LivePlane` — the bundle the runners attach: collector +
  optional server + optional watchdog/flight-recorder wiring, with a
  single ``start()`` / ``finish()`` lifecycle.

Thread-safety model (documented, deliberate): the hot path is never
locked.  Collector and HTTP threads only *read* shared structures under
the GIL; a read racing a dict resize surfaces as ``RuntimeError``, which
renders retry and the collector counts as a skipped tick.  Trace events
are emitted from the collector thread only on a watchdog stall — safe by
construction, because a stall means the owning thread is making no
progress (and therefore not emitting).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from .events import OP_KINDS, WATCHDOG_KIND
from .exporters import prometheus_snapshot
from .flight import FlightRecorder, StallWatchdog
from .instruments import Gauge, Histogram, InstrumentSet

#: Default collector cadence, seconds.
DEFAULT_INTERVAL = 0.5
#: Windows kept for /snapshot (the time series the gauges summarize).
DEFAULT_HISTORY = 120


def jain_fairness(values) -> float:
    """Jain's fairness index over per-shard quantities.

    ``(Σx)² / (n · Σx²)`` — 1.0 when perfectly balanced, → 1/n when one
    shard takes everything.  An all-zero window counts as perfectly
    fair (nothing was served, nothing was unfair).
    """
    values = [float(v) for v in values]
    if not values:
        return 1.0
    square_sum = sum(v * v for v in values)
    if square_sum <= 0.0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


class WindowedCollector:
    """Periodic rollups: instrument deltas → per-interval gauges.

    Runs its own daemon thread; every ``interval`` seconds it diffs the
    watched instruments against the previous tick and publishes the
    window's rates and percentiles into ``live`` (a separate
    :class:`InstrumentSet`, so collector writes never contend with the
    hot path's instrument dict).
    """

    def __init__(
        self,
        instruments: InstrumentSet,
        *,
        live: Optional[InstrumentSet] = None,
        interval: float = DEFAULT_INTERVAL,
        history: int = DEFAULT_HISTORY,
        progress: Optional[Callable[[], float]] = None,
        occupancy: Optional[Callable[[], float]] = None,
        shard_occupancies: Optional[Callable[[], List[float]]] = None,
        watchdog: Optional[StallWatchdog] = None,
        on_stall: Optional[Callable[[StallWatchdog], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._instruments = instruments
        self.live = live if live is not None else InstrumentSet()
        self.interval = interval
        self.windows: deque = deque(maxlen=history)
        self._progress = progress
        self._occupancy = occupancy
        self._shard_occupancies = shard_occupancies
        self.watchdog = watchdog
        self._on_stall = on_stall
        self._clock = clock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._last_tick: Optional[float] = None
        self._last_ops: Optional[float] = None
        self._last_events: Optional[float] = None
        self._last_progress: Optional[float] = None
        self._cycles_snapshot: Optional[Histogram] = None
        self._last_shard_ops: Dict[str, float] = {}
        self._shard_cycle_snapshots: Dict[str, Histogram] = {}
        self.ticks = 0
        self.skipped = 0

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("collector already started")
        self._started_at = self._clock()
        self._last_tick = self._started_at
        self._thread = threading.Thread(
            target=self._run, name="repro-live-collector", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    def finish(self) -> None:
        """Stop the thread and take one final closing window."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.watchdog is not None:
            self.watchdog.disarm()
        self.tick()

    @property
    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return max(0.0, self._clock() - self._started_at)

    # ------------------------------------------------------------------
    # sampling

    def _read_op_counts(self) -> Tuple[float, float]:
        """(op events, all events) from the ``events_*`` counters."""
        ops = 0.0
        events = 0.0
        for name, instrument in list(self._instruments.items()):
            if not name.startswith("events_"):
                continue
            value = getattr(instrument, "value", None)
            if value is None:
                continue
            events += value
            if name[len("events_"):] in OP_KINDS:
                ops += value
        return ops, events

    def _read_shard_op_counts(self) -> Dict[str, float]:
        """Per-shard op totals from the ``shard``-labeled counters.

        The standard probes record every component-stamped op event
        twice — unlabeled and under its shard label — so these sum to
        the aggregate :meth:`_read_op_counts` ops reading exactly.
        """
        by_shard: Dict[str, float] = {}
        for name in list(self._instruments.names()):
            if not name.startswith("events_"):
                continue
            if name[len("events_"):] not in OP_KINDS:
                continue
            for key, instrument in self._instruments.series(name).items():
                shard = dict(key).get("shard")
                if shard is None:
                    continue
                value = getattr(instrument, "value", None)
                if value is not None:
                    by_shard[shard] = by_shard.get(shard, 0.0) + value
        return by_shard

    def tick(self) -> None:
        """Take one window.  Never raises: a racy read skips the tick."""
        try:
            self._tick_inner()
        except RuntimeError:
            # A dict resized under us (hot path registered a new
            # instrument mid-read).  Skip the window; the next one will
            # catch up because rates are computed against absolutes.
            self.skipped += 1
            self.live.counter("live_ticks_skipped_total").inc()

    def _tick_inner(self) -> None:
        now = self._clock()
        last = self._last_tick if self._last_tick is not None else now
        duration = max(now - last, 1e-9)
        self._last_tick = now

        ops, events = self._read_op_counts()
        ops_delta = ops - (self._last_ops if self._last_ops else 0.0)
        events_delta = events - (
            self._last_events if self._last_events else 0.0
        )
        self._last_ops = ops
        self._last_events = events

        progress_value: Optional[float] = None
        accesses_delta = 0.0
        if self._progress is not None:
            progress_value = float(self._progress())
            accesses_delta = progress_value - (
                self._last_progress if self._last_progress else 0.0
            )
            self._last_progress = progress_value

        p50 = p99 = 0.0
        if "op_cycles" in self._instruments:
            cycles = self._instruments["op_cycles"]
            if isinstance(cycles, Histogram):
                current = cycles.snapshot()
                if self._cycles_snapshot is not None:
                    delta = current.delta_since(self._cycles_snapshot)
                    if delta.count:
                        p50 = delta.percentile(50)
                        p99 = delta.percentile(99)
                self._cycles_snapshot = current

        occupancy: Optional[float] = None
        if self._occupancy is not None:
            occupancy = float(self._occupancy())
        elif "occupancy_now" in self._instruments:
            gauge = self._instruments["occupancy_now"]
            if isinstance(gauge, Gauge):
                occupancy = gauge.value

        window = {
            "t": round(self.uptime_seconds, 6),
            "duration": round(duration, 6),
            "ops": ops_delta,
            "ops_per_second": round(ops_delta / duration, 3),
            "events": events_delta,
            "accesses": accesses_delta,
            "accesses_per_second": round(accesses_delta / duration, 3),
            "p50_op_cycles": p50,
            "p99_op_cycles": p99,
            "occupancy": occupancy,
        }
        self.windows.append(window)
        self.ticks += 1

        live = self.live
        live.counter("live_windows_total").inc()
        live.gauge("live_window_seconds").set(round(duration, 6))
        live.gauge("live_uptime_seconds").set(round(self.uptime_seconds, 3))
        live.gauge("live_ops_per_second").set(window["ops_per_second"])
        live.gauge("live_events_per_second").set(
            round(events_delta / duration, 3)
        )
        live.gauge("live_accesses_per_second").set(
            window["accesses_per_second"]
        )
        live.gauge("live_p50_op_cycles").set(p50)
        live.gauge("live_p99_op_cycles").set(p99)
        if occupancy is not None:
            live.gauge("live_occupancy").set(occupancy)

        self._tick_shards(window, duration)

        watchdog = self.watchdog
        if watchdog is not None and progress_value is not None:
            self._tick_watchdog(watchdog, progress_value)

    def _tick_shards(self, window: Dict[str, Any], duration: float) -> None:
        """Per-shard window rollups plus the fleet-skew gauges.

        Publishes ``live_ops_per_second{shard=N}``,
        ``live_p50/p99_op_cycles{shard=N}``, ``live_occupancy{shard=N}``,
        and two skew summaries: ``live_occupancy_skew`` (max/mean
        occupancy ratio, 1.0 = balanced) and
        ``live_throughput_fairness`` (Jain's index over the window's
        per-shard op deltas).  No-ops entirely on unsharded runs —
        single-circuit soaks pay nothing here.
        """
        if (
            not self._instruments.has_labeled_series
            and self._shard_occupancies is None
        ):
            return
        live = self.live
        shard_totals = self._read_shard_op_counts()
        shard_windows: Dict[str, Dict[str, float]] = {}
        ops_deltas: List[float] = []
        for shard in sorted(shard_totals):
            total = shard_totals[shard]
            delta = total - self._last_shard_ops.get(shard, 0.0)
            self._last_shard_ops[shard] = total
            rate = round(delta / duration, 3)
            live.gauge("live_ops_per_second", labels={"shard": shard}).set(
                rate
            )
            ops_deltas.append(delta)
            shard_windows[shard] = {"ops": delta, "ops_per_second": rate}

        for key, hist in self._instruments.series("op_cycles").items():
            shard = dict(key).get("shard")
            if shard is None or not isinstance(hist, Histogram):
                continue
            current = hist.snapshot()
            earlier = self._shard_cycle_snapshots.get(shard)
            shard_p50 = shard_p99 = 0.0
            if earlier is not None:
                delta = current.delta_since(earlier)
                if delta.count:
                    shard_p50 = delta.percentile(50)
                    shard_p99 = delta.percentile(99)
            self._shard_cycle_snapshots[shard] = current
            live.gauge("live_p50_op_cycles", labels={"shard": shard}).set(
                shard_p50
            )
            live.gauge("live_p99_op_cycles", labels={"shard": shard}).set(
                shard_p99
            )
            if shard in shard_windows:
                shard_windows[shard]["p99_op_cycles"] = shard_p99

        occupancies: Optional[List[float]] = None
        if self._shard_occupancies is not None:
            occupancies = [float(v) for v in self._shard_occupancies()]
            for index, level in enumerate(occupancies):
                live.gauge(
                    "live_occupancy", labels={"shard": str(index)}
                ).set(level)
                shard_windows.setdefault(str(index), {})[
                    "occupancy"
                ] = level
        elif shard_totals:
            occupancies = []
            for key, gauge in self._instruments.series(
                "occupancy_now"
            ).items():
                shard = dict(key).get("shard")
                if shard is None or not isinstance(gauge, Gauge):
                    continue
                occupancies.append(gauge.value)
                live.gauge("live_occupancy", labels={"shard": shard}).set(
                    gauge.value
                )

        if occupancies:
            mean = sum(occupancies) / len(occupancies)
            skew = max(occupancies) / mean if mean > 0 else 1.0
            live.gauge("live_occupancy_skew").set(round(skew, 4))
            window["occupancy_skew"] = round(skew, 4)
        if shard_totals:
            fairness = round(jain_fairness(ops_deltas), 4)
            live.gauge("live_throughput_fairness").set(fairness)
            window["throughput_fairness"] = fairness
        if shard_windows:
            window["shards"] = shard_windows

    def _tick_watchdog(
        self, watchdog: StallWatchdog, progress_value: float
    ) -> None:
        live = self.live
        newly_stalled = watchdog.observe(progress_value)
        live.gauge("live_watchdog_idle_seconds").set(
            round(watchdog.seconds_since_progress, 3)
        )
        if newly_stalled:
            live.counter("live_watchdog_stalls_total").inc()
            if self._on_stall is not None:
                self._on_stall(watchdog)


class MetricsServer:
    """Background HTTP endpoint trio over render callbacks.

    ``render_metrics`` returns exposition text; ``render_health``
    returns ``(http_status, payload_dict)``; ``render_snapshot`` returns
    a JSON-ready dict.  Binding to port 0 picks an ephemeral port,
    reported via :attr:`port`.
    """

    def __init__(
        self,
        *,
        render_metrics: Callable[[], str],
        render_health: Callable[[], Tuple[int, Dict[str, Any]]],
        render_snapshot: Callable[[], Dict[str, Any]],
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        plane = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *_args: Any) -> None:
                """Silence per-request stderr chatter."""

            def _send(
                self, status: int, body: bytes, content_type: str
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                try:
                    if path == "/metrics":
                        text = plane._retry_render(render_metrics)
                        self._send(
                            200,
                            text.encode("utf-8"),
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                    elif path == "/health":
                        status, payload = render_health()
                        self._send(
                            status,
                            json.dumps(payload, sort_keys=True).encode(
                                "utf-8"
                            ),
                            "application/json",
                        )
                    elif path == "/snapshot":
                        payload = plane._retry_render(render_snapshot)
                        self._send(
                            200,
                            json.dumps(payload, sort_keys=True).encode(
                                "utf-8"
                            ),
                            "application/json",
                        )
                    else:
                        self._send(
                            404,
                            b'{"error": "unknown path"}',
                            "application/json",
                        )
                except Exception as error:  # render raced the hot path
                    body = json.dumps(
                        {"error": type(error).__name__}
                    ).encode("utf-8")
                    self._send(503, body, "application/json")

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = int(self._server.server_address[1])
        self._thread: Optional[threading.Thread] = None

    @staticmethod
    def _retry_render(render: Callable[[], Any], attempts: int = 3) -> Any:
        """Re-run a render that raced a concurrent dict resize."""
        for attempt in range(attempts):
            try:
                return render()
            except RuntimeError:
                if attempt == attempts - 1:
                    raise
        raise RuntimeError("unreachable")  # pragma: no cover

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            # Tight poll so close() returns promptly: the default 0.5s
            # A long poll keeps the serve loop (and its GIL wakeups)
            # off the hot path; close() pokes the socket so shutdown
            # never actually waits out the poll.
            target=lambda: self._server.serve_forever(poll_interval=0.5),
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        if self._thread is not None:
            # Raise the stop flag *first*, then poke the socket: the
            # throwaway connection makes serve_forever() re-check the
            # flag immediately, so the long poll interval adds no
            # shutdown latency.
            self._server._BaseServer__shutdown_request = True
            host = self.host if self.host not in ("", "0.0.0.0") else "127.0.0.1"
            try:
                with socket.create_connection((host, self.port), timeout=1.0):
                    pass
            except OSError:
                pass
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"


class LivePlane:
    """The runner-facing bundle: collector + server + watchdog wiring.

    Args:
        instruments: the run's hot-path :class:`InstrumentSet` (the
            standard probes write here).
        progress: monotone progress reading — registry grand total or
            fabric op count; feeds rate rollups and the stall watchdog.
        occupancy / free_list_depth: current-level callbacks for
            ``/health``.
        monitors: the run's :class:`~repro.obs.monitors.MonitorSuite`
            (or anything with ``checked``/``violations``), surfaced in
            ``/health``; any violation flips health to 503.
        tracer: where a watchdog stall is emitted as a
            :data:`~repro.obs.events.WATCHDOG_KIND` event (collector
            thread; safe because a stall implies a quiescent main
            thread).
        flight: an attached :class:`FlightRecorder`, surfaced in
            ``/health`` and force-dumped on a stall.
        serve_port: ``None`` disables the HTTP server (collector only);
            0 binds an ephemeral port.
        watchdog_timeout: seconds without progress before a stall is
            declared; ``None`` disables the watchdog.
    """

    def __init__(
        self,
        *,
        instruments: InstrumentSet,
        progress: Optional[Callable[[], float]] = None,
        occupancy: Optional[Callable[[], float]] = None,
        shard_occupancies: Optional[Callable[[], List[float]]] = None,
        free_list_depth: Optional[Callable[[], float]] = None,
        monitors=None,
        tracer=None,
        flight: Optional[FlightRecorder] = None,
        auditor=None,
        serve_port: Optional[int] = None,
        serve_host: str = "127.0.0.1",
        interval: float = DEFAULT_INTERVAL,
        history: int = DEFAULT_HISTORY,
        watchdog_timeout: Optional[float] = None,
        prefix: str = "repro",
        extra_status: Optional[Callable[[], Dict[str, Any]]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._instruments = instruments
        self._monitors = monitors
        self._tracer = tracer
        self._flight = flight
        self._auditor = auditor
        self._free_list_depth = free_list_depth
        self._occupancy = occupancy
        self._shard_occupancies = shard_occupancies
        self._prefix = prefix
        self._extra_status = extra_status
        self._clock = clock
        self._started_at: Optional[float] = None
        self._finished = False
        self.watchdog = (
            StallWatchdog(timeout=watchdog_timeout, clock=clock)
            if watchdog_timeout is not None
            else None
        )
        self.collector = WindowedCollector(
            instruments,
            interval=interval,
            history=history,
            progress=progress,
            occupancy=occupancy,
            shard_occupancies=shard_occupancies,
            watchdog=self.watchdog,
            on_stall=self._handle_stall,
            clock=clock,
        )
        self.server: Optional[MetricsServer] = None
        if serve_port is not None:
            self.server = MetricsServer(
                render_metrics=self.render_metrics,
                render_health=self.render_health,
                render_snapshot=self.render_snapshot,
                port=serve_port,
                host=serve_host,
            )

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "LivePlane":
        self._started_at = self._clock()
        self.collector.start()
        if self.server is not None:
            self.server.start()
        return self

    def finish(self) -> Dict[str, Any]:
        """Stop collector and server; returns a JSON-ready summary."""
        if not self._finished:
            self._finished = True
            self.collector.finish()
            if self.server is not None:
                self.server.close()
        return self.summary()

    @property
    def port(self) -> Optional[int]:
        return self.server.port if self.server is not None else None

    @property
    def uptime_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return max(0.0, self._clock() - self._started_at)

    # ------------------------------------------------------------------
    # stall handling

    def _handle_stall(self, watchdog: StallWatchdog) -> None:
        # Runs on the collector thread.  Safe: a stall means the owning
        # thread has made no progress for `timeout` seconds, so nothing
        # races the tracer's ring append.
        if self._tracer is not None and getattr(
            self._tracer, "enabled", False
        ):
            self._tracer.event(
                WATCHDOG_KIND,
                name="watchdog",
                timeout=watchdog.timeout,
                seconds_since_progress=round(
                    watchdog.seconds_since_progress, 3
                ),
                stall_count=watchdog.stall_count,
            )
        elif self._flight is not None:
            # No tracer to route the event through: dump directly.
            self._flight.close()

    # ------------------------------------------------------------------
    # renders (HTTP + CLI share these)

    def render_metrics(self) -> str:
        base = prometheus_snapshot(self._instruments, prefix=self._prefix)
        live = prometheus_snapshot(self.collector.live, prefix=self._prefix)
        return base + live

    def _monitor_status(self) -> Optional[Dict[str, Any]]:
        monitors = self._monitors
        if monitors is None:
            return None
        violations = getattr(monitors, "violations", [])
        status: Dict[str, Any] = {
            "checked": getattr(monitors, "checked", None),
            "violations": len(violations),
        }
        if violations:
            first = violations[0]
            status["first_violation"] = {
                "monitor": getattr(first, "monitor", None),
                "message": getattr(first, "message", None),
            }
        return status

    def render_health(self) -> Tuple[int, Dict[str, Any]]:
        monitor_status = self._monitor_status()
        stalled = self.watchdog.stalled if self.watchdog else False
        violations = (
            monitor_status["violations"] if monitor_status else 0
        )
        slo_breached = bool(
            self._auditor is not None
            and getattr(self._auditor, "breached", False)
        )
        healthy = not stalled and not violations and not slo_breached
        if healthy:
            status = "ok"
        elif stalled:
            status = "stalled"
        elif violations:
            status = "violations"
        else:
            status = "slo_breach"
        payload: Dict[str, Any] = {
            "status": status,
            "uptime_seconds": round(self.uptime_seconds, 3),
            "windows": self.collector.ticks,
            "monitors": monitor_status,
        }
        if self._occupancy is not None:
            payload["occupancy"] = self._occupancy()
        if self._free_list_depth is not None:
            payload["free_list_depth"] = self._free_list_depth()
        if self._shard_occupancies is not None:
            occupancies = [float(v) for v in self._shard_occupancies()]
            mean = (
                sum(occupancies) / len(occupancies) if occupancies else 0.0
            )
            payload["shards"] = {
                "occupancies": occupancies,
                "occupancy_skew": (
                    round(max(occupancies) / mean, 4) if mean > 0 else 1.0
                ),
            }
        if self._auditor is not None:
            # The attribution answer: when the SLO burns, name the
            # culprit shard instead of blaming the blended stream.
            payload["slo"] = self._auditor.health_status()
        if self.watchdog is not None:
            payload["watchdog"] = self.watchdog.summary()
        if self._flight is not None:
            payload["flight_recorder"] = self._flight.summary()
        if self._tracer is not None:
            payload["trace"] = {
                "emitted": getattr(self._tracer, "emitted", 0),
                "dropped": getattr(self._tracer, "dropped", 0),
            }
        if self._extra_status is not None:
            payload.update(self._extra_status())
        return (200 if healthy else 503), payload

    def render_snapshot(self) -> Dict[str, Any]:
        return {
            "uptime_seconds": round(self.uptime_seconds, 3),
            "instruments": self._instruments.summaries(),
            "live": self.collector.live.summaries(),
            "windows": list(self.collector.windows),
        }

    def summary(self) -> Dict[str, Any]:
        """JSON-ready wrap-up for run documents."""
        out: Dict[str, Any] = {
            "windows": self.collector.ticks,
            "skipped_ticks": self.collector.skipped,
            "interval": self.collector.interval,
            "uptime_seconds": round(self.uptime_seconds, 3),
        }
        if self.server is not None:
            out["port"] = self.server.port
        if self.watchdog is not None:
            out["watchdog"] = self.watchdog.summary()
        return out
