"""Trace and metric exporters: JSONL, Prometheus text, run report.

Three output shapes for the same telemetry:

* :func:`write_jsonl` / :func:`read_jsonl` — one JSON object per event,
  the archival format (uploaded as a CI artifact, replayable into
  :class:`~repro.obs.events.TraceEvent` objects).
* :func:`prometheus_snapshot` — a Prometheus-style text exposition of
  an :class:`~repro.obs.instruments.InstrumentSet`, for scraping or
  eyeballing.
* :func:`run_report` — the human-readable post-run summary: per-structure
  traffic, event counts, distribution tables, reconciliation status.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Optional, Union

from ..hwsim.stats import AccessStats
from .events import TraceEvent
from .instruments import Counter, Gauge, Histogram, InstrumentSet


def write_jsonl(
    events: Iterable[TraceEvent], destination: Union[str, IO[str]]
) -> int:
    """Write events as JSON Lines; returns the number written."""
    own = not hasattr(destination, "write")
    handle = open(destination, "w", encoding="utf-8") if own else destination
    count = 0
    try:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=False) + "\n")
            count += 1
    finally:
        if own:
            handle.close()
    return count


def read_jsonl(source: Union[str, IO[str]]) -> List[TraceEvent]:
    """Load a JSONL trace back into events (skips blank lines)."""
    own = not hasattr(source, "read")
    handle = open(source, "r", encoding="utf-8") if own else source
    try:
        return [
            TraceEvent.from_dict(json.loads(line))
            for line in handle
            if line.strip()
        ]
    finally:
        if own:
            handle.close()


def prometheus_snapshot(
    instruments: InstrumentSet, *, prefix: str = "repro"
) -> str:
    """Prometheus-style text exposition of every instrument.

    Histograms use the cumulative ``_bucket{le=...}`` convention plus
    ``_sum``/``_count``; gauges export value/min/max; counters export
    their total.  The output is a snapshot, not a live endpoint — good
    enough for scrape emulation and diffing in CI.
    """
    lines: List[str] = []
    for name, instrument in instruments.items():
        metric = f"{prefix}_{name}"
        if isinstance(instrument, Histogram):
            lines.append(f"# TYPE {metric} histogram")
            for bound, cumulative in instrument.cumulative_buckets():
                lines.append(
                    f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {instrument.count}')
            lines.append(f"{metric}_sum {_fmt(instrument.sum)}")
            lines.append(f"{metric}_count {instrument.count}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(instrument.value)}")
            lines.append(f"{metric}_min {_fmt(instrument.min)}")
            lines.append(f"{metric}_max {_fmt(instrument.max)}")
        elif isinstance(instrument, Counter):
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}_total {instrument.value}")
    return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Trim trailing zeros so integers print as integers."""
    if value == int(value):
        return str(int(value))
    return repr(round(value, 6))


def run_report(
    *,
    title: str,
    totals: Dict[str, AccessStats],
    instruments: Optional[InstrumentSet] = None,
    event_counts: Optional[Dict[str, int]] = None,
    reconciliation: Optional[Dict[str, int]] = None,
    notes: Iterable[str] = (),
) -> str:
    """The human-readable post-run report.

    Args:
        title: headline (workload description).
        totals: per-structure :class:`AccessStats` (registry snapshot).
        instruments: distribution/gauge summaries to tabulate.
        event_counts: events emitted per kind.
        reconciliation: ``{"traced": ..., "registry": ...}`` totals; a
            mismatch is flagged loudly.
        notes: free-form trailing lines.
    """
    lines = [title, "=" * len(title), ""]

    lines.append("per-structure memory traffic")
    lines.append(f"  {'structure':<24} {'reads':>10} {'writes':>10} {'total':>10}")
    sum_reads = sum_writes = 0
    for name in sorted(totals):
        stats = totals[name]
        sum_reads += stats.reads
        sum_writes += stats.writes
        lines.append(
            f"  {name:<24} {stats.reads:>10} {stats.writes:>10} {stats.total:>10}"
        )
    lines.append(
        f"  {'TOTAL':<24} {sum_reads:>10} {sum_writes:>10} "
        f"{sum_reads + sum_writes:>10}"
    )

    if event_counts:
        lines += ["", "events by kind"]
        for kind in sorted(event_counts):
            lines.append(f"  {kind:<24} {event_counts[kind]:>10}")

    if instruments is not None and instruments.names():
        lines += ["", "distributions"]
        lines.append(
            f"  {'instrument':<28} {'count':>8} {'p50':>8} {'p90':>8} "
            f"{'p99':>8} {'max':>8}"
        )
        for name, instrument in instruments.items():
            if isinstance(instrument, Histogram):
                s = instrument.summary()
                lines.append(
                    f"  {name:<28} {s['count']:>8} {_fmt(s['p50']):>8} "
                    f"{_fmt(s['p90']):>8} {_fmt(s['p99']):>8} {_fmt(s['max']):>8}"
                )
        gauges = [
            (name, inst)
            for name, inst in instruments.items()
            if isinstance(inst, Gauge)
        ]
        if gauges:
            lines += ["", "gauges"]
            for name, gauge in gauges:
                lines.append(
                    f"  {name:<28} value={_fmt(gauge.value)} "
                    f"min={_fmt(gauge.min)} max={_fmt(gauge.max)}"
                )

    if reconciliation is not None:
        traced = reconciliation.get("traced", 0)
        registry = reconciliation.get("registry", 0)
        lines.append("")
        if traced == registry:
            lines.append(
                f"reconciliation OK: traced deltas account for all "
                f"{registry} registry accesses"
            )
        else:
            lines.append(
                f"reconciliation MISMATCH: traced {traced} != registry "
                f"{registry} ({registry - traced} unattributed)"
            )

    for note in notes:
        lines.append("")
        lines.append(note)
    return "\n".join(lines) + "\n"
