"""Trace and metric exporters: JSONL, Prometheus text, run report.

Three output shapes for the same telemetry:

* :func:`write_jsonl` / :func:`read_jsonl` — one JSON object per event,
  the archival format (uploaded as a CI artifact, replayable into
  :class:`~repro.obs.events.TraceEvent` objects).
* :func:`prometheus_snapshot` — a Prometheus-style text exposition of
  an :class:`~repro.obs.instruments.InstrumentSet`, for scraping or
  eyeballing.
* :func:`run_report` — the human-readable post-run summary: per-structure
  traffic, event counts, distribution tables, reconciliation status.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Union

from ..hwsim.stats import AccessStats
from .events import FRAMING_KINDS, TraceEvent
from .instruments import (
    Counter,
    Gauge,
    Histogram,
    InstrumentSet,
    LabelKey,
    escape_label_value,
    render_label_key,
)


def write_jsonl(
    events: Iterable[TraceEvent], destination: Union[str, IO[str]]
) -> int:
    """Write events as JSON Lines; returns the number written."""
    own = not hasattr(destination, "write")
    handle = open(destination, "w", encoding="utf-8") if own else destination
    count = 0
    try:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=False) + "\n")
            count += 1
    finally:
        if own:
            handle.close()
    return count


def read_jsonl(source: Union[str, IO[str]]) -> List[TraceEvent]:
    """Load a JSONL trace back into events.

    Skips blank lines and the header/footer framing records — use
    :func:`read_trace` when the framing metadata matters.
    """
    return read_trace(source).events


@dataclass
class TraceDocument:
    """A fully loaded JSONL trace: framing records plus the event list.

    ``header``/``footer`` are ``None`` for PR 2-era unframed traces.
    """

    events: List[TraceEvent] = field(default_factory=list)
    header: Optional[Dict[str, Any]] = None
    footer: Optional[Dict[str, Any]] = None

    @property
    def dropped(self) -> int:
        """Ring-buffer drops the writing tracer reported (0 if unframed)."""
        return int(self.footer.get("dropped", 0)) if self.footer else 0

    @property
    def missing(self) -> int:
        """Events the footer promised but the file does not contain.

        Nonzero means the file itself is lossy or truncated (a sink-less
        buffer dump after eviction, or a cut-short write) — distinct
        from :attr:`dropped`, which only counts in-memory ring evictions
        that a streaming sink still captured.
        """
        if self.footer is None:
            return 0
        return max(0, int(self.footer.get("emitted", 0)) - len(self.events))


def read_trace(source: Union[str, IO[str]]) -> TraceDocument:
    """Load a JSONL trace, separating framing records from events."""
    own = not hasattr(source, "read")
    handle = open(source, "r", encoding="utf-8") if own else source
    document = TraceDocument()
    try:
        for line in handle:
            if not line.strip():
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind in FRAMING_KINDS:
                if kind == FRAMING_KINDS[0]:
                    document.header = record
                else:
                    document.footer = record
                continue
            document.events.append(TraceEvent.from_dict(record))
    finally:
        if own:
            handle.close()
    return document


#: Series kind tags for the instruments JSONL format.
_KIND_TAGS = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}
_KIND_CLASSES = {tag: kind for kind, tag in _KIND_TAGS.items()}


def write_instruments_jsonl(
    instruments: InstrumentSet, destination: Union[str, IO[str]]
) -> int:
    """Write every series as JSON Lines; returns the number written.

    One object per series — ``{"name", "labels", "kind", "state"}`` —
    using the instruments' exact :meth:`to_state` snapshots, so a
    :func:`read_instruments_jsonl` round-trip rebuilds the set
    bucket-for-bucket (histograms included).
    """
    own = not hasattr(destination, "write")
    handle = open(destination, "w", encoding="utf-8") if own else destination
    count = 0
    try:
        for name, family in instruments.families():
            kind = instruments.kind_of(name)
            for key in sorted(family):
                record = {
                    "name": name,
                    "labels": dict(key),
                    "kind": _KIND_TAGS[kind],
                    "state": family[key].to_state(),
                }
                handle.write(json.dumps(record, sort_keys=False) + "\n")
                count += 1
    finally:
        if own:
            handle.close()
    return count


def read_instruments_jsonl(source: Union[str, IO[str]]) -> InstrumentSet:
    """Rebuild an :class:`InstrumentSet` from :func:`write_instruments_jsonl`."""
    own = not hasattr(source, "read")
    handle = open(source, "r", encoding="utf-8") if own else source
    instruments = InstrumentSet()
    try:
        for line in handle:
            if not line.strip():
                continue
            record = json.loads(line)
            kind = _KIND_CLASSES[record["kind"]]
            restored = kind.from_state(record["state"])
            labels = record.get("labels") or None
            if kind is Histogram:
                slot = instruments.hist(
                    record["name"],
                    labels=labels,
                    subbucket_bits=restored._sub_bits,
                    scale=restored._scale,
                )
            elif kind is Gauge:
                slot = instruments.gauge(record["name"], labels=labels)
            else:
                slot = instruments.counter(record["name"], labels=labels)
            slot.__dict__.update(restored.__dict__)
    finally:
        if own:
            handle.close()
    return instruments


#: The Prometheus exposition-format metric-name grammar.
_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_METRIC_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Coerce an instrument name into the Prometheus name charset.

    Instrument names may carry dots (``circuit.insert.cycles``) or other
    punctuation that the exposition format forbids; every disallowed
    character becomes an underscore, and a leading digit gets an
    underscore prefix.  Idempotent, and the identity on names that are
    already valid.
    """
    cleaned = _METRIC_BAD_CHARS.sub("_", name)
    if not cleaned or not _METRIC_NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _render_labels(key: LabelKey, extra: str = "") -> str:
    """``{a="x",le="2"}`` rendering: family labels plus an extra pair."""
    body = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in key
    )
    if extra:
        body = f"{body},{extra}" if body else extra
    return "{" + body + "}" if body else ""


def prometheus_snapshot(
    instruments: InstrumentSet, *, prefix: str = "repro"
) -> str:
    """Prometheus-style text exposition of every instrument family.

    Histograms use the cumulative ``_bucket{le=...}`` convention plus
    ``_sum``/``_count``; gauges export value/min/max (each series under
    its own ``# TYPE`` line so strict parsers accept the output);
    counters export their ``_total``.  Labeled series render after the
    unlabeled aggregate of their family, under the family's single
    ``# TYPE`` line, with label values escaped per the exposition
    grammar (backslash, double quote, newline).  Instrument names are
    sanitized into the exposition-format charset via
    :func:`sanitize_metric_name`.  The output is a snapshot, not a live
    endpoint — good enough for scrape emulation and diffing in CI;
    :mod:`repro.obs.live` serves it from a running soak.
    """
    lines: List[str] = []
    for name, family in instruments.families():
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        kind = instruments.kind_of(name)
        keys = sorted(family)  # () sorts first: aggregate leads
        if kind is Histogram:
            lines.append(f"# TYPE {metric} histogram")
            for key in keys:
                hist = family[key]
                for bound, cumulative in hist.cumulative_buckets():
                    labels = _render_labels(key, f'le="{_fmt(bound)}"')
                    lines.append(f"{metric}_bucket{labels} {cumulative}")
                labels = _render_labels(key, 'le="+Inf"')
                lines.append(f"{metric}_bucket{labels} {hist.count}")
                suffix = _render_labels(key)
                lines.append(f"{metric}_sum{suffix} {_fmt(hist.sum)}")
                lines.append(f"{metric}_count{suffix} {hist.count}")
        elif kind is Gauge:
            for part, read in (
                ("", lambda g: g.value),
                ("_min", lambda g: g.min),
                ("_max", lambda g: g.max),
            ):
                lines.append(f"# TYPE {metric}{part} gauge")
                for key in keys:
                    labels = _render_labels(key)
                    lines.append(
                        f"{metric}{part}{labels} {_fmt(read(family[key]))}"
                    )
        elif kind is Counter:
            # Counters expose the conventional `_total` suffix; don't
            # double it for instruments already named that way.
            if not metric.endswith("_total"):
                metric = f"{metric}_total"
            lines.append(f"# TYPE {metric} counter")
            for key in keys:
                labels = _render_labels(key)
                lines.append(f"{metric}{labels} {family[key].value}")
    return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Trim trailing zeros so integers print as integers."""
    if value == int(value):
        return str(int(value))
    return repr(round(value, 6))


def run_report(
    *,
    title: str,
    totals: Dict[str, AccessStats],
    instruments: Optional[InstrumentSet] = None,
    event_counts: Optional[Dict[str, int]] = None,
    reconciliation: Optional[Dict[str, int]] = None,
    dropped: Optional[int] = None,
    notes: Iterable[str] = (),
) -> str:
    """The human-readable post-run report.

    Args:
        title: headline (workload description).
        totals: per-structure :class:`AccessStats` (registry snapshot).
        instruments: distribution/gauge summaries to tabulate.
        event_counts: events emitted per kind.
        reconciliation: ``{"traced": ..., "registry": ...}`` totals; a
            mismatch is flagged loudly.
        dropped: ring-buffer drop count; nonzero is flagged loudly (a
            lossy in-memory view — analyses over the buffer are suspect
            even though a streaming sink captured every event).
        notes: free-form trailing lines.
    """
    lines = [title, "=" * len(title), ""]

    lines.append("per-structure memory traffic")
    lines.append(f"  {'structure':<24} {'reads':>10} {'writes':>10} {'total':>10}")
    sum_reads = sum_writes = 0
    for name in sorted(totals):
        stats = totals[name]
        sum_reads += stats.reads
        sum_writes += stats.writes
        lines.append(
            f"  {name:<24} {stats.reads:>10} {stats.writes:>10} {stats.total:>10}"
        )
    lines.append(
        f"  {'TOTAL':<24} {sum_reads:>10} {sum_writes:>10} "
        f"{sum_reads + sum_writes:>10}"
    )

    if event_counts:
        lines += ["", "events by kind"]
        for kind in sorted(event_counts):
            lines.append(f"  {kind:<24} {event_counts[kind]:>10}")

    if instruments is not None and instruments.names():
        lines += ["", "distributions"]
        lines.append(
            f"  {'instrument':<28} {'count':>8} {'p50':>8} {'p90':>8} "
            f"{'p99':>8} {'max':>8}"
        )
        for name, instrument in instruments.items():
            if isinstance(instrument, Histogram):
                s = instrument.summary()
                lines.append(
                    f"  {name:<28} {s['count']:>8} {_fmt(s['p50']):>8} "
                    f"{_fmt(s['p90']):>8} {_fmt(s['p99']):>8} {_fmt(s['max']):>8}"
                )
        gauges = [
            (name, inst)
            for name, inst in instruments.items()
            if isinstance(inst, Gauge)
        ]
        if gauges:
            lines += ["", "gauges"]
            for name, gauge in gauges:
                lines.append(
                    f"  {name:<28} value={_fmt(gauge.value)} "
                    f"min={_fmt(gauge.min)} max={_fmt(gauge.max)}"
                )

    if reconciliation is not None:
        traced = reconciliation.get("traced", 0)
        registry = reconciliation.get("registry", 0)
        lines.append("")
        if traced == registry:
            lines.append(
                f"reconciliation OK: traced deltas account for all "
                f"{registry} registry accesses"
            )
        else:
            lines.append(
                f"reconciliation MISMATCH: traced {traced} != registry "
                f"{registry} ({registry - traced} unattributed)"
            )

    if dropped is not None:
        lines.append("")
        if dropped:
            lines.append(
                f"trace LOSSY: {dropped} events dropped from the ring "
                f"buffer (in-memory analyses are incomplete; a streaming "
                f"sink, if configured, still holds the full trace)"
            )
        else:
            lines.append("trace complete: 0 events dropped")

    for note in notes:
        lines.append("")
        lines.append(note)
    return "\n".join(lines) + "\n"
