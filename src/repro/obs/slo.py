"""Online fairness / SLO auditing — the streaming half of `net/metrics`.

The offline metrics (:mod:`repro.net.metrics`) replay a finished
:class:`~repro.sched.base.SimulationResult` against a batch GPS run.
This module computes the same quantities *while the system runs*:

* :class:`RankInversionCounter` — the streaming inversion count.  The
  offline :func:`repro.net.metrics.out_of_order_service` is now a thin
  driver over this class, so online and offline counts are one code
  path, not two implementations that can drift.
* :class:`FairnessAuditor` — a per-flow service ledger fed arrival and
  departure observations, backed by the *incremental*
  :class:`~repro.sched.gps.GpsAccrualCore`.  Because the core advances
  only at arrival instants (exactly the schedule the batch simulator
  uses), the streaming worst GPS lag/lead per flow reconciles **exactly**
  — same floats, not approximately — with
  :func:`repro.net.metrics.gps_lag` recomputed offline on the same trace.
* :class:`SloRule` / rule evaluation with burn-rate counters: each rule
  names a metric (``max_gps_lag``, ``max_gps_lead``, ``p99_delay``,
  ``inversions``) and a limit; every breaching evaluation burns the
  budget (counted), and the first breach is emitted both as a
  :data:`~repro.obs.events.SLO_KIND` trace event and as exported
  metrics.
* :class:`ServeStreamAuditor` — the tag-domain sibling for circuit
  soaks (which have no packet clocks): a tracer observer counting
  wrap-aware serve-order inversions per component, exported live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..hwsim.errors import ConfigurationError
from ..sched.gps import GpsAccrualCore, GpsDeparture
from .events import SLO_KIND, TraceEvent
from .instruments import Counter, InstrumentSet
from .probes import shard_labels

#: Metrics an :class:`SloRule` may bind to.
SLO_METRICS = ("max_gps_lag", "max_gps_lead", "p99_delay", "inversions")


class RankInversionCounter:
    """Streaming count of service-order rank inversions.

    Feed ranks (finish tags) in *service order*; an observation counts
    as an inversion when it sorts strictly below the best rank already
    served (beyond ``epsilon``), matching the offline
    :func:`repro.net.metrics.out_of_order_service` definition.

    With ``modular=True`` the comparison is wrap-aware over
    ``tag_space`` (hardware tag domain): a serve counts as an inversion
    when its wrapped distance from the previous serve falls in the
    backward half-space — the same half-space rule the
    ``serve_monotonic`` monitor enforces.  A modular counter keeps its
    watermark at the last *conforming* serve.
    """

    def __init__(
        self,
        *,
        modular: bool = False,
        tag_space: int = 0,
        epsilon: float = 1e-12,
    ) -> None:
        if modular and tag_space <= 1:
            raise ConfigurationError(
                "modular inversion counting needs tag_space > 1"
            )
        self.modular = modular
        self.tag_space = tag_space
        self.epsilon = epsilon
        self.observed = 0
        self.inversions = 0
        self._best: Optional[float] = None

    def reset_watermark(self) -> None:
        """Forget the watermark (e.g. after a circuit drain)."""
        self._best = None

    def observe(self, rank: float) -> bool:
        """Record one served rank; True when it is an inversion."""
        self.observed += 1
        if self._best is None:
            self._best = rank
            return False
        if self.modular:
            distance = (int(rank) - int(self._best)) % self.tag_space
            if distance >= self.tag_space // 2:
                self.inversions += 1
                return True
            self._best = rank
            return False
        if rank < self._best - self.epsilon:
            self.inversions += 1
            return True
        if rank > self._best:
            self._best = rank
        return False


@dataclass(frozen=True)
class SloRule:
    """One service-level objective: ``metric`` must stay <= ``limit``.

    ``metric`` is one of :data:`SLO_METRICS`; units are seconds for the
    GPS-lag/lead and delay metrics, a count for ``inversions``.
    """

    name: str
    metric: str
    limit: float

    def __post_init__(self) -> None:
        if self.metric not in SLO_METRICS:
            raise ConfigurationError(
                f"unknown SLO metric {self.metric!r}; "
                f"expected one of {SLO_METRICS}"
            )


class _RuleState:
    """Burn accounting for one rule."""

    __slots__ = ("rule", "burn", "breached", "worst")

    def __init__(self, rule: SloRule) -> None:
        self.rule = rule
        self.burn = 0  # breaching evaluations (budget burn rate)
        self.breached = False
        self.worst = float("-inf")

    def summary(self) -> Dict[str, Any]:
        return {
            "metric": self.rule.metric,
            "limit": self.rule.limit,
            "burn": self.burn,
            "breached": self.breached,
            "worst": self.worst if self.burn else None,
        }


class FairnessAuditor:
    """Streaming per-flow service ledger with a fluid GPS reference.

    Drive it with :meth:`on_arrival` (in arrival order) and
    :meth:`on_departure` (in service order), then :meth:`finalize`.
    The incremental GPS core only advances at arrival instants — actual
    departures are *paired* with fluid departures whenever both sides of
    a packet are known, which keeps the float schedule identical to the
    batch simulator and makes online/offline reconciliation exact.
    """

    def __init__(
        self,
        rate_bps: float,
        *,
        weights: Optional[Mapping[int, float]] = None,
        rules: Sequence[SloRule] = (),
        instruments: Optional[InstrumentSet] = None,
        tracer=None,
        delay_scale: float = 1e6,
    ) -> None:
        self._core = GpsAccrualCore(rate_bps, weights=weights)
        self._rules = [_RuleState(rule) for rule in rules]
        self._instruments = instruments
        self._tracer = tracer
        self._delay_scale = delay_scale
        #: fluid departures not yet matched to an actual serve
        self._fluid: Dict[int, GpsDeparture] = {}
        #: actual serves not yet matched to a fluid departure
        self._actual: Dict[int, Tuple[int, float]] = {}
        #: worst actual-behind-fluid / actual-ahead-of-fluid per flow
        self.lag: Dict[int, float] = {}
        self.lead: Dict[int, float] = {}
        self.served_bits: Dict[int, float] = {}
        self.arrivals = 0
        self.departures = 0
        self.inversion_counter = RankInversionCounter()
        self._delays: List[float] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # observations

    def set_weight(self, flow_id: int, weight: float) -> None:
        self._core.set_weight(flow_id, weight)

    def on_arrival(self, packet) -> None:
        """Admit one packet (a :class:`~repro.sched.packet.Packet`)."""
        self.arrivals += 1
        emitted = self._core.arrive(
            packet.flow_id,
            packet.packet_id,
            packet.size_bits,
            packet.arrival_time,
        )
        self._absorb_fluid(emitted)

    def on_departure(self, packet) -> None:
        """Record one served packet, in service order."""
        if packet.departure_time is None:
            return
        self.departures += 1
        flow = packet.flow_id
        self.served_bits[flow] = (
            self.served_bits.get(flow, 0.0) + packet.size_bits
        )
        if packet.finish_tag is not None:
            inverted = self.inversion_counter.observe(packet.finish_tag)
            if inverted and self._instruments is not None:
                self._instruments.counter("slo_inversions_total").inc()
        delay = packet.departure_time - packet.arrival_time
        self._delays.append(delay)
        if self._instruments is not None:
            self._instruments.hist(
                "packet_delay_seconds", scale=self._delay_scale
            ).record(max(delay, 0.0))
        fluid = self._fluid.pop(packet.packet_id, None)
        if fluid is not None:
            self._pair(packet.packet_id, flow, packet.departure_time, fluid)
        else:
            self._actual[packet.packet_id] = (flow, packet.departure_time)
        self.evaluate()

    def finalize(self) -> Dict[str, Any]:
        """Drain the fluid backlog, run a final evaluation, and report."""
        if not self._finalized:
            self._finalized = True
            self._absorb_fluid(self._core.finish())
            self.evaluate()
        return self.report()

    # ------------------------------------------------------------------
    # pairing

    def _absorb_fluid(
        self, emitted: List[Tuple[int, GpsDeparture]]
    ) -> None:
        for packet_id, fluid in emitted:
            pending = self._actual.pop(packet_id, None)
            if pending is None:
                self._fluid[packet_id] = fluid
            else:
                flow, departure_time = pending
                self._pair(packet_id, flow, departure_time, fluid)

    def _pair(
        self,
        packet_id: int,
        flow: int,
        departure_time: float,
        fluid: GpsDeparture,
    ) -> None:
        lag = departure_time - fluid.departure_time
        if lag > self.lag.get(flow, float("-inf")):
            self.lag[flow] = lag
        lead = fluid.departure_time - departure_time
        if lead > self.lead.get(flow, float("-inf")):
            self.lead[flow] = lead
        if self._instruments is not None:
            self._instruments.gauge("slo_max_gps_lag_seconds").set(
                self.max_gps_lag
            )
            self._instruments.gauge("slo_max_gps_lead_seconds").set(
                self.max_gps_lead
            )

    # ------------------------------------------------------------------
    # metrics

    @property
    def max_gps_lag(self) -> float:
        return max(self.lag.values()) if self.lag else 0.0

    @property
    def max_gps_lead(self) -> float:
        return max(self.lead.values()) if self.lead else 0.0

    @property
    def inversions(self) -> int:
        return self.inversion_counter.inversions

    def p99_delay(self) -> float:
        if not self._delays:
            return 0.0
        ordered = sorted(self._delays)
        index = max(0, -(-99 * len(ordered) // 100) - 1)
        return ordered[min(index, len(ordered) - 1)]

    def _metric_value(self, metric: str) -> float:
        if metric == "max_gps_lag":
            return self.max_gps_lag
        if metric == "max_gps_lead":
            return self.max_gps_lead
        if metric == "p99_delay":
            return self.p99_delay()
        return float(self.inversions)

    # ------------------------------------------------------------------
    # SLO evaluation

    def evaluate(self) -> None:
        """Check every rule against current values; count burn."""
        for state in self._rules:
            value = self._metric_value(state.rule.metric)
            if value <= state.rule.limit:
                continue
            state.burn += 1
            if value > state.worst:
                state.worst = value
            if self._instruments is not None:
                self._instruments.counter(
                    f"slo_burn_{state.rule.name}_total"
                ).inc()
            if not state.breached:
                state.breached = True
                self._emit_violation(state, value)

    def _emit_violation(self, state: _RuleState, value: float) -> None:
        if self._instruments is not None:
            self._instruments.counter("slo_violations_total").inc()
        if self._tracer is not None:
            self._tracer.event(
                SLO_KIND,
                name=state.rule.name,
                rule=state.rule.name,
                metric=state.rule.metric,
                value=value,
                limit=state.rule.limit,
            )

    # ------------------------------------------------------------------
    # reporting

    def report(self) -> Dict[str, Any]:
        """JSON-ready audit summary."""
        return {
            "arrivals": self.arrivals,
            "departures": self.departures,
            "max_gps_lag": self.max_gps_lag,
            "max_gps_lead": self.max_gps_lead,
            "gps_lag": dict(sorted(self.lag.items())),
            "gps_lead": dict(sorted(self.lead.items())),
            "inversions": self.inversions,
            "p99_delay": self.p99_delay(),
            "unmatched_fluid": len(self._fluid),
            "unmatched_actual": len(self._actual),
            "rules": {
                state.rule.name: state.summary() for state in self._rules
            },
        }


class _ComponentLane:
    """Per-component serve state: inversion counter + pre-bound series.

    One lane per ``component`` attr seen on the serve stream, so the
    per-event hot path touches only pre-resolved instruments — no
    get-or-create family lookups per serve.
    """

    __slots__ = ("counter", "serves_total", "inversions_total", "rules")

    def __init__(
        self,
        counter: RankInversionCounter,
        serves_total: Counter,
        inversions_total: Counter,
        rules: List[_RuleState],
    ) -> None:
        self.counter = counter
        self.serves_total = serves_total
        self.inversions_total = inversions_total
        self.rules = rules


class ServeStreamAuditor:
    """Tag-domain serve auditor for circuit soaks (a tracer observer).

    Soak workloads carry hardware tags, not packet clocks, so the GPS
    ledger does not apply; what *can* be watched live is the serve
    stream itself.  Attached as a tracer observer, this counts serves
    and wrap-aware rank inversions per component (shard), exports them
    as live instruments — aggregate plus ``shard``-labeled series — and
    optionally enforces ``inversions`` SLO rules both globally
    (``rules``) and per shard (``shard_rules``), so a global burn is
    attributed to the culprit shard instead of the blended stream.
    """

    #: The only event kinds :meth:`__call__` acts on — attach with
    #: ``tracer.add_observer(auditor, kinds=ServeStreamAuditor.OBSERVED_KINDS)``
    #: so the auditor is never even dispatched for inserts and spans.
    OBSERVED_KINDS = ("dequeue", "insert_dequeue", "marker_flush")

    def __init__(
        self,
        *,
        instruments: InstrumentSet,
        modular: bool = False,
        tag_space: int = 0,
        rules: Sequence[SloRule] = (),
        shard_rules: Sequence[SloRule] = (),
        tracer=None,
    ) -> None:
        for rule in tuple(rules) + tuple(shard_rules):
            if rule.metric != "inversions":
                raise ConfigurationError(
                    "tag-domain serve auditing supports only "
                    f"'inversions' rules, got {rule.metric!r}"
                )
        self._instruments = instruments
        self._modular = modular
        self._tag_space = tag_space
        self._rules = [_RuleState(rule) for rule in rules]
        self._shard_rules = tuple(shard_rules)
        self._tracer = tracer
        self._lanes: Dict[str, _ComponentLane] = {}
        self.serves = 0
        self.inversions = 0
        # Resolved once: the observer runs on every traced event, and
        # per-serve get-or-create lookups are measurable there.
        self._serves_total = instruments.counter("live_serves_total")
        self._inversions_total = instruments.counter(
            "live_serve_inversions_total"
        )
        self._last_served = instruments.gauge("live_last_served_tag")

    def _lane_for(self, component: str) -> _ComponentLane:
        lane = self._lanes.get(component)
        if lane is None:
            labels = shard_labels(component) if component else None
            lane = _ComponentLane(
                RankInversionCounter(
                    modular=self._modular,
                    tag_space=self._tag_space if self._modular else 0,
                ),
                self._instruments.counter(
                    "live_serves_total", labels=labels
                )
                if labels
                else self._serves_total,
                self._instruments.counter(
                    "live_serve_inversions_total", labels=labels
                )
                if labels
                else self._inversions_total,
                [_RuleState(rule) for rule in self._shard_rules],
            )
            self._lanes[component] = lane
        return lane

    def __call__(self, event: TraceEvent) -> None:
        # Hot path: runs on every traced event; keep the non-serve exit
        # to two attribute loads and the serve path free of per-call
        # instrument lookups (everything is pre-bound per lane).
        kind = event.kind
        attrs = event.attrs
        if kind == "dequeue":
            tag = attrs.get("tag")
        elif kind == "insert_dequeue":
            tag = attrs.get("served_tag")
        else:
            if kind == "marker_flush":
                lane = self._lanes.get(attrs.get("component", ""))
                if lane is not None:
                    lane.counter.reset_watermark()
            return
        if tag is None or attrs.get("failed"):
            return
        component = attrs.get("component", "")
        lane = self._lanes.get(component)
        if lane is None:
            lane = self._lane_for(component)
        inverted = lane.counter.observe(tag)
        self.serves += 1
        self._serves_total.value += 1
        if lane.serves_total is not self._serves_total:
            lane.serves_total.value += 1
        self._last_served.set(tag)
        if inverted:
            self.inversions += 1
            self._inversions_total.inc()
            if lane.inversions_total is not self._inversions_total:
                lane.inversions_total.inc()
            if self._rules:
                self._evaluate()
            if lane.rules:
                self._evaluate_shard(component, lane)
        if attrs.get("occupancy") == 0:
            # Drained: the next busy period may restart at lower tags.
            lane.counter.reset_watermark()

    def _evaluate(self) -> None:
        for state in self._rules:
            if self.inversions <= state.rule.limit:
                continue
            state.burn += 1
            self._instruments.counter(
                f"slo_burn_{state.rule.name}_total"
            ).inc()
            if not state.breached:
                state.breached = True
                self._instruments.counter("slo_violations_total").inc()
                if self._tracer is not None:
                    self._tracer.event(
                        SLO_KIND,
                        name=state.rule.name,
                        rule=state.rule.name,
                        metric=state.rule.metric,
                        value=float(self.inversions),
                        limit=state.rule.limit,
                    )

    def _evaluate_shard(
        self, component: str, lane: _ComponentLane
    ) -> None:
        """Check a shard's own inversion count against the shard rules."""
        labels = shard_labels(component) if component else None
        inversions = lane.counter.inversions
        for state in lane.rules:
            if inversions <= state.rule.limit:
                continue
            state.burn += 1
            if inversions > state.worst:
                state.worst = inversions
            self._instruments.counter(
                f"slo_burn_{state.rule.name}_total", labels=labels
            ).inc()
            if not state.breached:
                state.breached = True
                self._instruments.counter(
                    "slo_violations_total", labels=labels
                ).inc()
                if self._tracer is not None:
                    self._tracer.event(
                        SLO_KIND,
                        name=state.rule.name,
                        rule=state.rule.name,
                        metric=state.rule.metric,
                        value=float(inversions),
                        limit=state.rule.limit,
                        component=component,
                        shard=(labels or {}).get("shard"),
                    )

    @property
    def culprit_shard(self) -> Optional[str]:
        """The component contributing the most inversions (None if 0).

        This is the attribution answer ``/health`` surfaces: when a
        global inversion budget burns, the culprit names which shard's
        serve stream is misordered rather than blaming the blend.
        """
        worst: Optional[str] = None
        worst_count = 0
        for name, lane in sorted(self._lanes.items()):
            if lane.counter.inversions > worst_count:
                worst = name
                worst_count = lane.counter.inversions
        return worst

    def summary(self) -> Dict[str, Any]:
        return {
            "serves": self.serves,
            "inversions": self.inversions,
            "culprit_shard": self.culprit_shard,
            "components": {
                name: {
                    "observed": lane.counter.observed,
                    "inversions": lane.counter.inversions,
                    "rules": {
                        state.rule.name: state.summary()
                        for state in lane.rules
                    },
                }
                for name, lane in sorted(self._lanes.items())
            },
            "rules": {
                state.rule.name: state.summary() for state in self._rules
            },
        }

    @property
    def breached(self) -> bool:
        """True once any rule — global or per-shard — has breached."""
        if any(state.breached for state in self._rules):
            return True
        return any(
            state.breached
            for lane in self._lanes.values()
            for state in lane.rules
        )

    def health_status(self) -> Dict[str, Any]:
        """The compact block ``/health`` embeds (culprit included)."""
        breached_rules = [
            state.rule.name for state in self._rules if state.breached
        ]
        shard_breaches = {
            name: [
                state.rule.name for state in lane.rules if state.breached
            ]
            for name, lane in sorted(self._lanes.items())
            if any(state.breached for state in lane.rules)
        }
        return {
            "serves": self.serves,
            "inversions": self.inversions,
            "culprit_shard": self.culprit_shard,
            "breached_rules": breached_rules,
            "shard_breaches": shard_breaches,
        }
