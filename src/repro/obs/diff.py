"""Differential trace analysis: align two JSONL traces, explain the gap.

Two traces of the *same seeded workload* must serve the same logical
operation sequence — that is the batched-path equivalence claim and the
bench harness's regression premise.  This module checks it and, when the
sequences do diverge, points at the **first divergence** with context,
because everything after the first mismatched op is noise.

Alignment rules:

* Only logical operations align — ``insert`` / ``dequeue`` /
  ``insert_dequeue`` events, in emission order.  Spans, maintenance
  events, and invariant reports are per-trace artifacts (a batched trace
  has spans where a per-op trace has none) and never participate.
* An op's identity is ``(kind, tag)`` — plus the served tag for the
  combined op.  Storage *addresses* are excluded: a batched insert run
  allocates in sorted order, so addresses legitimately differ between
  disciplines serving identical sequences.
* Failed ops (``attrs.failed``) are excluded; they made no state change.

Beyond alignment, the diff reports per-kind access/cycle deltas with the
batch spans folded into their op kind (``insert_batch`` → ``insert``),
so "the regression is 1.7 extra storage accesses per insert" falls
straight out of two traces.

Header gating: traces framed with a header record (PR 3+) are refused
when their workload seeds or circuit configs differ — comparing those is
almost always a mistake — unless ``force=True``.  The *mode* (per-op vs
batched) may always differ; comparing modes is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .events import OP_KINDS, SPAN_KIND, TraceEvent

#: Span names folded into the op kind they amortize.
_SPAN_FOLD = {"insert_batch": "insert", "dequeue_batch": "dequeue"}

#: Header/config keys that must match for a meaningful diff.  ``mode``
#: is deliberately absent; ``fast_mode`` only disables a software-side
#: verification shadow and ``turbo`` only swaps the engine (identical
#: service order and accounting), so both may differ too — diffing a
#: turbo trace against a gate trace of the same seed is exactly how CI
#: proves the engines are logically equivalent.
_GATED_CONFIG_KEYS = (
    "levels",
    "literal_bits",
    "word_bits",
    "branching_factor",
    "tag_space",
    "capacity",
    "modular",
    "eager_marker_removal",
    "granularity",
)


class TraceCompatibilityError(ValueError):
    """The two traces describe different workloads or circuits."""


@dataclass(frozen=True)
class LogicalOp:
    """One aligned unit: a logical circuit operation."""

    kind: str
    tag: Optional[int]
    served_tag: Optional[int]
    seq: int

    @property
    def key(self) -> Tuple:
        if self.kind == "insert_dequeue":
            return (self.kind, self.tag, self.served_tag)
        return (self.kind, self.tag)

    def __str__(self) -> str:
        if self.kind == "insert_dequeue":
            return (
                f"{self.kind}(tag={self.tag}, served={self.served_tag}) "
                f"@seq={self.seq}"
            )
        return f"{self.kind}(tag={self.tag}) @seq={self.seq}"


def logical_ops(events: Sequence[TraceEvent]) -> List[LogicalOp]:
    """Extract the alignable logical-operation sequence of a trace."""
    ops: List[LogicalOp] = []
    for event in events:
        if event.kind not in OP_KINDS or event.attrs.get("failed"):
            continue
        served = event.attrs.get("served_tag")
        if event.kind == "dequeue":
            served = event.attrs.get("tag")
        ops.append(
            LogicalOp(
                kind=event.kind,
                tag=event.attrs.get("tag"),
                served_tag=served,
                seq=event.seq,
            )
        )
    return ops


def kind_totals(events: Sequence[TraceEvent]) -> Dict[str, Dict[str, int]]:
    """Per-kind op counts, access totals, and cycles, batch spans folded.

    A batch span's amortized traffic is charged to the op kind it
    served, so a per-op trace and a batched trace of the same workload
    compare kind-for-kind.
    """
    totals: Dict[str, Dict[str, int]] = {}
    for event in events:
        if event.attrs.get("failed"):
            continue
        if event.kind == SPAN_KIND:
            kind = _SPAN_FOLD.get(event.name)
            if kind is None:
                continue
            count = 0
        else:
            kind = event.kind
            count = 1 if event.kind in OP_KINDS else 0
        slot = totals.setdefault(
            kind, {"count": 0, "accesses": 0, "cycles": 0}
        )
        slot["count"] += count
        slot["accesses"] += event.delta_total
        slot["cycles"] += int(event.attrs.get("cycles", 0))
    return totals


def header_issues(
    header_a: Optional[Dict[str, Any]],
    header_b: Optional[Dict[str, Any]],
) -> List[str]:
    """Workload/config mismatches that make a diff meaningless."""
    if header_a is None or header_b is None:
        return []
    issues: List[str] = []
    seed_a, seed_b = header_a.get("seed"), header_b.get("seed")
    if seed_a != seed_b:
        issues.append(f"workload seed mismatch: {seed_a} vs {seed_b}")
    config_a = header_a.get("config") or {}
    config_b = header_b.get("config") or {}
    for key in _GATED_CONFIG_KEYS:
        if key == "granularity":
            continue  # checked below with float tolerance
        if key in config_a and key in config_b and config_a[key] != config_b[key]:
            issues.append(
                f"config mismatch on {key!r}: "
                f"{config_a[key]} vs {config_b[key]}"
            )
    gran_a, gran_b = config_a.get("granularity"), config_b.get("granularity")
    if gran_a is not None and gran_b is not None and float(gran_a) != float(gran_b):
        issues.append(f"config mismatch on 'granularity': {gran_a} vs {gran_b}")
    return issues


@dataclass
class Divergence:
    """The first position where the two op sequences disagree."""

    index: int
    op_a: Optional[LogicalOp]
    op_b: Optional[LogicalOp]
    context_a: List[LogicalOp] = field(default_factory=list)
    context_b: List[LogicalOp] = field(default_factory=list)

    def describe(self, labels: Tuple[str, str]) -> str:
        lines = [f"first divergence at logical op #{self.index}:"]
        for label, op, context in (
            (labels[0], self.op_a, self.context_a),
            (labels[1], self.op_b, self.context_b),
        ):
            lines.append(
                f"  {label}: {op if op is not None else '<sequence ended>'}"
            )
            for item in context:
                lines.append(f"      ... {item}")
        return "\n".join(lines)


@dataclass
class TraceDiff:
    """The full diff verdict of two traces."""

    labels: Tuple[str, str]
    ops_a: int
    ops_b: int
    divergence: Optional[Divergence]
    kind_totals_a: Dict[str, Dict[str, int]]
    kind_totals_b: Dict[str, Dict[str, int]]
    notes: List[str] = field(default_factory=list)

    @property
    def aligned(self) -> bool:
        """True when the logical-op sequences are identical."""
        return self.divergence is None and self.ops_a == self.ops_b

    def kind_deltas(self) -> Dict[str, Dict[str, int]]:
        """Per-kind ``b − a`` deltas of count/accesses/cycles."""
        deltas: Dict[str, Dict[str, int]] = {}
        for kind in sorted(set(self.kind_totals_a) | set(self.kind_totals_b)):
            slot_a = self.kind_totals_a.get(
                kind, {"count": 0, "accesses": 0, "cycles": 0}
            )
            slot_b = self.kind_totals_b.get(
                kind, {"count": 0, "accesses": 0, "cycles": 0}
            )
            deltas[kind] = {
                metric: slot_b[metric] - slot_a[metric]
                for metric in ("count", "accesses", "cycles")
            }
        return deltas

    def to_dict(self) -> Dict[str, Any]:
        return {
            "labels": list(self.labels),
            "aligned": self.aligned,
            "ops": {self.labels[0]: self.ops_a, self.labels[1]: self.ops_b},
            "first_divergence": (
                None
                if self.divergence is None
                else {
                    "index": self.divergence.index,
                    self.labels[0]: str(self.divergence.op_a),
                    self.labels[1]: str(self.divergence.op_b),
                }
            ),
            "kind_totals": {
                self.labels[0]: self.kind_totals_a,
                self.labels[1]: self.kind_totals_b,
            },
            "kind_deltas": self.kind_deltas(),
            "notes": list(self.notes),
        }

    def report(self) -> str:
        label_a, label_b = self.labels
        lines = [f"trace diff: {label_a} vs {label_b}"]
        if self.aligned:
            lines.append(
                f"  logical-op sequences identical "
                f"({self.ops_a} operations)"
            )
        else:
            lines.append(
                f"  logical-op sequences DIVERGE "
                f"({self.ops_a} vs {self.ops_b} operations)"
            )
            if self.divergence is not None:
                for row in self.divergence.describe(self.labels).splitlines():
                    lines.append(f"  {row}")
        lines += ["", "per-kind cost (batch spans folded into their op kind)"]
        lines.append(
            f"  {'kind':<16} {'metric':<10} {label_a:>12} {label_b:>12} "
            f"{'delta':>10} {'per-op':>9}"
        )
        deltas = self.kind_deltas()
        for kind in sorted(deltas):
            slot_a = self.kind_totals_a.get(
                kind, {"count": 0, "accesses": 0, "cycles": 0}
            )
            slot_b = self.kind_totals_b.get(
                kind, {"count": 0, "accesses": 0, "cycles": 0}
            )
            for metric in ("count", "accesses", "cycles"):
                delta = deltas[kind][metric]
                ops = max(slot_a["count"], slot_b["count"])
                per_op = f"{delta / ops:+.3f}" if ops and metric != "count" else ""
                lines.append(
                    f"  {kind:<16} {metric:<10} {slot_a[metric]:>12} "
                    f"{slot_b[metric]:>12} {delta:>+10} {per_op:>9}"
                )
        for note in self.notes:
            lines.append("")
            lines.append(note)
        return "\n".join(lines) + "\n"


def diff_traces(
    events_a: Sequence[TraceEvent],
    events_b: Sequence[TraceEvent],
    *,
    header_a: Optional[Dict[str, Any]] = None,
    header_b: Optional[Dict[str, Any]] = None,
    labels: Tuple[str, str] = ("a", "b"),
    force: bool = False,
    context: int = 3,
) -> TraceDiff:
    """Align two traces and fold their per-kind cost deltas.

    Raises :class:`TraceCompatibilityError` when both traces carry
    headers and their workload seeds or circuit configs differ, unless
    ``force`` is set (the mismatches are then demoted to notes).
    """
    notes: List[str] = []
    issues = header_issues(header_a, header_b)
    if issues:
        if not force:
            raise TraceCompatibilityError(
                "refusing to diff incompatible traces "
                "(pass force/--force to override):\n  "
                + "\n  ".join(issues)
            )
        notes.extend(f"forced past: {issue}" for issue in issues)
    if header_a is None or header_b is None:
        notes.append(
            "note: unframed trace(s) without a header record — workload "
            "compatibility not verified"
        )

    ops_a = logical_ops(events_a)
    ops_b = logical_ops(events_b)
    divergence: Optional[Divergence] = None
    limit = min(len(ops_a), len(ops_b))
    for index in range(limit):
        if ops_a[index].key != ops_b[index].key:
            divergence = _divergence_at(index, ops_a, ops_b, context)
            break
    if divergence is None and len(ops_a) != len(ops_b):
        divergence = _divergence_at(limit, ops_a, ops_b, context)

    return TraceDiff(
        labels=labels,
        ops_a=len(ops_a),
        ops_b=len(ops_b),
        divergence=divergence,
        kind_totals_a=kind_totals(events_a),
        kind_totals_b=kind_totals(events_b),
        notes=notes,
    )


def _divergence_at(
    index: int,
    ops_a: Sequence[LogicalOp],
    ops_b: Sequence[LogicalOp],
    context: int,
) -> Divergence:
    lo = max(0, index - context)
    return Divergence(
        index=index,
        op_a=ops_a[index] if index < len(ops_a) else None,
        op_b=ops_b[index] if index < len(ops_b) else None,
        context_a=list(ops_a[lo:index]),
        context_b=list(ops_b[lo:index]),
    )
