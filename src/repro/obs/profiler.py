"""Cycle/access attribution profiler over span-attributed trace deltas.

The tracer's attribution invariant — every memory access belongs to
exactly one event, spans carry only what their children did not claim —
makes a JSONL trace a complete cost ledger.  This module folds that
ledger three ways:

* **per-component** (:attr:`Profile.components`): reads/writes/total per
  registry structure (``tag_storage``, ``tree_level_0``, ...), i.e.
  where the memory bandwidth went;
* **per-kind** (:attr:`Profile.kinds`): count, self-cost, and cycles per
  event kind/name, i.e. which operations spent it — with *self* vs
  *total* semantics for spans (a ``insert_batch`` span's self-cost is
  its amortized bookkeeping; its total adds every child insert);
* **flamegraph frames** (:attr:`Profile.frames`): ``parent;child``
  semicolon paths with self-cost per frame, directly foldable by
  standard flamegraph tooling;
* **per-shard** (:attr:`Profile.shards`): cost rolled up by each
  event's ``component`` attr (``shard0``, ``shard1``, ``fabric``, ...),
  so a sharded or ``--workers`` trace answers *which shard* spent the
  accesses; empty for unstamped traces.

Worst-case forensics (:meth:`Profile.worst_cases`) ranks the top-K most
expensive single events and captures each with its surrounding event
window — the paper sells *fixed* per-op cost, so any outlier is either a
batch span (fine: amortized) or a bug, and the window shows what the
circuit was doing around it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .events import SPAN_KIND, TraceEvent


@dataclass
class KindRollup:
    """Aggregated cost of one event kind (or span name)."""

    count: int = 0
    reads: int = 0
    writes: int = 0
    cycles: int = 0
    #: children's claimed accesses (spans only); total = self + children
    child_accesses: int = 0

    @property
    def self_accesses(self) -> int:
        return self.reads + self.writes

    @property
    def total_accesses(self) -> int:
        return self.self_accesses + self.child_accesses

    def to_dict(self) -> Dict[str, int]:
        return {
            "count": self.count,
            "reads": self.reads,
            "writes": self.writes,
            "cycles": self.cycles,
            "self_accesses": self.self_accesses,
            "total_accesses": self.total_accesses,
        }


@dataclass
class WorstCase:
    """One of the top-K most expensive events, with its context window."""

    event: TraceEvent
    cost: int
    rank: int
    window: List[TraceEvent] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"#{self.rank}: event seq={self.event.seq} "
            f"{self.event.kind}/{self.event.name} cost={self.cost} accesses"
        ]
        for key in ("tag", "count", "root_literal", "purged"):
            if key in self.event.attrs:
                lines[0] += f" {key}={self.event.attrs[key]}"
        for neighbor in self.window:
            marker = ">>" if neighbor.seq == self.event.seq else "  "
            summary = _one_line(neighbor)
            lines.append(f"  {marker} {summary}")
        return "\n".join(lines)


def _one_line(event: TraceEvent) -> str:
    bits = [f"seq={event.seq}", event.kind]
    if event.name != event.kind:
        bits.append(event.name)
    for key in ("tag", "served_tag", "count", "root_literal", "occupancy"):
        if key in event.attrs:
            bits.append(f"{key}={event.attrs[key]}")
    if event.deltas:
        bits.append(f"cost={event.delta_total}")
    return " ".join(str(bit) for bit in bits)


class Profile:
    """The folded cost ledger of one trace."""

    def __init__(self, events: Sequence[TraceEvent]) -> None:
        self.events = list(events)
        #: span's own id -> (name, parent span id); from span-close attrs
        self._span_info: Dict[int, Tuple[str, Optional[int]]] = {}
        self.components: Dict[str, Dict[str, int]] = {}
        self.kinds: Dict[str, KindRollup] = {}
        self.frames: Dict[str, KindRollup] = {}
        #: component-stamped cost (``shard0``, ``fabric``, ...); empty
        #: for traces with no component stamps
        self.shards: Dict[str, KindRollup] = {}
        self._fold()

    # ------------------------------------------------------------------
    # folding

    def _fold(self) -> None:
        for event in self.events:
            if event.kind == SPAN_KIND and "span" in event.attrs:
                self._span_info[event.attrs["span"]] = (
                    event.name,
                    event.span_id,
                )
        for event in self.events:
            self._fold_components(event)
            self._fold_kind(event)
            self._fold_frame(event)
            self._fold_shard(event)

    def _fold_components(self, event: TraceEvent) -> None:
        for name, delta in event.deltas.items():
            slot = self.components.setdefault(
                name, {"reads": 0, "writes": 0, "total": 0}
            )
            slot["reads"] += delta.reads
            slot["writes"] += delta.writes
            slot["total"] += delta.total

    def _kind_key(self, event: TraceEvent) -> str:
        if event.kind == SPAN_KIND:
            return f"span:{event.name}"
        return event.kind

    def _fold_kind(self, event: TraceEvent) -> None:
        rollup = self.kinds.setdefault(self._kind_key(event), KindRollup())
        rollup.count += 1
        rollup.reads += event.delta_reads
        rollup.writes += event.delta_writes
        rollup.cycles += int(event.attrs.get("cycles", 0))
        # Charge every event's self-cost up to each enclosing span's
        # *total*, walking the reconstructed span ancestry (a close
        # event's span_id already names its parent).
        cost = event.delta_total
        if cost:
            parent = event.span_id
            seen = set()
            while parent is not None and parent not in seen:
                seen.add(parent)
                info = self._span_info.get(parent)
                if info is None:
                    break
                name, grandparent = info
                enclosing = self.kinds.setdefault(
                    f"span:{name}", KindRollup()
                )
                enclosing.child_accesses += cost
                parent = grandparent

    def _fold_shard(self, event: TraceEvent) -> None:
        component = event.attrs.get("component")
        if component is None:
            return
        rollup = self.shards.setdefault(str(component), KindRollup())
        rollup.count += 1
        rollup.reads += event.delta_reads
        rollup.writes += event.delta_writes
        rollup.cycles += int(event.attrs.get("cycles", 0))

    def _path(self, event: TraceEvent) -> str:
        """Semicolon-joined span ancestry ending at the event's name."""
        parts: List[str] = [event.name]
        parent = event.span_id
        seen = set()
        while parent is not None and parent not in seen:
            seen.add(parent)
            info = self._span_info.get(parent)
            if info is None:
                break
            name, grandparent = info
            parts.append(name)
            parent = grandparent
        return ";".join(reversed(parts))

    def _fold_frame(self, event: TraceEvent) -> None:
        frame = self.frames.setdefault(self._path(event), KindRollup())
        frame.count += 1
        frame.reads += event.delta_reads
        frame.writes += event.delta_writes
        frame.cycles += int(event.attrs.get("cycles", 0))

    # ------------------------------------------------------------------
    # queries

    def worst_cases(self, k: int = 5, *, window: int = 3) -> List[WorstCase]:
        """The top-``k`` most expensive events with ±``window`` context.

        Cost is the event's *self* access delta — exactly the traffic the
        attribution invariant pins on it.
        """
        ranked = sorted(
            (event for event in self.events if event.delta_total),
            key=lambda event: (-event.delta_total, event.seq),
        )[: max(0, k)]
        by_seq = {event.seq: index for index, event in enumerate(self.events)}
        cases: List[WorstCase] = []
        for rank, event in enumerate(ranked, start=1):
            center = by_seq[event.seq]
            lo = max(0, center - window)
            hi = min(len(self.events), center + window + 1)
            cases.append(
                WorstCase(
                    event=event,
                    cost=event.delta_total,
                    rank=rank,
                    window=self.events[lo:hi],
                )
            )
        return cases

    def total_accesses(self) -> int:
        return sum(slot["total"] for slot in self.components.values())

    def total_cycles(self) -> int:
        return sum(rollup.cycles for rollup in self.kinds.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": len(self.events),
            "total_accesses": self.total_accesses(),
            "total_cycles": self.total_cycles(),
            "components": {
                name: dict(slot) for name, slot in self.components.items()
            },
            "kinds": {
                name: rollup.to_dict() for name, rollup in self.kinds.items()
            },
            "frames": {
                path: rollup.to_dict() for path, rollup in self.frames.items()
            },
            "shards": {
                name: rollup.to_dict() for name, rollup in self.shards.items()
            },
        }

    # ------------------------------------------------------------------
    # rendering

    def flamegraph_lines(self) -> List[str]:
        """``path value`` folded-stack lines (flamegraph.pl input).

        The value is the frame's *self* access count, so the rendered
        graph preserves the attribution invariant: frames sum to the
        trace total.
        """
        return [
            f"{path} {rollup.self_accesses}"
            for path, rollup in sorted(self.frames.items())
            if rollup.self_accesses
        ]

    def report(self, *, top_k: int = 5, window: int = 3) -> str:
        """The human-readable profile."""
        lines = [
            f"profile over {len(self.events)} events: "
            f"{self.total_accesses()} accesses, "
            f"{self.total_cycles()} cycles"
        ]

        lines += ["", "per-component memory traffic"]
        lines.append(
            f"  {'structure':<24} {'reads':>10} {'writes':>10} {'total':>10}"
        )
        for name in sorted(
            self.components, key=lambda n: -self.components[n]["total"]
        ):
            slot = self.components[name]
            lines.append(
                f"  {name:<24} {slot['reads']:>10} {slot['writes']:>10} "
                f"{slot['total']:>10}"
            )

        lines += ["", "per-kind cost (self / total accesses)"]
        lines.append(
            f"  {'kind':<24} {'count':>8} {'self':>10} {'total':>10} "
            f"{'cycles':>10} {'self/op':>8}"
        )
        for name in sorted(
            self.kinds, key=lambda n: -self.kinds[n].total_accesses
        ):
            rollup = self.kinds[name]
            per_op = (
                rollup.self_accesses / rollup.count if rollup.count else 0.0
            )
            lines.append(
                f"  {name:<24} {rollup.count:>8} {rollup.self_accesses:>10} "
                f"{rollup.total_accesses:>10} {rollup.cycles:>10} "
                f"{per_op:>8.2f}"
            )

        if self.shards:
            lines += ["", "per-shard cost (component-stamped events)"]
            lines.append(
                f"  {'component':<24} {'count':>8} {'reads':>10} "
                f"{'writes':>10} {'accesses':>10}"
            )
            for name in sorted(self.shards):
                rollup = self.shards[name]
                lines.append(
                    f"  {name:<24} {rollup.count:>8} {rollup.reads:>10} "
                    f"{rollup.writes:>10} {rollup.self_accesses:>10}"
                )

        lines += ["", "flamegraph frames (self accesses)"]
        for line in self.flamegraph_lines():
            lines.append(f"  {line}")

        cases = self.worst_cases(top_k, window=window)
        if cases:
            lines += ["", f"worst-case forensics (top {len(cases)})"]
            for case in cases:
                lines.append("")
                for row in case.describe().splitlines():
                    lines.append(f"  {row}")
        return "\n".join(lines) + "\n"


def profile_events(events: Sequence[TraceEvent]) -> Profile:
    """Fold a loaded event list into a :class:`Profile`."""
    return Profile(events)
