"""Standard look-ahead closest-match circuit.

Analogous to a single-level carry-look-ahead adder: bits are grouped into
4-bit look-ahead groups whose "a set bit exists here" signals are computed
in two gate levels, but the group-to-group signal still ripples.  Delay
therefore grows linearly in the number of groups — a factor-4 improvement
over ripple, visible as the second-steepest curve in Fig. 7.
"""

from __future__ import annotations

import math
from typing import Optional

from ...hwsim.gates import Cost, GATE_AREA, GATE_DELAY
from .base import MatchingCircuit, MatchResult

GROUP_BITS = 4


class LookaheadMatcher(MatchingCircuit):
    """Group-parallel, group-serial priority encode."""

    name = "lookahead"

    def _priority_encode(self, masked: int, top: int) -> Optional[int]:
        """Scan 4-bit groups from the target's group downward.

        Within a group all bits are examined in parallel (the look-ahead
        part); between groups the scan is serial (the ripple part).
        """
        group_mask = (1 << GROUP_BITS) - 1
        top_group = top // GROUP_BITS
        for group in range(top_group, -1, -1):
            bits = (masked >> (group * GROUP_BITS)) & group_mask
            if bits == 0:
                continue
            highest = bits.bit_length() - 1
            return group * GROUP_BITS + highest
        return None

    def search(self, word_mask: int, target: int) -> MatchResult:
        self._validate(word_mask, target)
        low_mask = (1 << (target + 1)) - 1
        primary = self._priority_encode(word_mask & low_mask, target)
        backup = None
        if primary is not None and primary > 0:
            backup = self._priority_encode(
                word_mask & ((1 << primary) - 1), primary - 1
            )
        return MatchResult(primary=primary, backup=backup)

    def cost(self) -> Cost:
        groups = math.ceil(self.width / GROUP_BITS)
        # Two levels of look-ahead logic per group plus a serial group
        # chain; the in-group encode adds a constant tail.
        delay = 2 * GATE_DELAY * groups + 6 * GATE_DELAY
        # Group look-ahead logic costs ~5 gates per bit.
        return Cost(delay=delay, area=5 * GATE_AREA * self.width)
