"""Closest-match node-search circuits (paper Section III-B, ref. [13]).

Five structurally distinct implementations of the same node-search
function, plus a golden reference model.  :data:`ALL_MATCHERS` drives the
Fig. 7 / Fig. 8 sweeps.
"""

from typing import Dict, Type

from .base import MatchingCircuit, MatchResult, highest_set_bit, reference_search
from .block_lookahead import BlockLookaheadMatcher
from .netlist import Netlist, build_matcher_netlist, netlist_search
from .lookahead import LookaheadMatcher
from .ripple import RippleMatcher
from .select_lookahead import SelectLookaheadMatcher, optimal_select_block
from .skip_lookahead import SkipLookaheadMatcher, optimal_skip_block

ALL_MATCHERS: Dict[str, Type[MatchingCircuit]] = {
    RippleMatcher.name: RippleMatcher,
    LookaheadMatcher.name: LookaheadMatcher,
    BlockLookaheadMatcher.name: BlockLookaheadMatcher,
    SkipLookaheadMatcher.name: SkipLookaheadMatcher,
    SelectLookaheadMatcher.name: SelectLookaheadMatcher,
}
"""All circuit topologies, keyed by their short names."""

DEFAULT_MATCHER = SelectLookaheadMatcher
"""The topology used in the final architecture (fastest per ref. [13])."""

__all__ = [
    "MatchingCircuit",
    "MatchResult",
    "reference_search",
    "Netlist",
    "build_matcher_netlist",
    "netlist_search",
    "highest_set_bit",
    "RippleMatcher",
    "LookaheadMatcher",
    "BlockLookaheadMatcher",
    "SkipLookaheadMatcher",
    "SelectLookaheadMatcher",
    "optimal_select_block",
    "optimal_skip_block",
    "ALL_MATCHERS",
    "DEFAULT_MATCHER",
]
