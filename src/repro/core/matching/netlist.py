"""Gate-level netlist realization of the closest-match function.

The behavioral matchers in this package model *cost* analytically; this
module goes one level deeper and actually builds the matcher out of
two-input gates, evaluates it bit by bit, and measures depth and gate
count structurally — a micro-RTL cross-check of both the function and
the Fig. 7/8 cost models:

* :func:`build_matcher_netlist` emits the priority-encode-below-target
  circuit: a thermometer mask of the target, an eligibility AND plane,
  a suffix-OR "found above" network, and one-hot primary/backup selects
  (the backup plane is the same structure with the primary bit masked —
  the paper's parallel secondary lookup);
* the suffix-OR network comes in two topologies, ``"ripple"`` (serial
  chain, linear depth) and ``"tree"`` (Kogge–Stone-style parallel
  prefix, logarithmic depth), mirroring the ripple vs look-ahead split
  of ref. [13];
* :class:`Netlist` evaluates with plain boolean propagation and reports
  longest-path depth and gate count, which the tests compare against the
  analytic :class:`~repro.core.matching.base.MatchingCircuit` costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...hwsim.errors import ConfigurationError


@dataclass(frozen=True)
class Gate:
    """One two-input (or one-input) logic gate."""

    kind: str  # "AND" | "OR" | "NOT"
    inputs: Tuple[int, ...]
    output: int


@dataclass
class Netlist:
    """A feed-forward gate network over numbered nets."""

    input_nets: Dict[str, int] = field(default_factory=dict)
    output_nets: Dict[str, int] = field(default_factory=dict)
    gates: List[Gate] = field(default_factory=list)
    _next_net: int = 0

    # ------------------------------------------------------------------
    # construction

    def new_net(self) -> int:
        net = self._next_net
        self._next_net += 1
        return net

    def add_input(self, name: str) -> int:
        if name in self.input_nets:
            raise ConfigurationError(f"duplicate input {name!r}")
        net = self.new_net()
        self.input_nets[name] = net
        return net

    def add_gate(self, kind: str, *inputs: int) -> int:
        if kind not in ("AND", "OR", "NOT"):
            raise ConfigurationError(f"unknown gate kind {kind!r}")
        if kind == "NOT" and len(inputs) != 1:
            raise ConfigurationError("NOT takes exactly one input")
        if kind != "NOT" and len(inputs) != 2:
            raise ConfigurationError(f"{kind} takes exactly two inputs")
        output = self.new_net()
        self.gates.append(Gate(kind=kind, inputs=tuple(inputs), output=output))
        return output

    def mark_output(self, name: str, net: int) -> None:
        self.output_nets[name] = net

    # ------------------------------------------------------------------
    # analysis

    def evaluate(self, inputs: Dict[str, bool]) -> Dict[str, bool]:
        """Propagate boolean values through the network."""
        values: Dict[int, bool] = {}
        for name, net in self.input_nets.items():
            if name not in inputs:
                raise ConfigurationError(f"missing input {name!r}")
            values[net] = bool(inputs[name])
        for gate in self.gates:  # gates are emitted in topological order
            operands = [values[net] for net in gate.inputs]
            if gate.kind == "AND":
                values[gate.output] = operands[0] and operands[1]
            elif gate.kind == "OR":
                values[gate.output] = operands[0] or operands[1]
            else:
                values[gate.output] = not operands[0]
        return {
            name: values[net] for name, net in self.output_nets.items()
        }

    def depth(self) -> int:
        """Longest input-to-output path in gate levels (NOT counts 0,
        matching the unit-gate convention of repro.hwsim.gates)."""
        level: Dict[int, int] = {
            net: 0 for net in self.input_nets.values()
        }
        deepest = 0
        for gate in self.gates:
            cost = 0 if gate.kind == "NOT" else 1
            gate_level = max(level[net] for net in gate.inputs) + cost
            level[gate.output] = gate_level
            deepest = max(deepest, gate_level)
        return deepest

    def gate_count(self) -> int:
        """Two-input gates (NOT counts half, per the area convention)."""
        full = sum(1 for gate in self.gates if gate.kind != "NOT")
        inverters = sum(1 for gate in self.gates if gate.kind == "NOT")
        return full + (inverters + 1) // 2


def _suffix_or_ripple(netlist: Netlist, bits: Sequence[int]) -> List[int]:
    """above[i] = OR of bits[j] for j > i, as a serial chain."""
    width = len(bits)
    above: List[Optional[int]] = [None] * width
    running: Optional[int] = None
    for position in range(width - 1, -1, -1):
        above[position] = running
        if running is None:
            running = bits[position]
        else:
            running = netlist.add_gate("OR", bits[position], running)
    return above


def _suffix_or_tree(netlist: Netlist, bits: Sequence[int]) -> List[int]:
    """The same suffix-OR, as a Kogge–Stone parallel-prefix network."""
    width = len(bits)
    # exclusive suffix: shift by one, then inclusive-suffix the rest
    current: List[Optional[int]] = [
        bits[position + 1] if position + 1 < width else None
        for position in range(width)
    ]
    distance = 1
    while distance < width:
        updated = list(current)
        for position in range(width):
            other = position + distance
            if other < width and current[other] is not None:
                if current[position] is None:
                    updated[position] = current[other]
                else:
                    updated[position] = netlist.add_gate(
                        "OR", current[position], current[other]
                    )
        current = updated
        distance *= 2
    return current


def build_matcher_netlist(width: int, *, topology: str = "tree") -> Netlist:
    """Emit the full closest-match circuit for ``width``-bit nodes.

    Inputs: ``m0..m{w-1}`` (the node word) and ``t0..t{w-1}`` (a
    thermometer code of the target: ``t_i = 1`` iff ``i <= target``).
    Outputs: one-hot ``p0..`` (primary match), one-hot ``b0..`` (backup
    match), and ``none`` (primary search failed — the Fig. 5 point-A
    signal).
    """
    if width < 2:
        raise ConfigurationError("need at least 2 bits")
    if topology not in ("ripple", "tree"):
        raise ConfigurationError(f"unknown topology {topology!r}")
    netlist = Netlist()
    mask = [netlist.add_input(f"m{i}") for i in range(width)]
    thermometer = [netlist.add_input(f"t{i}") for i in range(width)]

    eligible = [
        netlist.add_gate("AND", mask[i], thermometer[i]) for i in range(width)
    ]
    suffix = (
        _suffix_or_ripple if topology == "ripple" else _suffix_or_tree
    )
    above = suffix(netlist, eligible)

    primary = []
    for position in range(width):
        if above[position] is None:
            primary.append(eligible[position])
        else:
            inverted = netlist.add_gate("NOT", above[position])
            primary.append(
                netlist.add_gate("AND", eligible[position], inverted)
            )
        netlist.mark_output(f"p{position}", primary[position])

    # The parallel backup plane: the same encode over eligible bits with
    # the primary bit removed.
    secondary = [
        netlist.add_gate(
            "AND",
            eligible[position],
            netlist.add_gate("NOT", primary[position]),
        )
        for position in range(width)
    ]
    above2 = suffix(netlist, secondary)
    for position in range(width):
        if above2[position] is None:
            backup = secondary[position]
        else:
            inverted = netlist.add_gate("NOT", above2[position])
            backup = netlist.add_gate("AND", secondary[position], inverted)
        netlist.mark_output(f"b{position}", backup)

    # none = NOT(OR of all eligible): a balanced OR tree.
    frontier = list(eligible)
    while len(frontier) > 1:
        paired = []
        for index in range(0, len(frontier) - 1, 2):
            paired.append(
                netlist.add_gate("OR", frontier[index], frontier[index + 1])
            )
        if len(frontier) % 2:
            paired.append(frontier[-1])
        frontier = paired
    netlist.mark_output("none", netlist.add_gate("NOT", frontier[0]))
    return netlist


def netlist_search(
    netlist: Netlist, width: int, word_mask: int, target: int
) -> Tuple[Optional[int], Optional[int]]:
    """Run one search on a built netlist; returns (primary, backup)."""
    inputs = {}
    for position in range(width):
        inputs[f"m{position}"] = bool(word_mask >> position & 1)
        inputs[f"t{position}"] = position <= target
    outputs = netlist.evaluate(inputs)
    primary = next(
        (
            position
            for position in range(width)
            if outputs[f"p{position}"]
        ),
        None,
    )
    backup = next(
        (
            position
            for position in range(width)
            if outputs[f"b{position}"]
        ),
        None,
    )
    return primary, backup
