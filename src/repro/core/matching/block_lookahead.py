"""Block look-ahead closest-match circuit.

Two-level look-ahead: 4-bit groups feed 4-group super-blocks whose
block-level "set bit exists" signals are themselves computed with
look-ahead logic.  The inter-block chain is then over ``width/16``
super-blocks, flattening the delay curve at the cost of a second level of
look-ahead logic (the largest area of the five topologies in Fig. 8).
"""

from __future__ import annotations

import math
from typing import Optional

from ...hwsim.gates import Cost, GATE_AREA, GATE_DELAY
from .base import MatchingCircuit, MatchResult

GROUP_BITS = 4
GROUPS_PER_BLOCK = 4
BLOCK_BITS = GROUP_BITS * GROUPS_PER_BLOCK


class BlockLookaheadMatcher(MatchingCircuit):
    """Two-level look-ahead priority encode."""

    name = "block_lookahead"

    def _priority_encode(self, masked: int, top: int) -> Optional[int]:
        """Scan 16-bit super-blocks, then 4-bit groups, then bits."""
        block_mask = (1 << BLOCK_BITS) - 1
        group_mask = (1 << GROUP_BITS) - 1
        top_block = top // BLOCK_BITS
        for block in range(top_block, -1, -1):
            block_bits = (masked >> (block * BLOCK_BITS)) & block_mask
            if block_bits == 0:
                continue
            for group in range(GROUPS_PER_BLOCK - 1, -1, -1):
                group_bits = (block_bits >> (group * GROUP_BITS)) & group_mask
                if group_bits == 0:
                    continue
                highest = group_bits.bit_length() - 1
                return block * BLOCK_BITS + group * GROUP_BITS + highest
        return None

    def search(self, word_mask: int, target: int) -> MatchResult:
        self._validate(word_mask, target)
        low_mask = (1 << (target + 1)) - 1
        primary = self._priority_encode(word_mask & low_mask, target)
        backup = None
        if primary is not None and primary > 0:
            backup = self._priority_encode(
                word_mask & ((1 << primary) - 1), primary - 1
            )
        return MatchResult(primary=primary, backup=backup)

    def cost(self) -> Cost:
        blocks = math.ceil(self.width / BLOCK_BITS)
        # Group look-ahead (2 levels) + block look-ahead (2 levels) + the
        # inter-block chain + re-descent through both levels on the way
        # back down to the selected bit.
        delay = 2 * GATE_DELAY * blocks + 16 * GATE_DELAY
        # Two look-ahead levels cost ~6.5 gates per bit.
        return Cost(delay=delay, area=6.5 * GATE_AREA * self.width)
