"""Closest-match node search: interface and reference model.

Each node of the multi-bit tree is a ``b``-bit word in which bit ``i``
records whether literal ``i`` is present below the node.  The per-node
search the paper describes (Section III-A) needs, for a target literal
``t``:

* the **primary match** — the highest set bit at position <= ``t``
  ("an exact or next smallest match is returned");
* the **backup match** — "the next literal less than that targeted by the
  primary search", i.e. the highest set bit strictly below the primary
  match, used when the search fails in a deeper level (Fig. 5, point B).

Both are priority-encode-below-threshold operations.  The five circuit
topologies of ref. [13] (ripple, look-ahead, block look-ahead,
skip & look-ahead, select & look-ahead) all compute this same function with
different delay/area trade-offs; every subclass here implements the search
*functionally* in the style of its hardware structure, and all are checked
against :func:`reference_search` in the test suite.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ...hwsim.errors import ConfigurationError
from ...hwsim.gates import Cost, gates_to_luts


@dataclass(frozen=True)
class MatchResult:
    """Outcome of one node search.

    Attributes:
        primary: highest set bit position <= target, or None if no set bit
            at or below the target exists (search-path failure, Fig. 5
            point A).
        backup: highest set bit strictly below ``primary``, or None.
    """

    primary: Optional[int]
    backup: Optional[int]

    @property
    def exact(self) -> bool:
        """Whether the primary match can be an exact hit (resolved by caller).

        The result object does not carry the target, so exactness is
        determined by the tree that issued the search; this property is
        only meaningful on results the tree has annotated.
        """
        raise NotImplementedError(
            "exactness is target-relative; compare primary to the target"
        )


def reference_search(word_mask: int, width: int, target: int) -> MatchResult:
    """Golden-model search used to validate every circuit implementation."""
    if width < 1:
        raise ConfigurationError("node width must be positive")
    if not 0 <= target < width:
        raise ConfigurationError(f"target {target} outside [0, {width})")
    if word_mask < 0 or word_mask >> width:
        raise ConfigurationError("word mask wider than the node")
    primary = None
    for position in range(target, -1, -1):
        if word_mask >> position & 1:
            primary = position
            break
    backup = None
    if primary is not None:
        for position in range(primary - 1, -1, -1):
            if word_mask >> position & 1:
                backup = position
                break
    return MatchResult(primary=primary, backup=backup)


def highest_set_bit(word_mask: int, width: int) -> Optional[int]:
    """Position of the most significant set bit, or None if empty.

    This is the "follow the maximum value" rule applied in levels below a
    non-exact match (Fig. 4) and along the backup path (Fig. 5).
    """
    if word_mask < 0 or word_mask >> width:
        raise ConfigurationError("word mask wider than the node")
    if word_mask == 0:
        return None
    return word_mask.bit_length() - 1


class MatchingCircuit(ABC):
    """A closest-match circuit for ``width``-bit nodes."""

    #: short identifier used in benchmark tables
    name: str = "abstract"

    def __init__(self, width: int) -> None:
        if width < 2:
            raise ConfigurationError("matching circuits need at least 2 bits")
        self.width = width

    @abstractmethod
    def search(self, word_mask: int, target: int) -> MatchResult:
        """Compute the primary and backup matches for ``target``."""

    @abstractmethod
    def cost(self) -> Cost:
        """Critical-path delay and logic area in unit-gate terms."""

    def delay(self) -> float:
        """Critical-path delay in unit-gate delays."""
        return self.cost().delay

    def area_luts(self) -> float:
        """Logic area expressed as equivalent 4-input LUTs (Fig. 8 units)."""
        return gates_to_luts(self.cost().area)

    def _validate(self, word_mask: int, target: int) -> None:
        if not 0 <= target < self.width:
            raise ConfigurationError(
                f"target {target} outside [0, {self.width})"
            )
        if word_mask < 0 or word_mask >> self.width:
            raise ConfigurationError("word mask wider than the node")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(width={self.width})"
