"""Closest-match node search: interface and reference model.

Each node of the multi-bit tree is a ``b``-bit word in which bit ``i``
records whether literal ``i`` is present below the node.  The per-node
search the paper describes (Section III-A) needs, for a target literal
``t``:

* the **primary match** — the highest set bit at position <= ``t``
  ("an exact or next smallest match is returned");
* the **backup match** — "the next literal less than that targeted by the
  primary search", i.e. the highest set bit strictly below the primary
  match, used when the search fails in a deeper level (Fig. 5, point B).

Both are priority-encode-below-threshold operations.  The five circuit
topologies of ref. [13] (ripple, look-ahead, block look-ahead,
skip & look-ahead, select & look-ahead) all compute this same function with
different delay/area trade-offs; every subclass here implements the search
*functionally* in the style of its hardware structure, and all are checked
against :func:`reference_search` in the test suite.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from ...hwsim.errors import ConfigurationError
from ...hwsim.gates import Cost, gates_to_luts


class MatchResult:
    """Outcome of one node search.

    A frozen value object.  Hand-rolled (rather than a frozen dataclass)
    so ``__slots__`` keeps the per-search allocation to the two fields —
    one of these is created per tree level per operation, making it one
    of the hottest allocations in the simulator.

    Attributes:
        primary: highest set bit position <= target, or None if no set bit
            at or below the target exists (search-path failure, Fig. 5
            point A).
        backup: highest set bit strictly below ``primary``, or None.
    """

    __slots__ = ("primary", "backup")

    def __init__(
        self, primary: Optional[int], backup: Optional[int]
    ) -> None:
        object.__setattr__(self, "primary", primary)
        object.__setattr__(self, "backup", backup)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("MatchResult is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchResult):
            return NotImplemented
        return self.primary == other.primary and self.backup == other.backup

    def __hash__(self) -> int:
        return hash((self.primary, self.backup))

    def __repr__(self) -> str:
        return (
            f"MatchResult(primary={self.primary!r}, backup={self.backup!r})"
        )

    @property
    def exact(self) -> bool:
        """Whether the primary match can be an exact hit (resolved by caller).

        The result object does not carry the target, so exactness is
        determined by the tree that issued the search; this property is
        only meaningful on results the tree has annotated.
        """
        raise NotImplementedError(
            "exactness is target-relative; compare primary to the target"
        )


def reference_search(word_mask: int, width: int, target: int) -> MatchResult:
    """Golden-model search used to validate every circuit implementation."""
    if width < 1:
        raise ConfigurationError("node width must be positive")
    if not 0 <= target < width:
        raise ConfigurationError(f"target {target} outside [0, {width})")
    if word_mask < 0 or word_mask >> width:
        raise ConfigurationError("word mask wider than the node")
    primary = None
    for position in range(target, -1, -1):
        if word_mask >> position & 1:
            primary = position
            break
    backup = None
    if primary is not None:
        for position in range(primary - 1, -1, -1):
            if word_mask >> position & 1:
                backup = position
                break
    return MatchResult(primary=primary, backup=backup)


def highest_set_bit(word_mask: int, width: int) -> Optional[int]:
    """Position of the most significant set bit, or None if empty.

    This is the "follow the maximum value" rule applied in levels below a
    non-exact match (Fig. 4) and along the backup path (Fig. 5).
    """
    if word_mask < 0 or word_mask >> width:
        raise ConfigurationError("word mask wider than the node")
    if word_mask == 0:
        return None
    return word_mask.bit_length() - 1


class MatchingCircuit(ABC):
    """A closest-match circuit for ``width``-bit nodes."""

    #: short identifier used in benchmark tables
    name: str = "abstract"

    def __init__(self, width: int) -> None:
        if width < 2:
            raise ConfigurationError("matching circuits need at least 2 bits")
        self.width = width

    @abstractmethod
    def search(self, word_mask: int, target: int) -> MatchResult:
        """Compute the primary and backup matches for ``target``."""

    def search_fast(self, word_mask: int, target: int) -> MatchResult:
        """Bit-parallel kernel computing the same function as :meth:`search`.

        The hardware completes both priority encodes within the node's
        fixed access slot regardless of word length; a per-bit Python
        loop does not.  This kernel reaches the same answer with O(1)
        machine-word operations: mask off everything above the target,
        take the highest remaining set bit (the primary), strip it, and
        take the next highest (the backup).  Every topology inherits it
        unchanged — the function is topology-independent, only the
        delay/area cost model differs — and the differential test suite
        holds it equal to each topology's structural :meth:`search` over
        the full (word_mask, target) space.
        """
        self._validate(word_mask, target)
        masked = word_mask & ((2 << target) - 1)
        if not masked:
            return MatchResult(None, None)
        primary = masked.bit_length() - 1
        below = masked ^ (1 << primary)
        return MatchResult(primary, below.bit_length() - 1 if below else None)

    @abstractmethod
    def cost(self) -> Cost:
        """Critical-path delay and logic area in unit-gate terms."""

    def delay(self) -> float:
        """Critical-path delay in unit-gate delays."""
        return self.cost().delay

    def area_luts(self) -> float:
        """Logic area expressed as equivalent 4-input LUTs (Fig. 8 units)."""
        return gates_to_luts(self.cost().area)

    def _validate(self, word_mask: int, target: int) -> None:
        if not 0 <= target < self.width:
            raise ConfigurationError(
                f"target {target} outside [0, {self.width})"
            )
        if word_mask < 0 or word_mask >> self.width:
            raise ConfigurationError("word mask wider than the node")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(width={self.width})"
