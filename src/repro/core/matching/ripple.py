"""Ripple-cell closest-match circuit.

The simplest topology from ref. [13]: a "not found yet" signal ripples
from the target bit position down to bit 0, one AND-OR cell per position.
Delay grows linearly with node width, which is why Fig. 7 shows the ripple
curve diverging from every accelerated variant.
"""

from __future__ import annotations

from typing import Optional

from ...hwsim.gates import Cost, GATE_AREA, GATE_DELAY
from .base import MatchingCircuit, MatchResult


class RippleMatcher(MatchingCircuit):
    """Bit-serial priority encode below the target."""

    name = "ripple"

    def _priority_encode(self, masked: int, top: int) -> Optional[int]:
        """Walk bit by bit downward, as the ripple chain does."""
        for position in range(top, -1, -1):
            if masked >> position & 1:
                return position
        return None

    def search(self, word_mask: int, target: int) -> MatchResult:
        self._validate(word_mask, target)
        primary = self._priority_encode(word_mask, target)
        backup = None
        if primary is not None and primary > 0:
            backup = self._priority_encode(
                word_mask & ~(1 << primary), primary - 1
            )
        return MatchResult(primary=primary, backup=backup)

    def cost(self) -> Cost:
        # One AND-OR cell per bit position (2 gate delays each), plus the
        # target-mask decode and final position encode (4 delays, ~b area).
        chain_delay = 2 * GATE_DELAY * self.width
        return Cost(
            delay=chain_delay + 2 * GATE_DELAY,
            area=3 * GATE_AREA * self.width,
        )
