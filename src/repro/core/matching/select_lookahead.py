"""Select & look-ahead closest-match circuit — the paper's choice.

Analogous to a carry-select adder: the word is split into
``ceil(sqrt(2 * width))``-bit blocks, each of which computes its local
priority encode *speculatively and in parallel* using two-level look-ahead
logic; a fast mux chain then selects, from the highest block downward, the
first block that actually holds a set bit.  Because block results are
ready before the select chain arrives, the critical path is just the block
look-ahead depth plus the mux chain — the flattest curve in Fig. 7.

Ref. [13] found this variant "the fastest and most hardware efficient
option available"; at 16 bits on Altera Stratix II it ran at 154 MHz,
which the paper converts to >44 Gb/s for 140-byte average packets.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ...hwsim.gates import Cost, GATE_AREA, GATE_DELAY, MUX_DELAY
from .base import MatchingCircuit, MatchResult


def optimal_select_block(width: int) -> int:
    """Select-chain block sizing: sqrt(2 * width), at least 2."""
    return max(2, math.ceil(math.sqrt(2 * width)))


class SelectLookaheadMatcher(MatchingCircuit):
    """Speculative per-block encode with a mux select chain."""

    name = "select_lookahead"

    def __init__(self, width: int) -> None:
        super().__init__(width)
        self.block_bits = optimal_select_block(width)

    def _block_encodes(self, masked: int) -> List[Tuple[bool, int]]:
        """Per-block (any set bit, local highest position), all in parallel.

        This is the speculative stage: every block computes its answer
        before knowing whether it will be selected.
        """
        block_mask = (1 << self.block_bits) - 1
        blocks = math.ceil(self.width / self.block_bits)
        encodes = []
        for block in range(blocks):
            bits = (masked >> (block * self.block_bits)) & block_mask
            if bits:
                encodes.append((True, bits.bit_length() - 1))
            else:
                encodes.append((False, 0))
        return encodes

    def _priority_encode(self, masked: int, top: int) -> Optional[int]:
        encodes = self._block_encodes(masked)
        top_block = top // self.block_bits
        # The select chain walks from the target's block downward and
        # latches the first block whose speculative "any" flag is set.
        for block in range(top_block, -1, -1):
            any_set, local = encodes[block]
            if any_set:
                return block * self.block_bits + local
        return None

    def search(self, word_mask: int, target: int) -> MatchResult:
        self._validate(word_mask, target)
        low_mask = (1 << (target + 1)) - 1
        primary = self._priority_encode(word_mask & low_mask, target)
        backup = None
        if primary is not None and primary > 0:
            backup = self._priority_encode(
                word_mask & ((1 << primary) - 1), primary - 1
            )
        return MatchResult(primary=primary, backup=backup)

    def cost(self) -> Cost:
        blocks = math.ceil(self.width / self.block_bits)
        # Blocks encode in parallel with look-ahead logic (log depth),
        # then the select mux chain runs over the block count.
        block_depth = 2 * math.ceil(math.log2(self.block_bits)) + 2
        select_chain = MUX_DELAY * blocks
        return Cost(
            delay=block_depth * GATE_DELAY + select_chain,
            area=4 * GATE_AREA * self.width,
        )
