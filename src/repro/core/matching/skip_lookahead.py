"""Skip & look-ahead closest-match circuit.

Analogous to a carry-skip adder: the word is split into blocks of
``ceil(sqrt(width / 2))`` bits (the classic optimum for a skip chain).
An empty block is *skipped* in one mux delay instead of being rippled
through; only the first and last blocks touched by the search pay the full
in-block ripple.  Worst-case delay grows with the square root of the node
width.
"""

from __future__ import annotations

import math
from typing import Optional

from ...hwsim.gates import Cost, GATE_AREA, GATE_DELAY, MUX_DELAY
from .base import MatchingCircuit, MatchResult


def optimal_skip_block(width: int) -> int:
    """Classic carry-skip block sizing: sqrt(width / 2), at least 2."""
    return max(2, math.ceil(math.sqrt(width / 2)))


class SkipLookaheadMatcher(MatchingCircuit):
    """Block-skip priority encode."""

    name = "skip_lookahead"

    def __init__(self, width: int) -> None:
        super().__init__(width)
        self.block_bits = optimal_skip_block(width)

    def _priority_encode(self, masked: int, top: int) -> Optional[int]:
        """Skip whole empty blocks; ripple only inside a hit block."""
        block_mask = (1 << self.block_bits) - 1
        top_block = top // self.block_bits
        for block in range(top_block, -1, -1):
            bits = (masked >> (block * self.block_bits)) & block_mask
            if bits == 0:
                continue  # this is the one-mux-delay skip
            for position in range(self.block_bits - 1, -1, -1):
                if bits >> position & 1:
                    return block * self.block_bits + position
        return None

    def search(self, word_mask: int, target: int) -> MatchResult:
        self._validate(word_mask, target)
        low_mask = (1 << (target + 1)) - 1
        primary = self._priority_encode(word_mask & low_mask, target)
        backup = None
        if primary is not None and primary > 0:
            backup = self._priority_encode(
                word_mask & ((1 << primary) - 1), primary - 1
            )
        return MatchResult(primary=primary, backup=backup)

    def cost(self) -> Cost:
        blocks = math.ceil(self.width / self.block_bits)
        # Worst case: ripple through the entry block, skip the middle
        # blocks (one mux each), ripple through the exit block.
        ripple_ends = 2 * (2 * GATE_DELAY * self.block_bits)
        skip_chain = MUX_DELAY * blocks
        return Cost(
            delay=ripple_ends + skip_chain + 2 * GATE_DELAY,
            area=4.5 * GATE_AREA * self.width,
        )
