"""The paper's primary contribution: the tag sort/retrieve circuit.

Public surface:

* :class:`~repro.core.sort_retrieve.TagSortRetrieveCircuit` — the composed
  circuit (tree + translation table + tag storage memory).
* :class:`~repro.core.tree.MultiBitTree` — the closest-match search tree.
* :class:`~repro.core.translation.TranslationTable` and
  :class:`~repro.core.tag_storage.TagStorageMemory` — its memories.
* :mod:`repro.core.matching` — the five node-search circuit topologies.
* :mod:`repro.core.sizing` — eqs. (2)/(3) storage budgets.
"""

from .pipeline import (
    OPERATION_LATENCY_CYCLES,
    STAGE_CYCLES,
    PipelinedSortRetrieve,
)
from .matching import (
    ALL_MATCHERS,
    DEFAULT_MATCHER,
    BlockLookaheadMatcher,
    LookaheadMatcher,
    MatchingCircuit,
    MatchResult,
    RippleMatcher,
    SelectLookaheadMatcher,
    SkipLookaheadMatcher,
    reference_search,
)
from .sizing import (
    TreeBudget,
    budget_for,
    level_memory_bits,
    mixed_width_tree_bits,
    sweep_configurations,
    total_tree_bits,
    translation_table_entries,
    worst_case_node_searches,
)
from .sort_retrieve import FIXED_OP_CYCLES, ServedTag, TagSortRetrieveCircuit
from .tag_storage import CYCLES_PER_OPERATION, Link, TagStorageMemory
from .translation import TranslationTable
from .tree import MultiBitTree, SearchOutcome, TreeInvariantError
from .words import FIGURE_FORMAT, PAPER_FORMAT, WordFormat

__all__ = [
    "OPERATION_LATENCY_CYCLES",
    "STAGE_CYCLES",
    "PipelinedSortRetrieve",
    "ALL_MATCHERS",
    "DEFAULT_MATCHER",
    "BlockLookaheadMatcher",
    "LookaheadMatcher",
    "MatchingCircuit",
    "MatchResult",
    "RippleMatcher",
    "SelectLookaheadMatcher",
    "SkipLookaheadMatcher",
    "reference_search",
    "TreeBudget",
    "budget_for",
    "level_memory_bits",
    "mixed_width_tree_bits",
    "sweep_configurations",
    "total_tree_bits",
    "translation_table_entries",
    "worst_case_node_searches",
    "FIXED_OP_CYCLES",
    "ServedTag",
    "TagSortRetrieveCircuit",
    "CYCLES_PER_OPERATION",
    "Link",
    "TagStorageMemory",
    "TranslationTable",
    "MultiBitTree",
    "SearchOutcome",
    "TreeInvariantError",
    "FIGURE_FORMAT",
    "PAPER_FORMAT",
    "WordFormat",
]
