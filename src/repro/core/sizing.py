"""Architecture sizing per the paper's eqs. (2) and (3).

Equation (2) gives the memory (in bits) needed for level ``l`` of the
multi-bit tree: a node is ``b`` bits wide (branching factor b) and level
``l`` holds ``b**l`` nodes, so::

    LM(l) = b ** (l + 1)          # level 0 is the root

Equation (3) sums this over all L levels.  A second eq. (2) in the text
(the labels collide in the original) sizes the translation table: one
entry per representable tag value, ``E = b ** L = 2 ** W``.

These closed forms are checked against the paper's concrete numbers in
the tests: the 3-level, 16-bit-node tree has 16 + 256 = 272 bits in its
first two (register) levels and 4096 bits (4 kbit) in its third (SRAM)
level, and needs a 4096-entry translation table (the text's optional
32-bit-node variant would need 32 k entries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..hwsim.errors import ConfigurationError
from .words import WordFormat


def level_memory_bits(level: int, branching_factor: int) -> int:
    """Eq. (2): bits of storage required for tree level ``level`` (0 = root)."""
    if level < 0:
        raise ConfigurationError("level must be non-negative")
    if branching_factor < 2:
        raise ConfigurationError("branching factor must be at least 2")
    return branching_factor ** (level + 1)


def total_tree_bits(levels: int, branching_factor: int) -> int:
    """Eq. (3): total tree storage in bits across ``levels`` levels."""
    if levels < 1:
        raise ConfigurationError("tree needs at least one level")
    return sum(level_memory_bits(l, branching_factor) for l in range(levels))


def translation_table_entries(levels: int, branching_factor: int) -> int:
    """Entries required in the translation table: b**L = 2**W."""
    if levels < 1:
        raise ConfigurationError("tree needs at least one level")
    if branching_factor < 2:
        raise ConfigurationError("branching factor must be at least 2")
    return branching_factor ** levels


def mixed_width_tree_bits(node_bits_per_level: Sequence[int]) -> int:
    """Total bits for a tree whose node width differs per level.

    The paper (Section III-A) mentions — and rejects — unequal node
    widths; this helper supports the A1 ablation quantifying that choice.
    Level ``l``'s node count is the product of the branching factors of
    all shallower levels.
    """
    if not node_bits_per_level:
        raise ConfigurationError("need at least one level")
    total = 0
    nodes_at_level = 1
    for bits in node_bits_per_level:
        if bits < 2:
            raise ConfigurationError("node width must be at least 2 bits")
        total += nodes_at_level * bits
        nodes_at_level *= bits
    return total


def worst_case_node_searches(levels: int) -> int:
    """Worst-case node lookups per tree search: one per level.

    The backup path runs *in parallel* with the primary search (paper
    Section III-A), so it does not add sequential node accesses.
    """
    if levels < 1:
        raise ConfigurationError("tree needs at least one level")
    return levels


@dataclass(frozen=True)
class TreeBudget:
    """A complete sizing of one tree configuration."""

    fmt: WordFormat
    register_levels: int
    register_bits: int
    sram_bits: int
    translation_entries: int

    @property
    def total_bits(self) -> int:
        """Tree storage, registers plus SRAM."""
        return self.register_bits + self.sram_bits

    @property
    def word_bits(self) -> int:
        """Tag width W covered by the configuration."""
        return self.fmt.word_bits


def budget_for(fmt: WordFormat, *, register_levels: int = 2) -> TreeBudget:
    """Compute the full storage budget for a word format.

    ``register_levels`` is how many shallow levels live in registers (the
    paper uses 2); the rest are SRAM.
    """
    if not 0 <= register_levels <= fmt.levels:
        raise ConfigurationError(
            f"register_levels must lie in [0, {fmt.levels}]"
        )
    reg = sum(
        level_memory_bits(l, fmt.branching_factor) for l in range(register_levels)
    )
    sram = sum(
        level_memory_bits(l, fmt.branching_factor)
        for l in range(register_levels, fmt.levels)
    )
    return TreeBudget(
        fmt=fmt,
        register_levels=register_levels,
        register_bits=reg,
        sram_bits=sram,
        translation_entries=translation_table_entries(
            fmt.levels, fmt.branching_factor
        ),
    )


def sweep_configurations(
    word_bits: int, *, register_levels: int = 2
) -> List[TreeBudget]:
    """All (levels, literal_bits) factorizations of a word width.

    Supports the branching-factor ablation: for a fixed tag width, compare
    storage and search depth across every equal-width tree shape.
    """
    if word_bits < 1:
        raise ConfigurationError("word width must be positive")
    budgets = []
    for literal_bits in range(1, word_bits + 1):
        if word_bits % literal_bits:
            continue
        levels = word_bits // literal_bits
        fmt = WordFormat(levels=levels, literal_bits=literal_bits)
        budgets.append(
            budget_for(fmt, register_levels=min(register_levels, levels))
        )
    return budgets
