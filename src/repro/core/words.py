"""Fixed-width word and literal arithmetic for the multi-bit tree.

The tree of the paper slices a W-bit tag into L literals of k bits each
(W = L*k).  The implemented configuration is W=12, L=3, k=4, giving 16-bit
nodes and branching factor 16; the worked examples in Figs. 4 and 5 use
W=6, L=3, k=2.  This module centralizes the bit slicing so the tree,
translation table, and sizing math all agree on the representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..hwsim.errors import ConfigurationError


@dataclass(frozen=True)
class WordFormat:
    """Describes how tags are sliced into per-level literals.

    Attributes:
        levels: number of tree levels L.
        literal_bits: bits per literal k (branching factor is 2**k).
    """

    levels: int
    literal_bits: int

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ConfigurationError("tree needs at least one level")
        if self.literal_bits < 1:
            raise ConfigurationError("literals need at least one bit")

    @property
    def word_bits(self) -> int:
        """Total tag width W = L*k."""
        return self.levels * self.literal_bits

    @property
    def branching_factor(self) -> int:
        """Children per node (= node width in bits), 2**k."""
        return 1 << self.literal_bits

    @property
    def node_bits(self) -> int:
        """Bits per node (one presence bit per child)."""
        return self.branching_factor

    @property
    def max_value(self) -> int:
        """Largest representable tag value, 2**W - 1."""
        return (1 << self.word_bits) - 1

    @property
    def capacity(self) -> int:
        """Number of distinct representable tag values, 2**W."""
        return 1 << self.word_bits

    def check_value(self, value: int) -> int:
        """Validate that ``value`` fits the word format; returns it."""
        if not isinstance(value, int):
            raise ConfigurationError(f"tag must be an int, got {type(value).__name__}")
        if not 0 <= value <= self.max_value:
            raise ConfigurationError(
                f"tag {value} outside [0, {self.max_value}] for W={self.word_bits}"
            )
        return value

    def literals(self, value: int) -> List[int]:
        """Slice ``value`` into literals, most significant (root) first.

        For the Fig. 4 example (W=6, k=2), 0b110110 -> [0b11, 0b01, 0b10].
        """
        self.check_value(value)
        mask = self.branching_factor - 1
        out = []
        for level in range(self.levels):
            shift = (self.levels - 1 - level) * self.literal_bits
            out.append((value >> shift) & mask)
        return out

    def literal_at(self, value: int, level: int) -> int:
        """The literal of ``value`` used at tree ``level`` (0 = root)."""
        self.check_value(value)
        if not 0 <= level < self.levels:
            raise ConfigurationError(f"level {level} outside [0, {self.levels})")
        shift = (self.levels - 1 - level) * self.literal_bits
        return (value >> shift) & (self.branching_factor - 1)

    def combine(self, literals: List[int]) -> int:
        """Reassemble a tag value from root-first literals."""
        if len(literals) != self.levels:
            raise ConfigurationError(
                f"expected {self.levels} literals, got {len(literals)}"
            )
        value = 0
        for literal in literals:
            if not 0 <= literal < self.branching_factor:
                raise ConfigurationError(f"literal {literal} out of range")
            value = (value << self.literal_bits) | literal
        return value

    def prefix_value(self, value: int, depth: int) -> int:
        """The integer formed by the first ``depth`` literals of ``value``.

        Used to index nodes: the node visited at level ``d`` is identified
        by the (d)-literal prefix of the search key.
        """
        self.check_value(value)
        if not 0 <= depth <= self.levels:
            raise ConfigurationError(f"depth {depth} outside [0, {self.levels}]")
        shift = (self.levels - depth) * self.literal_bits
        return value >> shift


PAPER_FORMAT = WordFormat(levels=3, literal_bits=4)
"""The silicon configuration: 12-bit tags, three levels, 16-bit nodes."""

FIGURE_FORMAT = WordFormat(levels=3, literal_bits=2)
"""The worked-example configuration of Figs. 4 and 5: 6-bit tags."""


# ----------------------------------------------------------------------
# Word-level find-first-set / population-count primitives.
#
# The matcher's bit-twiddling (`search_fast` in core/tree.py) inlines
# these for one node under one mask; the vectorized engine needs the
# same primitives over whole arrays of node words.  Both variants live
# here so the tree, the vector engine, and the sizing math share one
# definition — the hypothesis suite in tests/core/test_word_ffs.py
# pins the scalar, array, and `search_fast` answers to each other.

def ffs_word(word: int) -> int:
    """Index of the lowest set bit of ``word`` (-1 when no bit is set).

    The software analogue of the paper's priority-encoder output: the
    matcher reports the smallest marked literal in a node word.
    """
    if word <= 0:
        if word < 0:
            raise ConfigurationError(f"ffs_word needs a non-negative word, got {word}")
        return -1
    return (word & -word).bit_length() - 1


def fls_word(word: int) -> int:
    """Index of the highest set bit of ``word`` (-1 when no bit is set)."""
    if word <= 0:
        if word < 0:
            raise ConfigurationError(f"fls_word needs a non-negative word, got {word}")
        return -1
    return word.bit_length() - 1


def popcount_word(word: int) -> int:
    """Number of set bits in ``word`` (a node's marked-children count)."""
    if word < 0:
        raise ConfigurationError(f"popcount_word needs a non-negative word, got {word}")
    return bin(word).count("1")


def ffs_array(words, np):
    """Per-word lowest-set-bit indices for an integer array (-1 on zero).

    ``np`` is the caller's numpy module (kept a parameter so this module
    never imports numpy — it must stay importable without it; see
    :func:`repro.core.engine.require_numpy`).  Uses the isolate-lowest-bit
    identity ``word & -word`` and a log2 via bit-length-free float
    conversion: exact for words below 2**53, far wider than any node.
    """
    words = np.asarray(words)
    isolated = words & -words
    out = np.full(words.shape, -1, dtype=np.int64)
    nonzero = isolated != 0
    # float64 holds every power of two in a node word exactly, so the
    # log2 of the isolated bit is exact integer-valued.
    out[nonzero] = np.log2(isolated[nonzero].astype(np.float64)).astype(np.int64)
    return out


def popcount_array(words, np, *, bits: int = 16):
    """Per-word population counts for an integer array.

    SWAR (shift-and-add) over ``bits``-wide words; ``bits`` must cover
    the widest value present (node words are 16-bit, occupancy bitmaps
    use 64-bit words).
    """
    if bits > 64:
        raise ConfigurationError(f"popcount_array supports at most 64 bits, got {bits}")
    # Classic SWAR in uint64 lanes (top-bit-set 64-bit bitmaps included).
    lanes = np.asarray(words).astype(np.uint64)
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    one, two, four = np.uint64(1), np.uint64(2), np.uint64(4)
    lanes = lanes - ((lanes >> one) & m1)
    lanes = (lanes & m2) + ((lanes >> two) & m2)
    lanes = (lanes + (lanes >> four)) & m4
    shift = 8
    while shift < 64:
        lanes = lanes + (lanes >> np.uint64(shift))
        shift *= 2
    return (lanes & np.uint64(0x7F)).astype(np.int64)
