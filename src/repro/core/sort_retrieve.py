"""The tag sort/retrieve circuit: tree + translation table + tag storage.

This is the paper's contribution (Fig. 3): an associative memory that
stores every finishing tag in the scheduler **in sorted order** and serves
the smallest within a guaranteed fixed time.  Inserting conforms to the
*sort model* of Section II-C — the lookup happens at the input, so a
dequeue never searches: it is a fixed-cost head removal.

Operation timing follows Section III-A: the three-level tree plus the
translation table throughput one tag in four clock cycles, matched to the
four-cycle (two-read, two-write) insert of the tag storage memory, so the
whole circuit sustains one operation — insert, dequeue, or a simultaneous
insert+dequeue — every :data:`FIXED_OP_CYCLES` cycles.

Marker lifetime has two modes:

* **Deferred (paper mode, default).**  A dequeue touches only the tag
  storage; tree markers and translation entries go *stale* instead of
  being removed.  Under the WFQ invariant — a new tag is never smaller
  than the current minimum — a stale marker is always shadowed by the
  live minimum's marker and can never be returned by a search, so this is
  sound and is exactly why the paper can bulk-delete stale sections only
  when the wrapping tag space comes back around (Fig. 6,
  :meth:`TagSortRetrieveCircuit.clear_stale_section`).
* **Eager.**  A dequeue that retires the last tag of a value removes the
  marker and translation entry immediately.  This drops the WFQ
  monotonicity requirement, making the circuit a general-purpose
  priority queue (used as such in the Table I comparisons).

Besides the per-operation methods, the circuit offers **batched fast
paths** (:meth:`TagSortRetrieveCircuit.insert_batch`,
:meth:`TagSortRetrieveCircuit.dequeue_batch`,
:meth:`TagSortRetrieveCircuit.run_mixed`) that amortize per-op
bookkeeping across a run of operations: one tree search anchors a whole
monotone insert run (the storage finger walks forward from it), tree
markers reuse the previous value's path as a node-register cache, and
stats land in the :class:`~repro.hwsim.stats.StatsRegistry` as one bulk
update per batch.  Batches produce the same service order, the same
linked-list state, and the same cycle accounting as the per-op loop.
An opt-in **fast mode** additionally skips the ``_live_tags``
verification shadow (a pure-software debugging aid with no hardware
counterpart); section-level occupancy counters keep the Fig. 6
stale-section guard intact, but :meth:`check_invariants` can no longer
cross-check the stored multiset against an independent shadow.

**Telemetry** is opt-in via
:meth:`TagSortRetrieveCircuit.attach_tracer`: every operation then emits
a structured :class:`~repro.obs.events.TraceEvent` (tag, cycles,
occupancy, backup-path activation, per-structure read/write deltas; the
batched paths wrap their per-op events in an attributing span).  The
traced variants are bound as instance attributes only while a tracer is
attached, so the default untraced circuit runs the unmodified hot paths.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from ..hwsim.errors import (
    CapacityError,
    ConfigurationError,
    EmptyStructureError,
    ProtocolError,
)
from ..hwsim.stats import AccessStats, StatsRegistry
from ..obs.tracer import NULL_TRACER
from .matching import DEFAULT_MATCHER
from .tag_storage import TagStorageMemory
from .translation import TranslationTable
from .tree import MultiBitTree, SearchOutcome
from .words import PAPER_FORMAT, WordFormat

#: Clock cycles consumed by any single circuit operation (Section III-A).
FIXED_OP_CYCLES = 4


class ServedTag(NamedTuple):
    """A tag retrieved from the circuit.

    A named tuple: one is allocated per dequeue, so construction speed
    is hot-path overhead.  ``tuple.__new__`` (reachable in bulk as
    ``map(ServedTag._make, zip(...))``) builds instances without a
    Python frame per serve, which the vector engine's batch drain
    leans on; immutability and value equality/hashing come with the
    tuple for free.
    """

    tag: int
    payload: Any = None
    address: int = 0


@dataclass
class FaultInjection:
    """Seeded faults for exercising the online invariant monitors.

    A test hook, consulted **only by the traced wrappers** — an untraced
    circuit never looks at it, so the production hot paths carry no
    guard.  Every fault perturbs the *telemetry* (accounting deltas or
    reported tags), never the circuit's actual linked-list state, so a
    faulted run still serves the correct sequence; what breaks is the
    evidence stream the monitors screen, which is exactly what each
    monitor must catch:

    * ``extra_insert_writes`` — phantom tag-storage writes charged to
      every insert (breaks the Fig. 9 2R+2W budget).
    * ``extra_dequeue_reads`` — phantom tag-storage reads charged to
      every dequeue (breaks the fixed head-removal bound).
    * ``skip_free_release`` — un-counts the empty-list threading write
      of every dequeue (breaks Fig. 10 free-list conservation).
    * ``misreport_serve_offset`` — shifts every *reported* served tag by
      the offset (wrapped in modular mode).  A large negative offset
      makes service appear to go backwards (breaks WFQ monotonicity); a
      positive offset lands on values that were never inserted (breaks
      translation/marker coverage).
    * ``misreport_remove_handle`` — shifts the *reported* handle of
      every remove/retag event by the offset, so the event names an
      address that is dead or holds a different tag (breaks handle
      liveness).
    * ``skip_removal_release`` — un-counts the empty-list threading
      write of every remove (breaks Fig. 10 slot conservation under
      removal).
    """

    extra_insert_writes: int = 0
    extra_dequeue_reads: int = 0
    skip_free_release: bool = False
    misreport_serve_offset: int = 0
    misreport_remove_handle: int = 0
    skip_removal_release: bool = False

    def _after_insert(self, circuit: "TagSortRetrieveCircuit", count: int = 1) -> None:
        if self.extra_insert_writes:
            circuit.storage.stats.record_write(self.extra_insert_writes * count)

    def _after_dequeue(self, circuit: "TagSortRetrieveCircuit", count: int = 1) -> None:
        if self.extra_dequeue_reads:
            circuit.storage.stats.record_read(self.extra_dequeue_reads * count)
        if self.skip_free_release:
            circuit.storage.stats.writes -= count

    def _reported_tag(self, circuit: "TagSortRetrieveCircuit", tag: int) -> int:
        if not self.misreport_serve_offset:
            return tag
        if circuit.modular:
            return (tag + self.misreport_serve_offset) % circuit.fmt.capacity
        return tag + self.misreport_serve_offset

    def _after_remove(self, circuit: "TagSortRetrieveCircuit", count: int = 1) -> None:
        if self.skip_removal_release:
            circuit.storage.stats.writes -= count

    def _reported_handle(self, handle: int) -> int:
        return handle + self.misreport_remove_handle


class TagSortRetrieveCircuit:
    """The complete tag sort/retrieve circuit of paper Fig. 3."""

    #: Seeded telemetry faults (:class:`FaultInjection`) — a test hook
    #: read only by the traced wrappers; ``None`` (the class default)
    #: costs nothing on any path.
    fault_injection: Optional[FaultInjection] = None

    def __init__(
        self,
        fmt: WordFormat = PAPER_FORMAT,
        *,
        capacity: int = 4096,
        matcher_factory=DEFAULT_MATCHER,
        eager_marker_removal: bool = False,
        modular: bool = False,
        fast_mode: bool = False,
        turbo: bool = False,
        tracer=None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be at least 1")
        if modular and eager_marker_removal:
            raise ConfigurationError(
                "modular (wrapping) mode relies on deferred marker removal"
            )
        self.fmt = fmt
        self.eager_marker_removal = eager_marker_removal
        self.modular = modular
        # Tag-space scalars cached off the word-format property chain
        # (consulted on every insert's monotonicity check).
        self._tag_space = fmt.capacity
        self._half_space = fmt.capacity // 2
        self.tree = MultiBitTree(fmt, matcher_factory=matcher_factory)
        self.translation = TranslationTable(fmt)
        self.storage = TagStorageMemory(capacity, modular=modular)
        self.cycles = 0
        self.operations = 0
        self._fast_mode = bool(fast_mode)
        self._turbo = bool(turbo)
        #: head-path cache (turbo engine): literal decomposition of the
        #: current minimum's root-to-leaf path, so head-local operations
        #: skip the trie walk.  ``_head_cache_tag`` keys the memo;
        #: validity itself is re-derived from the head register on every
        #: use (see :meth:`_turbo_locate_predecessor`).
        self._head_cache_tag: Optional[int] = None
        self._head_cache_literals: Optional[List[int]] = None
        self.head_cache_hits = 0
        self._live_tags: Counter = Counter()  # verification shadow only
        #: handle registry: live storage address -> tag.  Hardware keeps
        #: a valid bit per slot; this map is that bit plus the tag the
        #: handle was issued for, and is what makes :meth:`remove` /
        #: :meth:`retag` safe against stale handles.  Always on (unlike
        #: the ``_live_tags`` shadow) — dynamic updates depend on it.
        self._handles: Dict[int, int] = {}
        #: live tags per root-literal section; backs the Fig. 6
        #: stale-section guard even when the shadow is disabled.
        self._section_bits = fmt.word_bits - fmt.literal_bits
        self._section_live = [0] * fmt.branching_factor
        self.registry = StatsRegistry()
        self.registry.register("translation_table", self.translation.stats)
        self.registry.register("tag_storage", self.storage.stats)
        for level in range(fmt.levels):
            self.registry.register(
                f"tree_level_{level}", self.tree.level_stats(level)
            )
        self.tracer = NULL_TRACER
        self._rebind_hot_paths()
        if tracer is not None:
            self.attach_tracer(tracer)

    # ------------------------------------------------------------------
    # observers

    @property
    def count(self) -> int:
        """Number of tags currently stored."""
        return self.storage.count

    @property
    def is_empty(self) -> bool:
        """True when the circuit holds no tags."""
        return self.storage.is_empty

    def peek_min(self) -> Optional[int]:
        """The smallest stored tag, from the head register (zero cost)."""
        return self.storage.min_tag

    def peek_head(self) -> Optional[ServedTag]:
        """The head entry without dequeuing it, from registers (zero cost).

        Returns None when the circuit is empty.  No memory access or
        stats traffic: the head link is latched by the operation that
        made it the head (:meth:`TagStorageMemory.peek_head`).
        """
        head = self.storage.peek_head()
        if head is None:
            return None
        tag, payload, address = head
        return ServedTag(tag=tag, payload=payload, address=address)

    @property
    def fast_mode(self) -> bool:
        """Whether the verification shadow is disabled (opt-in fast path)."""
        return self._fast_mode

    @fast_mode.setter
    def fast_mode(self, enabled: bool) -> None:
        enabled = bool(enabled)
        if enabled == self._fast_mode:
            return
        if enabled:
            self._live_tags.clear()
        else:
            # Rebuild the shadow from the authoritative storage walk so
            # invariant checking resumes from a consistent state.
            self._live_tags = Counter(tag for tag, _ in self.storage.walk())
        self._fast_mode = enabled

    @property
    def turbo(self) -> bool:
        """Whether the access-fused turbo engine drives the per-op paths."""
        return self._turbo

    @turbo.setter
    def turbo(self, enabled: bool) -> None:
        enabled = bool(enabled)
        if enabled == self._turbo:
            return
        self._turbo = enabled
        self._invalidate_head_cache()
        self._rebind_hot_paths()

    def total_stats(self) -> AccessStats:
        """Summed memory traffic across every internal structure."""
        return self.registry.total()

    def describe(self) -> dict:
        """Machine-readable configuration snapshot.

        The canonical ``config`` block of a JSONL trace header, and the
        source the invariant monitors derive their architectural bounds
        from (tree depth, tag-space size, marker mode).
        """
        return {
            "levels": self.fmt.levels,
            "literal_bits": self.fmt.literal_bits,
            "word_bits": self.fmt.word_bits,
            "branching_factor": self.fmt.branching_factor,
            "tag_space": self.fmt.capacity,
            "capacity": self.storage.capacity,
            "modular": self.modular,
            "eager_marker_removal": self.eager_marker_removal,
            "fast_mode": self._fast_mode,
            "turbo": self._turbo,
        }

    def _spend_operation(self) -> None:
        self.cycles += FIXED_OP_CYCLES
        self.operations += 1

    def _check_monotone(self, tag: int) -> None:
        """Enforce the WFQ invariant: new tags never precede the minimum.

        In modular mode the comparison is sequence-number style: the
        forward (wrapped) distance from the minimum to the new tag must be
        under half the tag space, the standard serial-number rule that
        makes the wrapped window unambiguous.
        """
        # min_tag, skipping the property
        self._check_monotone_against(tag, self.storage._head_tag)

    def _check_monotone_against(self, tag: int, minimum: Optional[int]) -> None:
        """:meth:`_check_monotone` against an explicit minimum.

        :meth:`retag` uses this with the *post-removal* minimum so an
        illegal new tag is rejected before the old entry is unlinked.
        """
        if minimum is None:
            return
        if self.modular:
            distance = (tag - minimum) % self._tag_space
            if distance >= self._half_space:
                raise ProtocolError(
                    f"tag {tag} is behind the window minimum {minimum} "
                    f"(wrapped distance {distance})"
                )
        elif tag < minimum:
            raise ProtocolError(
                f"WFQ invariant violated: tag {tag} below current "
                f"minimum {minimum} (use eager_marker_removal=True for "
                "general priority-queue workloads)"
            )

    # ------------------------------------------------------------------
    # insert (sort-model input-side lookup)

    def insert(self, tag: int, payload: Any = None) -> int:
        """Sort ``tag`` into the circuit; returns its storage address.

        One fixed four-cycle operation: the tree finds the closest
        existing tag at or below ``tag`` (Figs. 4/5), the translation
        table converts it to a linked-list address, and the storage
        memory splices the new link in (Fig. 9).
        """
        self.fmt.check_value(tag)
        if not self.eager_marker_removal:
            self._check_monotone(tag)
        address = self._insert_link(tag, payload)
        self.tree.insert_marker(tag)
        self.translation.record(tag, address)
        self._handles[address] = tag
        if not self._fast_mode:
            self._live_tags[tag] += 1
        self._section_live[tag >> self._section_bits] += 1
        self._spend_operation()
        return address

    def _insert_link(self, tag: int, payload: Any) -> int:
        if self.storage.is_empty:
            # Initialization mode (Section III-A).  In deferred-marker
            # mode the tree still holds stale markers from the busy
            # period that just drained; the next busy period may start at
            # *lower* tag values, which would make those stale markers
            # reachable again, so the initialization reset flushes them.
            if not self.eager_marker_removal and not self.tree.is_empty:
                self.tree.clear_all()
            return self.storage.insert_first(tag, payload)
        predecessor = self._locate_predecessor(tag)
        if predecessor is None:
            if self.modular:
                raise ProtocolError(
                    f"no predecessor for wrapped tag {tag}: the sections "
                    "below it were not cleared before reuse"
                )
            return self.storage.insert_at_head(tag, payload)
        return self.storage.insert_after(predecessor, tag, payload)

    def _locate_predecessor(self, tag: int) -> Optional[int]:
        """Tree search + translation lookup -> predecessor link address.

        In modular mode a raw-search miss means the tag is the logically
        smallest value of the *new lap* (it wrapped past zero while older
        tags are still live near the top of the range); its logical
        predecessor is then the largest marked value of the old lap — the
        raw maximum, found by following maximum bits down the tree.
        """
        closest = self.tree.closest_at_most(tag)
        if closest is None and self.modular and not self.tree.is_empty:
            closest = self.tree.max_marked()
        if closest is None:
            return None
        address = self.translation.lookup(closest)
        if address is None:
            raise ProtocolError(
                f"tree returned value {closest} with no translation entry"
            )
        return address

    # ------------------------------------------------------------------
    # dequeue (fixed-time head removal)

    def dequeue_min(self) -> ServedTag:
        """Remove and return the smallest tag in fixed time."""
        if self.is_empty:
            raise EmptyStructureError("dequeue from an empty circuit")
        tag, payload, address = self.storage.dequeue_min()
        self._retire(tag, address)
        self._spend_operation()
        return ServedTag(tag=tag, payload=payload, address=address)

    def insert_and_dequeue(
        self, tag: int, payload: Any = None
    ) -> Tuple[ServedTag, int]:
        """Simultaneous insert + dequeue in one four-cycle operation.

        Models the Section III-C case where a store request and a service
        request arrive together: the departing head's slot is reused for
        the incoming tag.  Returns ``(served, new_address)``.
        """
        self.fmt.check_value(tag)
        if self.is_empty:
            raise EmptyStructureError("insert_and_dequeue on an empty circuit")
        if not self.eager_marker_removal:
            self._check_monotone(tag)
        predecessor = self._locate_predecessor(tag)
        served_tag, served_payload, served_address, new_address = (
            self.storage.replace_min(predecessor, tag, payload)
        )
        self._retire(served_tag, served_address)
        self.tree.insert_marker(tag)
        self.translation.record(tag, new_address)
        self._handles[new_address] = tag
        if not self._fast_mode:
            self._live_tags[tag] += 1
        self._section_live[tag >> self._section_bits] += 1
        self._spend_operation()
        served = ServedTag(
            tag=served_tag, payload=served_payload, address=served_address
        )
        return served, new_address

    def _retire(self, tag: int, address: int) -> None:
        self._handles.pop(address, None)
        if not self._fast_mode:
            self._live_tags[tag] -= 1
            if self._live_tags[tag] == 0:
                del self._live_tags[tag]
        self._section_live[tag >> self._section_bits] -= 1
        if self.eager_marker_removal:
            if self.translation.invalidate_if_points_to(tag, address):
                self.tree.remove_marker(tag)

    # ------------------------------------------------------------------
    # batched fast paths

    def insert_batch(
        self,
        tags: Sequence[int],
        payloads: Optional[Sequence[Any]] = None,
    ) -> List[int]:
        """Sort a whole run of tags with amortized bookkeeping.

        Service order and cycle accounting are identical to inserting
        per-op in the given order (equal tags keep their FCFS order
        because the internal sort is stable; physical addresses may
        differ since allocation follows sorted order), but the cost is
        one tree search for the entire run: the storage finger walks
        forward from the first predecessor, the tree marker pass reuses
        the previous value's path as a node-register cache, and stats
        are flushed in bulk.  Validation runs up front, so a rejected
        batch leaves the circuit untouched.  Eager-marker mode falls
        back to per-op inserts (its retire work is per-tag anyway).
        Returns storage addresses aligned with the input order.
        """
        tags = list(tags)
        count = len(tags)
        if payloads is None:
            payloads = [None] * count
        else:
            payloads = list(payloads)
            if len(payloads) != count:
                raise ConfigurationError(
                    f"{count} tags but {len(payloads)} payloads"
                )
        if count == 0:
            return []
        if self.eager_marker_removal:
            return [
                self.insert(tag, payload)
                for tag, payload in zip(tags, payloads)
            ]
        for tag in tags:
            self.fmt.check_value(tag)
        if self.storage.count + count > self.storage.capacity:
            raise CapacityError(
                f"batch of {count} tags overflows tag storage "
                f"({self.storage.count} of {self.storage.capacity} in use)"
            )
        minimum = self.storage.min_tag
        reference = minimum if minimum is not None else tags[0]
        if self.modular:
            space = self.fmt.capacity
            half = space // 2
            key = lambda value: (value - reference) % space  # noqa: E731
            for tag in tags:
                if key(tag) >= half:
                    raise ProtocolError(
                        f"tag {tag} is behind the window minimum "
                        f"{reference} (wrapped distance {key(tag)})"
                    )
            sort_key = key
        else:
            for tag in tags:
                if tag < reference:
                    raise ProtocolError(
                        f"WFQ invariant violated: tag {tag} below current "
                        f"minimum {reference} (use eager_marker_removal="
                        "True for general priority-queue workloads)"
                    )
            key = None
            sort_key = lambda value: value  # noqa: E731

        order = sorted(range(count), key=lambda i: sort_key(tags[i]))
        entries = [(tags[i], payloads[i]) for i in order]

        if self.storage.is_empty:
            # Initialization mode: flush stale markers exactly as the
            # per-op path does on the first insert of a busy period.
            self.flush_stale_markers()
            predecessor = None
        else:
            predecessor = self._op_locate_predecessor(entries[0][0])
            if predecessor is None and self.modular:
                raise ProtocolError(
                    f"no predecessor for wrapped tag {entries[0][0]}: the "
                    "sections below it were not cleared before reuse"
                )
        sorted_addresses = self.storage.insert_monotone_batch(
            entries, predecessor, key=key
        )
        self.tree.insert_markers(tag for tag, _ in entries)
        handles = self._handles
        for index in range(count):
            tag = entries[index][0]
            handles[sorted_addresses[index]] = tag
            if index + 1 == count or entries[index + 1][0] != tag:
                # Only the newest duplicate's address must be recorded.
                self.translation.record(tag, sorted_addresses[index])
        if not self._fast_mode:
            for tag in tags:
                self._live_tags[tag] += 1
        section_live = self._section_live
        shift = self._section_bits
        for tag in tags:
            section_live[tag >> shift] += 1
        self.cycles += FIXED_OP_CYCLES * count
        self.operations += count
        addresses: List[int] = [0] * count
        for position, index in enumerate(order):
            addresses[index] = sorted_addresses[position]
        return addresses

    def dequeue_batch(self, count: int) -> List[ServedTag]:
        """Serve the ``count`` smallest tags with amortized bookkeeping.

        For ``count`` within the current occupancy this matches
        ``count`` calls of :meth:`dequeue_min` — same service order,
        same empty-list state, same cycle accounting — with the storage
        reads/writes flushed once per batch.

        **Over-ask contract (raise-before-mutate):** when ``count``
        exceeds the occupancy the call raises
        :class:`EmptyStructureError` *before serving anything* — the
        circuit is left untouched.  This deliberately differs from the
        per-op loop, which would serve the remaining entries before
        raising on the first empty pop; the storage layer
        (:meth:`TagStorageMemory.dequeue_batch`) shares the same
        all-or-nothing contract.
        """
        if count < 0:
            raise ConfigurationError("dequeue count must be non-negative")
        if count > self.count:
            raise EmptyStructureError(
                f"dequeue_batch({count}) from a circuit holding {self.count}"
            )
        if count == 0:
            return []
        triples = self.storage.dequeue_batch(count)
        served = [
            ServedTag(tag=tag, payload=payload, address=address)
            for tag, payload, address in triples
        ]
        for entry in served:
            self._retire(entry.tag, entry.address)
        self.cycles += FIXED_OP_CYCLES * count
        self.operations += count
        return served

    _MIXED_KINDS = frozenset(("insert", "dequeue", "remove", "retag"))

    def run_mixed(self, operations: Iterable[Tuple]) -> List[ServedTag]:
        """Execute a mixed op stream, coalescing runs into batch calls.

        ``operations`` yields ``("insert", tag[, payload])``,
        ``("dequeue",)``, ``("remove", handle)``, and ``("retag",
        handle, new_tag)`` tuples.  Consecutive inserts and dequeues
        are grouped into one :meth:`insert_batch` /
        :meth:`dequeue_batch` call, so bursty streams (the common WFQ
        arrival pattern) pay per-batch instead of per-op overhead;
        dynamic updates flush any pending batch (stream order is
        preserved) and execute per-op.  Returns every *served* tag in
        service order — identical to executing the stream one operation
        at a time; removed entries are not served and are not returned.

        The whole stream is validated for known op kinds **before any
        operation executes**, so an invalid stream raises
        :class:`ConfigurationError` with the circuit untouched — no
        partially applied prefix.
        """
        ops = [tuple(operation) for operation in operations]
        for operation in ops:
            if not operation or operation[0] not in self._MIXED_KINDS:
                kind = operation[0] if operation else None
                raise ConfigurationError(
                    f"unknown mixed operation kind {kind!r}"
                )
        served: List[ServedTag] = []
        pending_inserts: List[Tuple[int, Any]] = []
        pending_dequeues = 0

        def flush() -> None:
            nonlocal pending_inserts, pending_dequeues
            if pending_inserts:
                self.insert_batch(
                    [tag for tag, _ in pending_inserts],
                    [payload for _, payload in pending_inserts],
                )
                pending_inserts = []
            if pending_dequeues:
                served.extend(self.dequeue_batch(pending_dequeues))
                pending_dequeues = 0

        for operation in ops:
            kind = operation[0]
            if kind == "insert":
                if pending_dequeues:
                    served.extend(self.dequeue_batch(pending_dequeues))
                    pending_dequeues = 0
                payload = operation[2] if len(operation) > 2 else None
                pending_inserts.append((operation[1], payload))
            elif kind == "dequeue":
                if pending_inserts:
                    self.insert_batch(
                        [tag for tag, _ in pending_inserts],
                        [payload for _, payload in pending_inserts],
                    )
                    pending_inserts = []
                pending_dequeues += 1
            elif kind == "remove":
                flush()
                self.remove(operation[1])
            else:  # retag
                flush()
                self.retag(operation[1], operation[2])
        flush()
        return served

    # ------------------------------------------------------------------
    # dynamic updates (remove-by-handle, retag)

    def is_live_handle(self, handle: int) -> bool:
        """Whether ``handle`` names a live (not yet retired) entry."""
        return handle in self._handles

    def handle_tag(self, handle: int) -> Optional[int]:
        """The tag a live handle was issued for (None when stale)."""
        return self._handles.get(handle)

    def handle_payload(self, handle: int) -> Any:
        """A live handle's payload (debug peek, no access accounting)."""
        if handle not in self._handles:
            raise ProtocolError(
                f"handle {handle} does not name a live entry"
            )
        return self.storage._memory.peek(handle).payload

    @property
    def live_handles(self) -> int:
        """Number of live handles (equals :attr:`count` by invariant)."""
        return len(self._handles)

    def remove(self, handle: int) -> ServedTag:
        """Unlink the live entry at ``handle``, wherever it sits.

        ``handle`` is the storage address an insert returned.  The entry
        is spliced out of the linked list and its slot returned to the
        Fig. 10 empty list; the value's tree marker and translation
        entry are cleaned up eagerly when (and only when) the removed
        link was the last of its value — a removed value must never be
        findable again, in either marker mode.  A stale handle (already
        served, removed, or never issued) raises :class:`ProtocolError`
        without touching anything.

        Access budget: removing the head is exactly a head removal
        (1R + 1W); removing mid-list costs one tree search (one read
        per level) plus one translation read to anchor the walk, one
        read per link walked through the duplicate run, and the
        four-access unlink window (2R + 2W when the anchor is the
        immediate predecessor).  Cycles: :data:`FIXED_OP_CYCLES` plus
        one per extra duplicate-run read beyond the fixed window.
        Returns the removed entry as a :class:`ServedTag`.
        """
        return self._remove_core(handle, turbo=False)

    def _turbo_remove(self, handle: int) -> ServedTag:
        """Turbo twin of :meth:`remove` (same costs, fused accesses)."""
        return self._remove_core(handle, turbo=True)

    def retag(self, handle: int, new_tag: int) -> int:
        """Move the live entry at ``handle`` to ``new_tag`` (repin).

        A compound remove + insert: the entry keeps its payload, the
        old handle dies, and the returned address is the new handle.
        Costs and accounting are exactly one :meth:`remove` plus one
        :meth:`insert` (two operations).  Validation — value range and,
        in deferred-marker mode, WFQ monotonicity against the
        *post-removal* minimum — runs before anything mutates, so a
        rejected retag leaves the circuit untouched.
        """
        self._validate_retag(handle, new_tag)
        removed = self._remove_core(handle, turbo=False)
        return TagSortRetrieveCircuit.insert(self, new_tag, removed.payload)

    def _turbo_retag(self, handle: int, new_tag: int) -> int:
        """Turbo twin of :meth:`retag` (remove + insert, fused paths)."""
        self._validate_retag(handle, new_tag)
        removed = self._remove_core(handle, turbo=True)
        return self._turbo_insert(new_tag, removed.payload)

    def _validate_retag(self, handle: int, new_tag: int) -> None:
        """Reject an illegal retag before any state changes."""
        if handle not in self._handles:
            raise ProtocolError(
                f"handle {handle} does not name a live entry"
            )
        self.fmt.check_value(new_tag)
        if not self.eager_marker_removal:
            storage = self.storage
            minimum = storage._head_tag
            if handle == storage._head_address:
                # Removing the head promotes its successor; the head
                # link (and its successor tag) is latched in registers.
                minimum = storage._memory.peek(handle).next_tag
            self._check_monotone_against(new_tag, minimum)

    def _remove_core(self, handle: int, *, turbo: bool) -> ServedTag:
        """Shared remove path; ``turbo`` switches the fused primitives."""
        tag = self._handles.get(handle)
        if tag is None:
            raise ProtocolError(
                f"handle {handle} does not name a live entry"
            )
        storage = self.storage
        translation = self.translation
        extra_cycles = 0
        predecessor_address: Optional[int] = None
        predecessor_tag: Optional[int] = None
        if handle == storage._head_address:
            if turbo:
                removed_tag, payload = storage.turbo_remove_at(handle, None)
            else:
                removed_tag, payload = storage.remove_at(handle, None)
        else:
            if tag == storage._head_tag:
                # The victim shares the minimum tag: its run starts at
                # the head, so the walk anchors there (a register; no
                # tree search — a search below the minimum could land
                # on a stale marker in deferred mode).
                start = storage._head_address
            else:
                tree = self.tree
                if tag > 0:
                    closest = (
                        tree.closest_fast(tag - 1)
                        if turbo
                        else tree.closest_at_most(tag - 1)
                    )
                else:
                    closest = None
                if closest is None and self.modular and not tree.is_empty:
                    closest = tree.max_marked()
                if closest is None:
                    raise ProtocolError(
                        f"no predecessor value below live tag {tag}"
                    )
                start = (
                    translation.turbo_lookup(closest)
                    if turbo
                    else translation.lookup(closest)
                )
                if start is None:
                    raise ProtocolError(
                        f"tree returned value {closest} with no "
                        f"translation entry"
                    )
            if turbo:
                (
                    removed_tag,
                    payload,
                    predecessor_address,
                    predecessor_tag,
                    reads,
                ) = storage.turbo_unlink(handle, start)
            else:
                (
                    removed_tag,
                    payload,
                    predecessor_address,
                    predecessor_tag,
                    reads,
                ) = storage.unlink(handle, start)
            # The fixed window covers two reads (anchor + victim); each
            # extra duplicate walked costs one more cycle.
            extra_cycles = max(0, reads - 2)
        if removed_tag != tag:
            raise ProtocolError(
                f"handle {handle} registered tag {tag} but storage held "
                f"{removed_tag}"
            )
        del self._handles[handle]
        if not self._fast_mode:
            self._live_tags[tag] -= 1
            if self._live_tags[tag] == 0:
                del self._live_tags[tag]
        self._section_live[tag >> self._section_bits] -= 1
        # Translation/marker maintenance is eager in *both* marker
        # modes: unlike a dequeue (whose stale markers stay shadowed by
        # the live minimum), an arbitrary removal can leave a stale
        # marker above the minimum, where a later search would find it.
        points_here = (
            translation.turbo_lookup(tag)
            if turbo
            else translation.lookup(tag)
        ) == handle
        if points_here:
            if predecessor_tag == tag:
                # Older duplicates remain: the immediate predecessor is
                # the new newest link of this value.
                if turbo:
                    translation.turbo_record(tag, predecessor_address)
                else:
                    translation.record(tag, predecessor_address)
            else:
                # Last link of its value: entry and marker both go.
                if turbo:
                    translation.turbo_record(tag, None)
                else:
                    translation.invalidate(tag)
                self.tree.remove_marker(tag)
        self._invalidate_head_cache()
        self.cycles += FIXED_OP_CYCLES + extra_cycles
        self.operations += 1
        return ServedTag(tag=tag, payload=payload, address=handle)

    # ------------------------------------------------------------------
    # turbo engine (access-fused per-op paths; exact accounting parity)
    #
    # Turbo mode swaps the per-op hot paths for variants that compute
    # the same answers with machine-word bit tricks and raw-cell access:
    # the tree search runs the bit-parallel `search_fast` kernel, the
    # marker insert and the storage splice mutate cells directly, and
    # every access is charged to the *same* per-structure AccessStats
    # counters the gate-accurate memory objects use — so cycles_per_op,
    # accesses_per_op, served order, and the structure state all come
    # out identical, not approximated.  Dispatch is via the `_op_*`
    # instance attributes (see `_rebind_hot_paths`), which the traced
    # wrappers also route through so telemetry composes with turbo.

    def _rebind_hot_paths(self) -> None:
        """Point the engine dispatch attributes at the active engine.

        The ``_op_*`` attributes always exist (both engines, traced or
        not); the *public* method names are shadowed only when turbo is
        on and no tracer is attached — a default circuit keeps clean
        class-method resolution on its hot paths (asserted by the perf
        smoke), and a traced circuit keeps its traced wrappers, which
        dispatch through ``_op_*`` themselves.
        """
        cls = TagSortRetrieveCircuit
        if self._turbo:
            self._op_insert = self._turbo_insert
            self._op_dequeue_min = self._turbo_dequeue_min
            self._op_insert_and_dequeue = self._turbo_insert_and_dequeue
            self._op_locate_predecessor = self._turbo_locate_predecessor
            self._op_remove = self._turbo_remove
            self._op_retag = self._turbo_retag
        else:
            self._op_insert = cls.insert.__get__(self)
            self._op_dequeue_min = cls.dequeue_min.__get__(self)
            self._op_insert_and_dequeue = cls.insert_and_dequeue.__get__(self)
            self._op_locate_predecessor = cls._locate_predecessor.__get__(self)
            self._op_remove = cls.remove.__get__(self)
            self._op_retag = cls.retag.__get__(self)
        if not getattr(self.tracer, "enabled", False):
            if self._turbo:
                self.insert = self._op_insert
                self.dequeue_min = self._op_dequeue_min
                self.insert_and_dequeue = self._op_insert_and_dequeue
                self.remove = self._op_remove
                self.retag = self._op_retag
            else:
                for name in (
                    "insert",
                    "dequeue_min",
                    "insert_and_dequeue",
                    "remove",
                    "retag",
                ):
                    self.__dict__.pop(name, None)

    def _invalidate_head_cache(self) -> None:
        """Drop the head-path cache (section clear, marker flush, restore).

        Hits are additionally gated on ``tag == head register`` at use
        time, so invalidation here is defense in depth: the cache can
        never serve a path whose markers were bulk-deleted, because a
        section holding the live minimum refuses to clear and a marker
        flush requires an empty storage.
        """
        self._head_cache_tag = None
        self._head_cache_literals = None

    def _turbo_locate_predecessor(self, tag: int) -> Optional[int]:
        """Turbo twin of :meth:`_locate_predecessor`.

        Head-path cache: when ``tag`` equals the current minimum (the
        head register; zero-cost to consult), the gate-accurate search
        is known in advance — the minimum's marker path is always
        intact, so the search exact-matches at every level, costing one
        sequential read per level and never touching the backup path.
        The cache synthesizes that exact outcome (charging the identical
        per-level reads) without walking the trie.  Dominant hit source:
        clamped inserts and head-local insert+dequeue ops.
        """
        tree = self.tree
        probed = self.tracer.enabled
        if tag == self.storage._head_tag:
            if probed:
                literals = self._head_cache_literals
                if literals is None or self._head_cache_tag != tag:
                    literals = self.fmt.literals(tag)
                    self._head_cache_tag = tag
                    self._head_cache_literals = literals
                tree.last_outcome = SearchOutcome(
                    key=tag,
                    result=tag,
                    exact=True,
                    path_literals=list(literals),
                    sequential_node_reads=len(literals),
                )
            else:
                tree.last_outcome = None
            for _, stats in tree._turbo_walk:
                stats.reads += 1
            self.head_cache_hits += 1
            closest = tag
        else:
            if probed:
                closest = tree.search_fast(tag).result
            else:
                closest = tree.closest_fast(tag)
            if closest is None and self.modular and not tree.is_empty:
                closest = tree.max_marked()
            if closest is None:
                return None
        address = self.translation.turbo_lookup(closest)
        if address is None:
            raise ProtocolError(
                f"tree returned value {closest} with no translation entry"
            )
        return address

    def _turbo_insert(self, tag: int, payload: Any = None) -> int:
        """Turbo twin of :meth:`insert` (same order of checks and state)."""
        if not (isinstance(tag, int) and 0 <= tag <= self.tree._turbo_max):
            self.fmt.check_value(tag)  # raises the canonical error
        if not self.eager_marker_removal:
            self._check_monotone(tag)
        storage = self.storage
        if storage.is_empty:
            if not self.eager_marker_removal and not self.tree.is_empty:
                self.tree.clear_all()
                self._invalidate_head_cache()
            address = storage.insert_first(tag, payload)
        else:
            predecessor = self._turbo_locate_predecessor(tag)
            if predecessor is None:
                if self.modular:
                    raise ProtocolError(
                        f"no predecessor for wrapped tag {tag}: the sections "
                        "below it were not cleared before reuse"
                    )
                address = storage.insert_at_head(tag, payload)
            else:
                address = storage.turbo_insert_after(predecessor, tag, payload)
        self.tree.insert_marker_fast(tag)
        self.translation.turbo_record(tag, address)
        self._handles[address] = tag
        if not self._fast_mode:
            self._live_tags[tag] += 1
        self._section_live[tag >> self._section_bits] += 1
        self.cycles += FIXED_OP_CYCLES
        self.operations += 1
        return address

    def _turbo_dequeue_min(self) -> ServedTag:
        """Turbo twin of :meth:`dequeue_min` (fixed-time head removal)."""
        if self.storage.is_empty:
            raise EmptyStructureError("dequeue from an empty circuit")
        tag, payload, address = self.storage.turbo_dequeue_min()
        self._retire(tag, address)
        self.cycles += FIXED_OP_CYCLES
        self.operations += 1
        return ServedTag(tag=tag, payload=payload, address=address)

    def _turbo_insert_and_dequeue(
        self, tag: int, payload: Any = None
    ) -> Tuple[ServedTag, int]:
        """Turbo twin of :meth:`insert_and_dequeue` (slot-reusing op)."""
        if not (isinstance(tag, int) and 0 <= tag <= self.tree._turbo_max):
            self.fmt.check_value(tag)  # raises the canonical error
        if self.is_empty:
            raise EmptyStructureError("insert_and_dequeue on an empty circuit")
        if not self.eager_marker_removal:
            self._check_monotone(tag)
        predecessor = self._turbo_locate_predecessor(tag)
        served_tag, served_payload, served_address, new_address = (
            self.storage.turbo_replace_min(predecessor, tag, payload)
        )
        self._retire(served_tag, served_address)
        self.tree.insert_marker_fast(tag)
        self.translation.turbo_record(tag, new_address)
        self._handles[new_address] = tag
        if not self._fast_mode:
            self._live_tags[tag] += 1
        self._section_live[tag >> self._section_bits] += 1
        self.cycles += FIXED_OP_CYCLES
        self.operations += 1
        served = ServedTag(
            tag=served_tag, payload=served_payload, address=served_address
        )
        return served, new_address

    # ------------------------------------------------------------------
    # telemetry (opt-in; zero-cost when disabled)

    @property
    def free_list_depth(self) -> int:
        """Links currently threaded on the storage empty list (Fig. 10).

        Addresses handed out by the init counter and later freed; a
        register-derived quantity (no memory access).
        """
        storage = self.storage
        return (
            storage.capacity
            - storage.count
            - storage.allocations_remaining_in_counter
        )

    def attach_tracer(self, tracer) -> None:
        """Start emitting structured telemetry events to ``tracer``.

        The traced variants of the operation methods are bound as
        *instance* attributes, shadowing the plain class methods — so an
        untraced circuit runs the exact pre-telemetry hot paths with no
        per-operation guard, and :meth:`detach_tracer` restores them by
        deleting the shadows.  Passing a disabled tracer (or ``None``)
        detaches.
        """
        if tracer is None or not getattr(tracer, "enabled", False):
            self.detach_tracer()
            return
        self.tracer = tracer
        self.insert = self._traced_insert
        self.dequeue_min = self._traced_dequeue_min
        self.insert_and_dequeue = self._traced_insert_and_dequeue
        self.insert_batch = self._traced_insert_batch
        self.dequeue_batch = self._traced_dequeue_batch
        self.remove = self._traced_remove
        self.retag = self._traced_retag
        self.clear_stale_section = self._traced_clear_stale_section
        self.flush_stale_markers = self._traced_flush_stale_markers

    def detach_tracer(self) -> None:
        """Stop tracing and restore the uninstrumented hot paths."""
        self.tracer = NULL_TRACER
        for name in (
            "insert",
            "dequeue_min",
            "insert_and_dequeue",
            "insert_batch",
            "dequeue_batch",
            "remove",
            "retag",
            "clear_stale_section",
            "flush_stale_markers",
        ):
            self.__dict__.pop(name, None)
        # Restore the active engine's public bindings (turbo shadows the
        # per-op names; gate mode leaves them to class resolution).
        self._rebind_hot_paths()

    def _op_attrs(self) -> dict:
        """Shared register-derived attributes of a per-op event."""
        return {
            "cycles": FIXED_OP_CYCLES,
            "occupancy": self.count,
            "free_list_depth": self.free_list_depth,
        }

    def _traced_insert(self, tag: int, payload: Any = None) -> int:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        self.tree.last_outcome = None
        try:
            address = self._op_insert(tag, payload)
        except BaseException as error:
            tracer.event(
                "insert",
                deltas=self.registry.deltas_since(before),
                tag=tag,
                failed=True,
                error=type(error).__name__,
            )
            raise
        outcome = self.tree.last_outcome
        fault = self.fault_injection
        if fault is not None:
            fault._after_insert(self)
        tracer.event(
            "insert",
            deltas=self.registry.deltas_since(before),
            tag=tag,
            address=address,
            used_backup=bool(outcome.used_backup) if outcome else False,
            **self._op_attrs(),
        )
        return address

    def _traced_dequeue_min(self) -> ServedTag:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        try:
            served = self._op_dequeue_min()
        except BaseException as error:
            tracer.event(
                "dequeue",
                deltas=self.registry.deltas_since(before),
                failed=True,
                error=type(error).__name__,
            )
            raise
        fault = self.fault_injection
        if fault is not None:
            fault._after_dequeue(self)
        tracer.event(
            "dequeue",
            deltas=self.registry.deltas_since(before),
            tag=(
                served.tag
                if fault is None
                else fault._reported_tag(self, served.tag)
            ),
            address=served.address,
            **self._op_attrs(),
        )
        return served

    def _traced_insert_and_dequeue(
        self, tag: int, payload: Any = None
    ) -> Tuple[ServedTag, int]:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        self.tree.last_outcome = None
        try:
            served, address = self._op_insert_and_dequeue(tag, payload)
        except BaseException as error:
            tracer.event(
                "insert_dequeue",
                deltas=self.registry.deltas_since(before),
                tag=tag,
                failed=True,
                error=type(error).__name__,
            )
            raise
        outcome = self.tree.last_outcome
        fault = self.fault_injection
        if fault is not None:
            fault._after_insert(self)
        tracer.event(
            "insert_dequeue",
            deltas=self.registry.deltas_since(before),
            tag=tag,
            address=address,
            served_tag=(
                served.tag
                if fault is None
                else fault._reported_tag(self, served.tag)
            ),
            served_address=served.address,
            used_backup=bool(outcome.used_backup) if outcome else False,
            **self._op_attrs(),
        )
        return served, address

    def _traced_insert_batch(
        self,
        tags: Sequence[int],
        payloads: Optional[Sequence[Any]] = None,
    ) -> List[int]:
        tags = list(tags)
        if self.eager_marker_removal:
            # The eager path falls back to per-op inserts, whose traced
            # wrappers already emit one event each.
            return TagSortRetrieveCircuit.insert_batch(self, tags, payloads)
        tracer = self.tracer
        start = self.count
        with tracer.span(
            "insert_batch", registry=self.registry, count=len(tags)
        ):
            self.tree.last_outcome = None
            addresses = TagSortRetrieveCircuit.insert_batch(
                self, tags, payloads
            )
            fault = self.fault_injection
            if fault is not None:
                fault._after_insert(self, count=len(tags))
            outcome = self.tree.last_outcome
            used_backup = bool(outcome.used_backup) if outcome else False
            # One event per logical operation, in input order, so the
            # batched stream is event-for-event comparable to per-op
            # mode; the memory-traffic deltas live on the enclosing
            # span (the batch amortizes them across the run).
            for index, (tag, address) in enumerate(zip(tags, addresses)):
                tracer.event(
                    "insert",
                    tag=tag,
                    address=address,
                    cycles=FIXED_OP_CYCLES,
                    occupancy=start + index + 1,
                    used_backup=used_backup and index == 0,
                    batched=True,
                )
        return addresses

    def _traced_dequeue_batch(self, count: int) -> List[ServedTag]:
        tracer = self.tracer
        start = self.count
        with tracer.span(
            "dequeue_batch", registry=self.registry, count=count
        ):
            served = TagSortRetrieveCircuit.dequeue_batch(self, count)
            fault = self.fault_injection
            if fault is not None:
                fault._after_dequeue(self, count=count)
            for index, entry in enumerate(served):
                tracer.event(
                    "dequeue",
                    tag=(
                        entry.tag
                        if fault is None
                        else fault._reported_tag(self, entry.tag)
                    ),
                    address=entry.address,
                    cycles=FIXED_OP_CYCLES,
                    occupancy=start - index - 1,
                    batched=True,
                )
        return served

    def _traced_remove(self, handle: int) -> ServedTag:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        cycles_before = self.cycles
        was_head = handle == self.storage._head_address
        try:
            removed = self._op_remove(handle)
        except BaseException as error:
            tracer.event(
                "remove",
                deltas=self.registry.deltas_since(before),
                address=handle,
                failed=True,
                error=type(error).__name__,
            )
            raise
        fault = self.fault_injection
        if fault is not None:
            fault._after_remove(self)
        tracer.event(
            "remove",
            deltas=self.registry.deltas_since(before),
            tag=removed.tag,
            address=(
                handle if fault is None else fault._reported_handle(handle)
            ),
            head=was_head,
            cycles=self.cycles - cycles_before,
            occupancy=self.count,
            free_list_depth=self.free_list_depth,
        )
        return removed

    def _traced_retag(self, handle: int, new_tag: int) -> int:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        cycles_before = self.cycles
        old_tag = self._handles.get(handle)
        try:
            address = self._op_retag(handle, new_tag)
        except BaseException as error:
            tracer.event(
                "retag",
                deltas=self.registry.deltas_since(before),
                address=handle,
                new_tag=new_tag,
                failed=True,
                error=type(error).__name__,
            )
            raise
        fault = self.fault_injection
        if fault is not None:
            fault._after_remove(self)
        tracer.event(
            "retag",
            deltas=self.registry.deltas_since(before),
            tag=old_tag,
            new_tag=new_tag,
            address=(
                handle if fault is None else fault._reported_handle(handle)
            ),
            new_address=address,
            cycles=self.cycles - cycles_before,
            occupancy=self.count,
            free_list_depth=self.free_list_depth,
        )
        return address

    def _traced_clear_stale_section(self, root_literal: int) -> int:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        try:
            purged = TagSortRetrieveCircuit.clear_stale_section(
                self, root_literal
            )
        except BaseException as error:
            tracer.event(
                "section_clear",
                deltas=self.registry.deltas_since(before),
                root_literal=root_literal,
                failed=True,
                error=type(error).__name__,
            )
            raise
        tracer.event(
            "section_clear",
            deltas=self.registry.deltas_since(before),
            root_literal=root_literal,
            purged=purged,
        )
        return purged

    def _traced_flush_stale_markers(self) -> None:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        TagSortRetrieveCircuit.flush_stale_markers(self)
        tracer.event(
            "marker_flush", deltas=self.registry.deltas_since(before)
        )

    # ------------------------------------------------------------------
    # stale-section maintenance (Fig. 6)

    def flush_stale_markers(self) -> None:
        """Initialization-mode reset: wipe last busy period's markers.

        Only meaningful while the storage is empty (Section III-A): with
        no live tags, every marker in the tree is stale, and the next
        busy period may start at lower values that would otherwise find
        them.  The per-op and batched insert paths both perform this
        flush automatically on the first insert of a busy period; wrap
        managers call it directly when they need the flush to precede
        their own section maintenance.  No-op in eager-marker mode (no
        stale markers exist) or when the tree is already clean.
        """
        if not self.storage.is_empty:
            raise ProtocolError(
                f"cannot flush markers with {self.storage.count} live "
                "tags in storage"
            )
        if not self.eager_marker_removal and not self.tree.is_empty:
            self.tree.clear_all()
        self._invalidate_head_cache()

    def clear_stale_section(self, root_literal: int) -> int:
        """Bulk-delete the markers of one vacated sixteenth of tag space.

        Called by the scheduler as the wrapping tag window advances past a
        root-literal section (Fig. 6).  Refuses to clear a section that
        still holds live tags.  Returns the number of stale marker values
        deleted.
        """
        if not 0 <= root_literal < self.fmt.branching_factor:
            raise ConfigurationError(
                f"root literal {root_literal} outside "
                f"[0, {self.fmt.branching_factor})"
            )
        if self._section_live[root_literal]:
            # The per-section occupancy counters guard the clear even in
            # fast mode; the shadow (when enabled) names an offender.
            low = root_literal << self._section_bits
            high = low + (1 << self._section_bits) - 1
            live_in_section = [
                value for value in self._live_tags if low <= value <= high
            ]
            example = (
                f" (e.g. {min(live_in_section)})" if live_in_section else ""
            )
            raise ProtocolError(
                f"section {root_literal} still holds "
                f"{self._section_live[root_literal]} live "
                f"tags{example}; cannot clear"
            )
        self._invalidate_head_cache()
        return self.tree.clear_root_section(root_literal)

    # ------------------------------------------------------------------
    # checkpoint / restore (shard migration, process-parallel backends)

    def to_state(self) -> dict:
        """Exact serializable snapshot of the whole circuit.

        Bundles the three structures' snapshots (tree markers,
        translation entries, linked-list storage including the threaded
        free list) with the circuit-level registers: cycle/operation
        accounting, the verification shadow, and the Fig. 6 per-section
        occupancy counters.  Restoring the snapshot — into this process
        or another — resumes the exact service order, accounting, and
        invariant state.  Tracer attachment is deliberately *not* part
        of the state: telemetry is a property of the hosting process.
        """
        return {
            "kind": "sort_retrieve_circuit",
            "config": self.describe(),
            "cycles": self.cycles,
            "operations": self.operations,
            "live_tags": sorted(self._live_tags.items()),
            "handles": sorted(self._handles.items()),
            "section_live": list(self._section_live),
            "tree": self.tree.to_state(),
            "translation": self.translation.to_state(),
            "storage": self.storage.to_state(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this instance.

        The circuit must have been constructed with the same
        configuration (:meth:`describe` must match the snapshot's).
        Internal :class:`AccessStats` objects are mutated in place, so
        the stats registry and any attached tracer stay live.
        """
        if state.get("kind") != "sort_retrieve_circuit":
            raise ConfigurationError(
                f"not a circuit snapshot: kind={state.get('kind')!r}"
            )
        snapshot_config = dict(state["config"])
        mine = self.describe()
        # The turbo engine is a hosting-process choice (like tracer
        # attachment), not circuit identity: a gate-recorded checkpoint
        # may resume under turbo and vice versa.  Pre-turbo snapshots
        # lack the key entirely.
        snapshot_config.pop("turbo", None)
        mine.pop("turbo", None)
        if snapshot_config != mine:
            raise ConfigurationError(
                f"snapshot config {state['config']} does not match this "
                f"circuit's {self.describe()}"
            )
        self.tree.load_state(state["tree"])
        self.translation.load_state(state["translation"])
        self.storage.load_state(state["storage"])
        self.cycles = state["cycles"]
        self.operations = state["operations"]
        self._live_tags = Counter(dict(
            (tag, count) for tag, count in state["live_tags"]
        ))
        handles = state.get("handles")
        if handles is None:
            # Pre-dynamic-update snapshot: rebuild the handle registry
            # from the authoritative storage walk (peek-only, no
            # accounting traffic).
            self._handles = {
                address: tag for tag, address in self.storage.walk()
            }
        else:
            self._handles = {
                int(address): tag for address, tag in handles
            }
        self._section_live = list(state["section_live"])
        self._invalidate_head_cache()

    @classmethod
    def from_state(
        cls,
        state: dict,
        *,
        matcher_factory=DEFAULT_MATCHER,
        tracer=None,
    ) -> "TagSortRetrieveCircuit":
        """Reconstruct a circuit from a :meth:`to_state` snapshot.

        ``matcher_factory`` is behaviour, not state, so the caller
        supplies it (the default matches the default constructor); a
        ``tracer`` may be attached to the restored circuit directly.
        """
        config = state["config"]
        fmt = WordFormat(
            levels=config["levels"], literal_bits=config["literal_bits"]
        )
        circuit = cls(
            fmt,
            capacity=config["capacity"],
            matcher_factory=matcher_factory,
            eager_marker_removal=config["eager_marker_removal"],
            modular=config["modular"],
            fast_mode=config["fast_mode"],
            turbo=config.get("turbo", False),
        )
        circuit.load_state(state)
        if tracer is not None:
            circuit.attach_tracer(tracer)
        return circuit

    # ------------------------------------------------------------------
    # verification

    def check_invariants(self) -> None:
        """Deep-verify tree, storage, and cross-structure consistency.

        In fast mode the independent ``_live_tags`` shadow is disabled,
        so the shadow-vs-storage multiset comparison is skipped; every
        other check (structure invariants, marker coverage, newest-
        duplicate translation pointers, section occupancy counters)
        still runs against the authoritative storage walk.
        """
        self.storage.check_invariants()
        self.tree.check_invariants()
        walked = self.storage.walk()
        stored = [tag for tag, _ in walked]
        if self.modular:
            stored = sorted(stored)
        if not self._fast_mode:
            live = sorted(self._live_tags.elements())
            if live != stored:
                raise ProtocolError(
                    f"shadow tag multiset diverged from storage: "
                    f"{live[:8]}... vs {stored[:8]}..."
                )
        expected_handles = {address: tag for tag, address in walked}
        if self._handles != expected_handles:
            extra = sorted(set(self._handles) - set(expected_handles))
            missing = sorted(set(expected_handles) - set(self._handles))
            raise ProtocolError(
                f"handle registry diverged from storage: "
                f"{len(self._handles)} registered vs {len(expected_handles)} "
                f"live (stale={extra[:4]}, missing={missing[:4]})"
            )
        stored_values = set(stored)
        marked = set(self.tree.marked_values())
        for value in stored_values:
            if value not in marked:
                raise ProtocolError(f"live tag {value} lost its tree marker")
        if self.eager_marker_removal:
            for value in marked:
                if value not in stored_values:
                    raise ProtocolError(
                        f"eager mode left a stale marker for {value}"
                    )
        sections = [0] * self.fmt.branching_factor
        for tag in stored:
            sections[tag >> self._section_bits] += 1
        if sections != self._section_live:
            raise ProtocolError(
                f"section occupancy counters diverged from storage: "
                f"{self._section_live} vs {sections}"
            )
        # Every live value's translation entry must point at its newest
        # duplicate, which is the last of its equal-valued run in the list.
        newest = {}
        for tag, address in walked:
            newest[tag] = address
        for value, address in newest.items():
            recorded = self.translation.lookup(value)
            if recorded != address:
                raise ProtocolError(
                    f"translation entry for {value} points at {recorded}, "
                    f"newest duplicate is at {address}"
                )
