"""The tag sort/retrieve circuit: tree + translation table + tag storage.

This is the paper's contribution (Fig. 3): an associative memory that
stores every finishing tag in the scheduler **in sorted order** and serves
the smallest within a guaranteed fixed time.  Inserting conforms to the
*sort model* of Section II-C — the lookup happens at the input, so a
dequeue never searches: it is a fixed-cost head removal.

Operation timing follows Section III-A: the three-level tree plus the
translation table throughput one tag in four clock cycles, matched to the
four-cycle (two-read, two-write) insert of the tag storage memory, so the
whole circuit sustains one operation — insert, dequeue, or a simultaneous
insert+dequeue — every :data:`FIXED_OP_CYCLES` cycles.

Marker lifetime has two modes:

* **Deferred (paper mode, default).**  A dequeue touches only the tag
  storage; tree markers and translation entries go *stale* instead of
  being removed.  Under the WFQ invariant — a new tag is never smaller
  than the current minimum — a stale marker is always shadowed by the
  live minimum's marker and can never be returned by a search, so this is
  sound and is exactly why the paper can bulk-delete stale sections only
  when the wrapping tag space comes back around (Fig. 6,
  :meth:`TagSortRetrieveCircuit.clear_stale_section`).
* **Eager.**  A dequeue that retires the last tag of a value removes the
  marker and translation entry immediately.  This drops the WFQ
  monotonicity requirement, making the circuit a general-purpose
  priority queue (used as such in the Table I comparisons).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..hwsim.errors import (
    ConfigurationError,
    EmptyStructureError,
    ProtocolError,
)
from ..hwsim.stats import AccessStats, StatsRegistry
from .matching import DEFAULT_MATCHER
from .tag_storage import TagStorageMemory
from .translation import TranslationTable
from .tree import MultiBitTree
from .words import PAPER_FORMAT, WordFormat

#: Clock cycles consumed by any single circuit operation (Section III-A).
FIXED_OP_CYCLES = 4


@dataclass(frozen=True)
class ServedTag:
    """A tag retrieved from the circuit."""

    tag: int
    payload: Any
    address: int


class TagSortRetrieveCircuit:
    """The complete tag sort/retrieve circuit of paper Fig. 3."""

    def __init__(
        self,
        fmt: WordFormat = PAPER_FORMAT,
        *,
        capacity: int = 4096,
        matcher_factory=DEFAULT_MATCHER,
        eager_marker_removal: bool = False,
        modular: bool = False,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be at least 1")
        if modular and eager_marker_removal:
            raise ConfigurationError(
                "modular (wrapping) mode relies on deferred marker removal"
            )
        self.fmt = fmt
        self.eager_marker_removal = eager_marker_removal
        self.modular = modular
        self.tree = MultiBitTree(fmt, matcher_factory=matcher_factory)
        self.translation = TranslationTable(fmt)
        self.storage = TagStorageMemory(capacity, modular=modular)
        self.cycles = 0
        self.operations = 0
        self._live_tags: Counter = Counter()  # verification shadow only
        self.registry = StatsRegistry()
        self.registry.register("translation_table", self.translation.stats)
        self.registry.register("tag_storage", self.storage.stats)
        for level in range(fmt.levels):
            self.registry.register(
                f"tree_level_{level}", self.tree.level_stats(level)
            )

    # ------------------------------------------------------------------
    # observers

    @property
    def count(self) -> int:
        """Number of tags currently stored."""
        return self.storage.count

    @property
    def is_empty(self) -> bool:
        """True when the circuit holds no tags."""
        return self.storage.is_empty

    def peek_min(self) -> Optional[int]:
        """The smallest stored tag, from the head register (zero cost)."""
        return self.storage.min_tag

    def total_stats(self) -> AccessStats:
        """Summed memory traffic across every internal structure."""
        return self.registry.total()

    def _spend_operation(self) -> None:
        self.cycles += FIXED_OP_CYCLES
        self.operations += 1

    def _check_monotone(self, tag: int) -> None:
        """Enforce the WFQ invariant: new tags never precede the minimum.

        In modular mode the comparison is sequence-number style: the
        forward (wrapped) distance from the minimum to the new tag must be
        under half the tag space, the standard serial-number rule that
        makes the wrapped window unambiguous.
        """
        minimum = self.storage.min_tag
        if minimum is None:
            return
        if self.modular:
            distance = (tag - minimum) % self.fmt.capacity
            if distance >= self.fmt.capacity // 2:
                raise ProtocolError(
                    f"tag {tag} is behind the window minimum {minimum} "
                    f"(wrapped distance {distance})"
                )
        elif tag < minimum:
            raise ProtocolError(
                f"WFQ invariant violated: tag {tag} below current "
                f"minimum {minimum} (use eager_marker_removal=True for "
                "general priority-queue workloads)"
            )

    # ------------------------------------------------------------------
    # insert (sort-model input-side lookup)

    def insert(self, tag: int, payload: Any = None) -> int:
        """Sort ``tag`` into the circuit; returns its storage address.

        One fixed four-cycle operation: the tree finds the closest
        existing tag at or below ``tag`` (Figs. 4/5), the translation
        table converts it to a linked-list address, and the storage
        memory splices the new link in (Fig. 9).
        """
        self.fmt.check_value(tag)
        if not self.eager_marker_removal:
            self._check_monotone(tag)
        address = self._insert_link(tag, payload)
        self.tree.insert_marker(tag)
        self.translation.record(tag, address)
        self._live_tags[tag] += 1
        self._spend_operation()
        return address

    def _insert_link(self, tag: int, payload: Any) -> int:
        if self.storage.is_empty:
            # Initialization mode (Section III-A).  In deferred-marker
            # mode the tree still holds stale markers from the busy
            # period that just drained; the next busy period may start at
            # *lower* tag values, which would make those stale markers
            # reachable again, so the initialization reset flushes them.
            if not self.eager_marker_removal and not self.tree.is_empty:
                self.tree.clear_all()
            return self.storage.insert_first(tag, payload)
        predecessor = self._locate_predecessor(tag)
        if predecessor is None:
            if self.modular:
                raise ProtocolError(
                    f"no predecessor for wrapped tag {tag}: the sections "
                    "below it were not cleared before reuse"
                )
            return self.storage.insert_at_head(tag, payload)
        return self.storage.insert_after(predecessor, tag, payload)

    def _locate_predecessor(self, tag: int) -> Optional[int]:
        """Tree search + translation lookup -> predecessor link address.

        In modular mode a raw-search miss means the tag is the logically
        smallest value of the *new lap* (it wrapped past zero while older
        tags are still live near the top of the range); its logical
        predecessor is then the largest marked value of the old lap — the
        raw maximum, found by following maximum bits down the tree.
        """
        closest = self.tree.closest_at_most(tag)
        if closest is None and self.modular and not self.tree.is_empty:
            closest = self.tree.max_marked()
        if closest is None:
            return None
        address = self.translation.lookup(closest)
        if address is None:
            raise ProtocolError(
                f"tree returned value {closest} with no translation entry"
            )
        return address

    # ------------------------------------------------------------------
    # dequeue (fixed-time head removal)

    def dequeue_min(self) -> ServedTag:
        """Remove and return the smallest tag in fixed time."""
        if self.is_empty:
            raise EmptyStructureError("dequeue from an empty circuit")
        tag, payload, address = self.storage.dequeue_min()
        self._retire(tag, address)
        self._spend_operation()
        return ServedTag(tag=tag, payload=payload, address=address)

    def insert_and_dequeue(
        self, tag: int, payload: Any = None
    ) -> Tuple[ServedTag, int]:
        """Simultaneous insert + dequeue in one four-cycle operation.

        Models the Section III-C case where a store request and a service
        request arrive together: the departing head's slot is reused for
        the incoming tag.  Returns ``(served, new_address)``.
        """
        self.fmt.check_value(tag)
        if self.is_empty:
            raise EmptyStructureError("insert_and_dequeue on an empty circuit")
        if not self.eager_marker_removal:
            self._check_monotone(tag)
        predecessor = self._locate_predecessor(tag)
        served_tag, served_payload, served_address, new_address = (
            self.storage.replace_min(predecessor, tag, payload)
        )
        self._retire(served_tag, served_address)
        self.tree.insert_marker(tag)
        self.translation.record(tag, new_address)
        self._live_tags[tag] += 1
        self._spend_operation()
        served = ServedTag(
            tag=served_tag, payload=served_payload, address=served_address
        )
        return served, new_address

    def _retire(self, tag: int, address: int) -> None:
        self._live_tags[tag] -= 1
        if self._live_tags[tag] == 0:
            del self._live_tags[tag]
        if self.eager_marker_removal:
            if self.translation.invalidate_if_points_to(tag, address):
                self.tree.remove_marker(tag)

    # ------------------------------------------------------------------
    # stale-section maintenance (Fig. 6)

    def clear_stale_section(self, root_literal: int) -> int:
        """Bulk-delete the markers of one vacated sixteenth of tag space.

        Called by the scheduler as the wrapping tag window advances past a
        root-literal section (Fig. 6).  Refuses to clear a section that
        still holds live tags.  Returns the number of stale marker values
        deleted.
        """
        section_bits = self.fmt.word_bits - self.fmt.literal_bits
        low = root_literal << section_bits
        high = low + (1 << section_bits) - 1
        live_in_section = [
            value for value in self._live_tags if low <= value <= high
        ]
        if live_in_section:
            raise ProtocolError(
                f"section {root_literal} still holds live tags "
                f"(e.g. {min(live_in_section)}); cannot clear"
            )
        return self.tree.clear_root_section(root_literal)

    # ------------------------------------------------------------------
    # verification

    def check_invariants(self) -> None:
        """Deep-verify tree, storage, and cross-structure consistency."""
        self.storage.check_invariants()
        self.tree.check_invariants()
        live = sorted(self._live_tags.elements())
        stored = [tag for tag, _ in self.storage.walk()]
        if self.modular:
            stored = sorted(stored)
        if live != stored:
            raise ProtocolError(
                f"shadow tag multiset diverged from storage: "
                f"{live[:8]}... vs {stored[:8]}..."
            )
        marked = set(self.tree.marked_values())
        for value in self._live_tags:
            if value not in marked:
                raise ProtocolError(f"live tag {value} lost its tree marker")
        if self.eager_marker_removal:
            for value in marked:
                if value not in self._live_tags:
                    raise ProtocolError(
                        f"eager mode left a stale marker for {value}"
                    )
        # Every live value's translation entry must point at its newest
        # duplicate, which is the last of its equal-valued run in the list.
        newest = {}
        for tag, address in self.storage.walk():
            newest[tag] = address
        for value, address in newest.items():
            recorded = self.translation.lookup(value)
            if recorded != address:
                raise ProtocolError(
                    f"translation entry for {value} points at {recorded}, "
                    f"newest duplicate is at {address}"
                )
