"""The translation table (paper Section III-D).

The table bridges the search tree and the tag storage memory: for every
representable tag value it records the linked-list address of the **most
recently inserted** tag of that value.  Tracking the most recent duplicate
(Fig. 11) is what keeps tree results valid when rounded-off WFQ tags
collide, and preserves first-come-first-served order among duplicates: a
new duplicate is always inserted *after* the previous one.

Size: one entry per representable value, ``b**L = 2**W`` entries
(the paper's second eq. (2)); the silicon configuration needs 4096, the
optional 15-bit variant would need 32 k.
"""

from __future__ import annotations

from typing import Optional

from ..hwsim.errors import ConfigurationError
from ..hwsim.memory import SinglePortSRAM
from ..hwsim.stats import AccessStats
from .sizing import translation_table_entries
from .words import WordFormat


class TranslationTable:
    """tag value -> linked-list address of the newest tag of that value."""

    def __init__(self, fmt: WordFormat, *, address_bits: int = 24) -> None:
        self.fmt = fmt
        entries = translation_table_entries(fmt.levels, fmt.branching_factor)
        self._memory = SinglePortSRAM(
            entries,
            name="translation_table",
            word_bits=address_bits,
            enforce_port=False,
        )

    @property
    def entries(self) -> int:
        """Number of table entries (2**W)."""
        return self._memory.size

    @property
    def stats(self) -> AccessStats:
        """Access counters of the table memory."""
        return self._memory.stats

    @property
    def total_bits(self) -> int:
        """Storage footprint in bits."""
        return self._memory.total_bits

    def lookup(self, tag_value: int) -> Optional[int]:
        """Linked-list address of the newest tag with ``tag_value``.

        Returns None when the value has no live entry.  The caller (the
        sort/retrieve circuit) only looks up values the tree reported
        present, so None here indicates a bookkeeping bug upstream.
        """
        self.fmt.check_value(tag_value)
        return self._memory.read(tag_value)

    def record(self, tag_value: int, address: int) -> None:
        """Point ``tag_value`` at ``address`` (the newest duplicate)."""
        self.fmt.check_value(tag_value)
        if address < 0:
            raise ConfigurationError("linked-list address must be non-negative")
        self._memory.write(tag_value, address)

    def turbo_lookup(self, tag_value: int) -> Optional[int]:
        """Access-fused :meth:`lookup` (one read, same counter).

        The caller has already validated ``tag_value`` (turbo callers
        only look up values the tree itself produced), so the fused path
        is the raw cell fetch plus the read charge.
        """
        self._memory.stats.reads += 1
        return self._memory._cells[tag_value]

    def turbo_record(self, tag_value: int, address: int) -> None:
        """Access-fused :meth:`record` (one write, same counter)."""
        self._memory._cells[tag_value] = address
        self._memory.stats.writes += 1

    def invalidate(self, tag_value: int) -> None:
        """Drop the entry for ``tag_value`` (its last duplicate departed)."""
        self.fmt.check_value(tag_value)
        self._memory.write(tag_value, None)

    def to_state(self) -> dict:
        """Exact serializable snapshot: every entry plus accounting."""
        return {
            "kind": "translation_table",
            "levels": self.fmt.levels,
            "literal_bits": self.fmt.literal_bits,
            "address_bits": self._memory.word_bits,
            "cells": list(self._memory._cells),
            "stats": self.stats.to_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this instance."""
        if state.get("kind") != "translation_table":
            raise ConfigurationError(
                f"not a translation snapshot: kind={state.get('kind')!r}"
            )
        if (
            state["levels"] != self.fmt.levels
            or state["literal_bits"] != self.fmt.literal_bits
        ):
            raise ConfigurationError(
                f"snapshot format L={state['levels']}/k="
                f"{state['literal_bits']} != L={self.fmt.levels}/k="
                f"{self.fmt.literal_bits}"
            )
        cells = state["cells"]
        if len(cells) != self._memory.size:
            raise ConfigurationError(
                f"snapshot holds {len(cells)} entries, table holds "
                f"{self._memory.size}"
            )
        self._memory._cells[:] = cells
        self.stats.reads = state["stats"]["reads"]
        self.stats.writes = state["stats"]["writes"]

    @classmethod
    def from_state(cls, state: dict) -> "TranslationTable":
        """Reconstruct a table from a :meth:`to_state` snapshot."""
        fmt = WordFormat(
            levels=state["levels"], literal_bits=state["literal_bits"]
        )
        table = cls(fmt, address_bits=state.get("address_bits", 24))
        table.load_state(state)
        return table

    def invalidate_if_points_to(self, tag_value: int, address: int) -> bool:
        """Invalidate only if the entry still points at ``address``.

        Used on dequeue: when the departing link is the one the table
        points at, the value has no remaining duplicates and the entry
        must go; if the table points elsewhere a newer duplicate is still
        live and the entry stays.  Returns True when invalidated.
        """
        self.fmt.check_value(tag_value)
        current = self._memory.read(tag_value)
        if current == address:
            self._memory.write(tag_value, None)
            return True
        return False
