"""The translation table (paper Section III-D).

The table bridges the search tree and the tag storage memory: for every
representable tag value it records the linked-list address of the **most
recently inserted** tag of that value.  Tracking the most recent duplicate
(Fig. 11) is what keeps tree results valid when rounded-off WFQ tags
collide, and preserves first-come-first-served order among duplicates: a
new duplicate is always inserted *after* the previous one.

Size: one entry per representable value, ``b**L = 2**W`` entries
(the paper's second eq. (2)); the silicon configuration needs 4096, the
optional 15-bit variant would need 32 k.
"""

from __future__ import annotations

from typing import Optional

from ..hwsim.errors import ConfigurationError
from ..hwsim.memory import SinglePortSRAM
from ..hwsim.stats import AccessStats
from .sizing import translation_table_entries
from .words import WordFormat


class TranslationTable:
    """tag value -> linked-list address of the newest tag of that value."""

    def __init__(self, fmt: WordFormat, *, address_bits: int = 24) -> None:
        self.fmt = fmt
        entries = translation_table_entries(fmt.levels, fmt.branching_factor)
        self._memory = SinglePortSRAM(
            entries,
            name="translation_table",
            word_bits=address_bits,
            enforce_port=False,
        )

    @property
    def entries(self) -> int:
        """Number of table entries (2**W)."""
        return self._memory.size

    @property
    def stats(self) -> AccessStats:
        """Access counters of the table memory."""
        return self._memory.stats

    @property
    def total_bits(self) -> int:
        """Storage footprint in bits."""
        return self._memory.total_bits

    def lookup(self, tag_value: int) -> Optional[int]:
        """Linked-list address of the newest tag with ``tag_value``.

        Returns None when the value has no live entry.  The caller (the
        sort/retrieve circuit) only looks up values the tree reported
        present, so None here indicates a bookkeeping bug upstream.
        """
        self.fmt.check_value(tag_value)
        return self._memory.read(tag_value)

    def record(self, tag_value: int, address: int) -> None:
        """Point ``tag_value`` at ``address`` (the newest duplicate)."""
        self.fmt.check_value(tag_value)
        if address < 0:
            raise ConfigurationError("linked-list address must be non-negative")
        self._memory.write(tag_value, address)

    def invalidate(self, tag_value: int) -> None:
        """Drop the entry for ``tag_value`` (its last duplicate departed)."""
        self.fmt.check_value(tag_value)
        self._memory.write(tag_value, None)

    def invalidate_if_points_to(self, tag_value: int, address: int) -> bool:
        """Invalidate only if the entry still points at ``address``.

        Used on dequeue: when the departing link is the one the table
        points at, the value has no remaining duplicates and the entry
        must go; if the table points elsewhere a newer duplicate is still
        live and the entry stays.  Returns True when invalidated.
        """
        self.fmt.check_value(tag_value)
        current = self._memory.read(tag_value)
        if current == address:
            self._memory.write(tag_value, None)
            return True
        return False
