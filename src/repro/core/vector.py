"""The vector engine: the whole circuit as contiguous numpy arrays.

``--mode vector`` holds every structure of the paper's circuit as flat
word arrays and executes the batched operations as whole-array ops:

* **Tree levels** — one unsigned-word array per level (16-bit node
  words for the silicon configuration), root first.  The leaf level is
  maintained eagerly (one masked OR / AND-NOT per batch, duplicates
  folded with ``np.bitwise_or.at``); the upper levels are rebuilt
  lazily from the leaf words — one reshape + pack per level — only
  when a snapshot, invariant check, or section clear needs them.
* **Tag storage** — bucket FIFOs over the tag space: ``bucket_head`` /
  ``bucket_tail`` / ``bucket_count`` arrays indexed by tag value plus
  ``entry_next`` / ``entry_tag`` arrays indexed by storage address.
  This is the same global sorted linked list as the gate engine, just
  factored by value, so the service order (FCFS among duplicates) and
  the storage addresses are *identical* to gate: allocation follows
  the Fig. 10 discipline exactly (init counter first, then LIFO pops
  of the threaded empty list, kept here as an explicit stack).
* **Occupancy** — a uint64 bitmap of live slots (one bit per storage
  address); the free list is the bitmap's complement over
  counter-issued addresses, ordered by the stack.

Contract split (DESIGN.md §15): served order, payloads, storage
addresses, and ``to_state()`` snapshots are gate-identical — the
differential suite asserts them pairwise across engines — while
``cycles`` and the per-structure access counters are *modeled*
per-engine costs that stay within the invariant monitors'
architectural budgets (insert ≤ 2R+2W storage, deferred dequeue
exactly 1R+1W, batch spans within per-op budgets × count) rather than
replicas of the gate-accurate traffic.

:class:`VectorPlane` stacks the level arrays of many circuits (the
fabric's shards) into one ``(shards, words)`` matrix per level, so one
array op — the lazy upper-level rebuild — advances every shard at
once.

numpy is resolved through :func:`repro.core.engine.require_numpy`, so
constructing this engine without numpy raises a clear
:class:`~repro.hwsim.errors.ConfigurationError`; importing this module
never does.
"""

from __future__ import annotations

from itertools import repeat
from operator import index as _as_index
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from ..hwsim.errors import (
    CapacityError,
    ConfigurationError,
    EmptyStructureError,
    ProtocolError,
)
from ..hwsim.stats import AccessStats, StatsRegistry
from ..obs.tracer import NULL_TRACER
from .engine import require_numpy
from .sort_retrieve import FIXED_OP_CYCLES, ServedTag

#: ``tuple.__new__`` bound once: building a ServedTag per served entry is
#: the hot floor of the batch drain, and going through ``tuple.__new__``
#: directly (instead of ``ServedTag._make``'s Python frame) keeps the
#: whole construction loop in C.
_TUPLE_NEW = tuple.__new__
from .words import PAPER_FORMAT, WordFormat, popcount_array, popcount_word

__all__ = ["VectorSortRetrieveCircuit", "VectorPlane"]


def _node_dtype(np, branching_factor: int):
    """Smallest unsigned word type holding one presence bit per child."""
    if branching_factor <= 16:
        return np.uint16
    if branching_factor <= 32:
        return np.uint32
    if branching_factor <= 64:
        return np.uint64
    raise ConfigurationError(
        f"vector engine supports node words up to 64 bits, "
        f"got branching factor {branching_factor}"
    )


class _VectorStorageView:
    """The slice of the gate storage surface the outer layers consume.

    ``net/`` and ``fabric/`` reach through ``circuit.storage`` for head
    registers, occupancy, the walk, and the stats object (the fault
    hooks charge it directly); this view forwards them to the array
    state so those layers stay engine-agnostic.
    """

    def __init__(self, circuit: "VectorSortRetrieveCircuit") -> None:
        self._circuit = circuit
        self.stats: AccessStats = circuit._stats_storage

    @property
    def capacity(self) -> int:
        return self._circuit.capacity

    @property
    def modular(self) -> bool:
        return self._circuit.modular

    @property
    def count(self) -> int:
        return self._circuit._count

    # The gate storage exposes these private registers; the retag /
    # head-sync paths read them, so the view mirrors the names.
    @property
    def _count(self) -> int:
        return self._circuit._count

    @property
    def is_empty(self) -> bool:
        return self._circuit._count == 0

    @property
    def is_full(self) -> bool:
        return self._circuit._count >= self._circuit.capacity

    @property
    def min_tag(self) -> Optional[int]:
        return self._circuit._head_tag

    @property
    def _head_tag(self) -> Optional[int]:
        return self._circuit._head_tag

    @property
    def _head_address(self) -> Optional[int]:
        return self._circuit._head_address()

    @property
    def allocations_remaining_in_counter(self) -> int:
        return self._circuit.capacity - self._circuit._counter_next

    def peek_head(self) -> Optional[Tuple[int, Any, int]]:
        circuit = self._circuit
        head = circuit._head_tag
        if head is None:
            return None
        address = int(circuit._bucket_head[head])
        return (head, circuit._payload[address], address)

    def walk(self) -> List[Tuple[int, int]]:
        return self._circuit.walk()

    def check_invariants(self) -> None:
        self._circuit.check_invariants()


class VectorSortRetrieveCircuit:
    """Array-data-plane twin of :class:`TagSortRetrieveCircuit`.

    Same operations, same served order, same addresses, same snapshot
    format; batch paths run as numpy array ops.  See the module
    docstring for the layout and the per-engine accounting contract.
    """

    mode = "vector"
    fault_injection = None
    head_cache_hits = 0  # gate telemetry knob; the vector engine has no cache

    def __init__(
        self,
        fmt: WordFormat = PAPER_FORMAT,
        *,
        capacity: int = 4096,
        eager_marker_removal: bool = False,
        modular: bool = False,
        fast_mode: bool = False,
        tracer=None,
    ) -> None:
        np = require_numpy("--mode vector (the array data-plane engine)")
        self._xp = np
        if capacity < 1:
            raise ConfigurationError("capacity must be at least 1")
        if modular and eager_marker_removal:
            raise ConfigurationError(
                "modular (wrapping) mode relies on deferred marker removal"
            )
        self.fmt = fmt
        self.capacity = capacity
        self.eager_marker_removal = eager_marker_removal
        self.modular = modular
        self._fast_mode = bool(fast_mode)
        self._tag_space = fmt.capacity
        self._half_space = fmt.capacity // 2
        self._section_bits = fmt.word_bits - fmt.literal_bits
        self._literal_bits = fmt.literal_bits
        self._branching = fmt.branching_factor

        # -- tag storage as bucket FIFOs + explicit free stack ----------
        self._bucket_head = np.full(self._tag_space, -1, dtype=np.int64)
        self._bucket_tail = np.full(self._tag_space, -1, dtype=np.int64)
        self._bucket_count = np.zeros(self._tag_space, dtype=np.int64)
        self._entry_next = np.full(capacity, -1, dtype=np.int64)
        self._entry_tag = np.full(capacity, -1, dtype=np.int64)
        self._payload: List[Any] = [None] * capacity
        # Live (non-None) payload count: lets tag-only batch drains skip
        # the per-serve payload gather/clear loops entirely.
        self._payload_live = 0
        self._free_stack = np.zeros(capacity, dtype=np.int64)
        self._free_top = 0
        self._counter_next = 0  # Fig. 10 init counter (addresses issued)
        self._occ = np.zeros((capacity + 63) // 64, dtype=np.uint64)
        self._head_tag: Optional[int] = None
        self._count = 0

        # -- tree levels as word arrays, root first ----------------------
        dtype = _node_dtype(np, self._branching)
        self._levels_arr = [
            np.zeros(self._branching**level, dtype=dtype)
            for level in range(fmt.levels)
        ]
        self._leaf = self._levels_arr[-1]
        self._tree_count = 0
        self._upper_dirty = False
        self._plane: Optional["VectorPlane"] = None

        # -- translation table (includes stale entries, like gate) -------
        self._trans = np.full(self._tag_space, -1, dtype=np.int64)

        self.cycles = 0
        self.operations = 0
        self._stats_translation = AccessStats()
        self._stats_storage = AccessStats()
        self._stats_tree = [AccessStats() for _ in range(fmt.levels)]
        self.registry = StatsRegistry()
        self.registry.register("translation_table", self._stats_translation)
        self.registry.register("tag_storage", self._stats_storage)
        for level in range(fmt.levels):
            self.registry.register(
                f"tree_level_{level}", self._stats_tree[level]
            )
        self.storage = _VectorStorageView(self)
        self.tracer = NULL_TRACER
        if tracer is not None:
            self.attach_tracer(tracer)

    # ------------------------------------------------------------------
    # observers (gate-identical surface)

    @property
    def count(self) -> int:
        """Number of tags currently stored."""
        return self._count

    @property
    def is_empty(self) -> bool:
        """True when the circuit holds no tags."""
        return self._count == 0

    @property
    def fast_mode(self) -> bool:
        """Shadow-skip flag; the vector engine keeps no shadow either way."""
        return self._fast_mode

    @fast_mode.setter
    def fast_mode(self, enabled: bool) -> None:
        self._fast_mode = bool(enabled)

    @property
    def turbo(self) -> bool:
        """Always False: vector is its own engine, not a turbo variant."""
        return False

    @turbo.setter
    def turbo(self, enabled: bool) -> None:
        if bool(enabled):
            raise ConfigurationError(
                "the vector engine has no turbo variant (use mode='turbo')"
            )

    @property
    def live_handles(self) -> int:
        """Number of live handles (equals :attr:`count` by invariant)."""
        return self._count

    @property
    def free_list_depth(self) -> int:
        """Links currently threaded on the free stack (Fig. 10)."""
        return self._free_top

    def peek_min(self) -> Optional[int]:
        """The smallest stored tag, from the head register (zero cost)."""
        return self._head_tag

    def peek_head(self) -> Optional[ServedTag]:
        """The head entry without dequeuing it (register read, no cost)."""
        head = self._head_tag
        if head is None:
            return None
        address = int(self._bucket_head[head])
        return ServedTag(
            tag=head, payload=self._payload[address], address=address
        )

    def total_stats(self) -> AccessStats:
        """Summed (modeled) memory traffic across every structure."""
        return self.registry.total()

    def describe(self) -> dict:
        """Gate-shaped configuration snapshot (snapshot interchange key)."""
        return {
            "levels": self.fmt.levels,
            "literal_bits": self.fmt.literal_bits,
            "word_bits": self.fmt.word_bits,
            "branching_factor": self.fmt.branching_factor,
            "tag_space": self.fmt.capacity,
            "capacity": self.capacity,
            "modular": self.modular,
            "eager_marker_removal": self.eager_marker_removal,
            "fast_mode": self._fast_mode,
            "turbo": False,
        }

    # ------------------------------------------------------------------
    # internal register helpers

    def _head_address(self) -> Optional[int]:
        head = self._head_tag
        if head is None:
            return None
        return int(self._bucket_head[head])

    def _check_monotone(self, tag: int) -> None:
        self._check_monotone_against(tag, self._head_tag)

    def _check_monotone_against(
        self, tag: int, minimum: Optional[int]
    ) -> None:
        if minimum is None:
            return
        if self.modular:
            distance = (tag - minimum) % self._tag_space
            if distance >= self._half_space:
                raise ProtocolError(
                    f"tag {tag} is behind the window minimum {minimum} "
                    f"(wrapped distance {distance})"
                )
        elif tag < minimum:
            raise ProtocolError(
                f"WFQ invariant violated: tag {tag} below current "
                f"minimum {minimum} (use eager_marker_removal=True for "
                "general priority-queue workloads)"
            )

    def _next_live_tag(self, start: int) -> Optional[int]:
        """Smallest live tag at or after ``start`` (modular wraps)."""
        bc = self._bucket_count
        if start < self._tag_space:
            segment = bc[start:]
            pos = int((segment > 0).argmax())
            if segment[pos]:
                return start + pos
        if self.modular and start > 0:
            segment = bc[:start]
            pos = int((segment > 0).argmax())
            if segment[pos]:
                return pos
        return None

    def _advance_head(self, departed: int) -> None:
        """Recompute the head register after ``departed`` drained."""
        if self._count == 0:
            self._head_tag = None
            return
        start = departed + 1
        if self.modular:
            start %= self._tag_space
        head = self._next_live_tag(start)
        if head is None:
            raise ProtocolError(
                f"vector engine lost the minimum: {self._count} live tags "
                f"but no bucket at or after {start}"
            )
        self._head_tag = head

    def _alloc(self) -> int:
        """One Fig. 10 allocation: init counter first, then LIFO pop."""
        if self._counter_next < self.capacity:
            address = self._counter_next
            self._counter_next = address + 1
            return address
        top = self._free_top
        if top == 0:
            raise ProtocolError(
                "counter exhausted and free stack empty, but count < capacity"
            )
        self._free_top = top - 1
        return int(self._free_stack[top - 1])

    def _release(self, address: int) -> None:
        """Thread a departed slot back onto the free stack (LIFO)."""
        self._free_stack[self._free_top] = address
        self._free_top += 1
        self._occ[address >> 6] &= ~self._xp.uint64(1 << (address & 63))

    def _occupy(self, address: int) -> None:
        self._occ[address >> 6] |= self._xp.uint64(1 << (address & 63))

    def _is_live(self, address: int) -> bool:
        return bool((int(self._occ[address >> 6]) >> (address & 63)) & 1)

    # ------------------------------------------------------------------
    # tree marker helpers (leaf eager, upper levels lazy)

    def _mark_dirty(self) -> None:
        self._upper_dirty = True

    def _set_leaf_marker(self, tag: int) -> bool:
        """Set ``tag``'s leaf bit; True when the marker is new."""
        word_index = tag >> self._literal_bits
        bit = tag & (self._branching - 1)
        word = int(self._leaf[word_index])
        if (word >> bit) & 1:
            return False
        self._leaf[word_index] = word | (1 << bit)
        self._tree_count += 1
        self._upper_dirty = True
        return True

    def _clear_leaf_marker(self, tag: int) -> None:
        word_index = tag >> self._literal_bits
        bit = tag & (self._branching - 1)
        word = int(self._leaf[word_index])
        if (word >> bit) & 1:
            self._leaf[word_index] = word & ~(1 << bit)
            self._tree_count -= 1
            self._upper_dirty = True

    def _clear_tree(self) -> None:
        for level in self._levels_arr:
            level.fill(0)
        self._tree_count = 0
        self._upper_dirty = False

    def _rebuild_upper(self) -> None:
        """Repack the upper tree levels from the leaf words.

        Runs through the :class:`VectorPlane` when one is attached, so
        every adopted shard's rebuild is a single stacked array op.
        """
        if not self._upper_dirty:
            return
        if self._plane is not None:
            self._plane.rebuild()
            return
        np = self._xp
        b = self._branching
        weights = (np.uint64(1) << np.arange(b, dtype=np.uint64))
        for level in range(len(self._levels_arr) - 1, 0, -1):
            child = self._levels_arr[level]
            parent = self._levels_arr[level - 1]
            present = (child.reshape(parent.size, b) != 0).astype(np.uint64)
            parent[:] = (present * weights).sum(axis=1).astype(parent.dtype)
        self._upper_dirty = False

    def _charge_tree(self, *, reads: int = 0, writes: int = 0) -> None:
        for stats in self._stats_tree:
            stats.reads += reads
            stats.writes += writes

    # ------------------------------------------------------------------
    # the paper's per-op surface

    def _spend_operation(self) -> None:
        self.cycles += FIXED_OP_CYCLES
        self.operations += 1

    def insert(self, tag: int, payload: Any = None) -> int:
        """Sort ``tag`` into the circuit; returns its storage address."""
        self.fmt.check_value(tag)
        if not self.eager_marker_removal:
            self._check_monotone(tag)
        if self._count >= self.capacity:
            raise CapacityError(
                f"tag storage full ({self.capacity} links in use)"
            )
        was_empty = self._count == 0
        if (
            was_empty
            and not self.eager_marker_removal
            and self._tree_count
        ):
            # Initialization mode (Section III-A): wipe stale markers
            # left by the busy period that just drained.
            self._clear_tree()
        address = self._alloc()
        self._append_entry(tag, address, payload)
        new_marker = self._set_leaf_marker(tag)
        self._trans[tag] = address
        self._count += 1
        if self._head_tag is None or (
            not self.modular and tag < self._head_tag
        ):
            self._head_tag = tag
        # Modeled accounting: within the gate insert's 2R+2W storage
        # window, one translation lookup+record, one node read per
        # level (+ a write where the marker is new).
        storage = self._stats_storage
        if was_empty:
            storage.writes += 1
            self._stats_translation.writes += 1
        else:
            storage.reads += 2
            storage.writes += 2
            self._stats_translation.reads += 1
            self._stats_translation.writes += 1
        self._charge_tree(reads=1, writes=1 if new_marker else 0)
        self._spend_operation()
        return address

    def _append_entry(self, tag: int, address: int, payload: Any) -> None:
        tail = int(self._bucket_tail[tag])
        if tail < 0:
            self._bucket_head[tag] = address
        else:
            self._entry_next[tail] = address
        self._bucket_tail[tag] = address
        self._bucket_count[tag] += 1
        self._entry_next[address] = -1
        self._entry_tag[address] = tag
        if payload is not None:
            self._payload[address] = payload
            self._payload_live += 1
        self._occupy(address)

    def dequeue_min(self) -> ServedTag:
        """Remove and return the smallest tag in fixed time."""
        if self._count == 0:
            raise EmptyStructureError("dequeue from an empty circuit")
        head = self._head_tag
        address = int(self._bucket_head[head])
        payload = self._payload[address]
        if payload is not None:
            self._payload[address] = None
            self._payload_live -= 1
        next_address = int(self._entry_next[address])
        self._bucket_head[head] = next_address
        self._bucket_count[head] -= 1
        drained = next_address < 0
        if drained:
            self._bucket_tail[head] = -1
        self._release(address)
        self._count -= 1
        if self.eager_marker_removal:
            self._stats_translation.reads += 1
            if int(self._trans[head]) == address:
                self._trans[head] = -1
                self._stats_translation.writes += 1
                self._clear_leaf_marker(head)
                self._charge_tree(reads=1, writes=1)
        if drained:
            self._advance_head(head)
        self._stats_storage.reads += 1
        self._stats_storage.writes += 1
        self._spend_operation()
        return ServedTag(tag=head, payload=payload, address=address)

    def insert_and_dequeue(
        self, tag: int, payload: Any = None
    ) -> Tuple[ServedTag, int]:
        """Simultaneous insert + dequeue; the head's slot is reused."""
        self.fmt.check_value(tag)
        if self._count == 0:
            raise EmptyStructureError("insert_and_dequeue on an empty circuit")
        if not self.eager_marker_removal:
            self._check_monotone(tag)
        old_head = self._head_tag
        address = int(self._bucket_head[old_head])
        served_payload = self._payload[address]
        if served_payload is not None:
            self._payload[address] = None
            self._payload_live -= 1
        next_address = int(self._entry_next[address])
        self._bucket_head[old_head] = next_address
        self._bucket_count[old_head] -= 1
        drained = next_address < 0
        if drained:
            self._bucket_tail[old_head] = -1
        self._count -= 1
        if self.eager_marker_removal:
            self._stats_translation.reads += 1
            if int(self._trans[old_head]) == address:
                self._trans[old_head] = -1
                self._stats_translation.writes += 1
                self._clear_leaf_marker(old_head)
                self._charge_tree(reads=1, writes=1)
        if drained:
            self._advance_head(old_head)
        # The departing head's slot is reused in place (no free-stack
        # traffic), exactly like the gate storage's replace_min.
        self._append_entry(tag, address, payload)
        self._count += 1
        current = self._head_tag
        if current is None:
            self._head_tag = tag
        elif self.modular:
            if (tag - old_head) % self._tag_space < (
                current - old_head
            ) % self._tag_space:
                self._head_tag = tag
        elif tag < current:
            self._head_tag = tag
        new_marker = self._set_leaf_marker(tag)
        self._trans[tag] = address
        self._stats_storage.reads += 2
        self._stats_storage.writes += 2
        self._stats_translation.reads += 1
        self._stats_translation.writes += 1
        self._charge_tree(reads=1, writes=1 if new_marker else 0)
        self._spend_operation()
        served = ServedTag(
            tag=old_head, payload=served_payload, address=address
        )
        return served, address

    # ------------------------------------------------------------------
    # batched fast paths (the vectorized hot paths)

    def _validated_batch(self, tags: List[int]):
        """Vectorized value/window validation with gate-exact errors."""
        np = self._xp
        try:
            arr = np.asarray(tags)
        except (TypeError, ValueError, OverflowError):
            arr = None
        if arr is None or arr.ndim != 1 or arr.dtype.kind not in ("i", "u"):
            # Non-integer elements (floats, strings, oversized python
            # ints → object dtype): fall back to the scalar validator
            # for its exact per-tag message.
            for tag in tags:
                self.fmt.check_value(tag)
            arr = np.asarray([int(tag) for tag in tags], dtype=np.int64)
        else:
            arr = arr.astype(np.int64)
            out_of_range = (arr < 0) | (arr > self.fmt.max_value)
            if out_of_range.any():
                self.fmt.check_value(int(arr[int(out_of_range.argmax())]))
        return arr

    def insert_batch(
        self,
        tags: Sequence[int],
        payloads: Optional[Sequence[Any]] = None,
    ) -> List[int]:
        """Sort a whole run of tags as one set of array operations.

        Same contract as the gate batch: served order and addresses
        match inserting per-op in the given order (stable sort keeps
        FCFS among duplicates; allocation follows sorted order), all
        validation runs before any mutation, and eager-marker mode
        falls back to per-op inserts.
        """
        np = self._xp
        tags = list(tags)
        count = len(tags)
        if payloads is None:
            payload_list: Optional[List[Any]] = None
        else:
            payload_list = list(payloads)
            if len(payload_list) != count:
                raise ConfigurationError(
                    f"{count} tags but {len(payload_list)} payloads"
                )
        if count == 0:
            return []
        if self.eager_marker_removal:
            if payload_list is None:
                payload_list = [None] * count
            return [
                self.insert(tag, payload)
                for tag, payload in zip(tags, payload_list)
            ]
        arr = self._validated_batch(tags)
        if self._count + count > self.capacity:
            raise CapacityError(
                f"batch of {count} tags overflows tag storage "
                f"({self._count} of {self.capacity} in use)"
            )
        minimum = self._head_tag
        reference = minimum if minimum is not None else int(arr[0])
        if self.modular:
            keys = (arr - reference) % self._tag_space
            behind = keys >= self._half_space
            if behind.any():
                offender = int(behind.argmax())
                raise ProtocolError(
                    f"tag {int(arr[offender])} is behind the window minimum "
                    f"{reference} (wrapped distance {int(keys[offender])})"
                )
        else:
            keys = arr
            below = arr < reference
            if below.any():
                offender = int(arr[int(below.argmax())])
                raise ProtocolError(
                    f"WFQ invariant violated: tag {offender} below current "
                    f"minimum {reference} (use eager_marker_removal="
                    "True for general priority-queue workloads)"
                )

        order = np.argsort(keys, kind="stable")
        sorted_tags = arr[order]
        was_empty = self._count == 0
        if was_empty:
            self.flush_stale_markers()

        # -- allocation: init counter first, then LIFO free-stack pops --
        fresh = min(count, self.capacity - self._counter_next)
        parts = []
        if fresh:
            parts.append(
                np.arange(
                    self._counter_next,
                    self._counter_next + fresh,
                    dtype=np.int64,
                )
            )
            self._counter_next += fresh
        recycled = count - fresh
        if recycled:
            top = self._free_top
            parts.append(self._free_stack[top - recycled : top][::-1].copy())
            self._free_top = top - recycled
        addresses = parts[0] if len(parts) == 1 else np.concatenate(parts)

        # -- bucket appends, duplicates chained within sorted runs ------
        same = sorted_tags[:-1] == sorted_tags[1:]
        self._entry_next[addresses] = -1
        if same.any():
            self._entry_next[addresses[:-1][same]] = addresses[1:][same]
        starts = np.concatenate(([True], ~same))
        ends = np.concatenate((~same, [True]))
        run_tags = sorted_tags[starts]
        run_heads = addresses[starts]
        run_tails = addresses[ends]
        start_positions = np.flatnonzero(starts)
        run_lengths = np.diff(np.append(start_positions, count))
        old_tails = self._bucket_tail[run_tags]
        chained = old_tails >= 0
        if chained.any():
            self._entry_next[old_tails[chained]] = run_heads[chained]
        fresh_runs = ~chained
        if fresh_runs.any():
            self._bucket_head[run_tags[fresh_runs]] = run_heads[fresh_runs]
        self._bucket_tail[run_tags] = run_tails
        self._bucket_count[run_tags] += run_lengths
        self._entry_tag[addresses] = sorted_tags
        np.bitwise_or.at(
            self._occ,
            addresses >> 6,
            np.uint64(1) << (addresses & 63).astype(np.uint64),
        )
        if payload_list is not None and (
            payload_list.count(None) != len(payload_list)
            if type(payload_list) in (list, tuple)
            else any(value is not None for value in payload_list)
        ):
            payload_cells = self._payload
            order_list = order.tolist()
            address_list = addresses.tolist()
            stored = 0
            for position, input_index in enumerate(order_list):
                value = payload_list[input_index]
                if value is not None:
                    payload_cells[address_list[position]] = value
                    stored += 1
            self._payload_live += stored

        # -- markers + translation, folded per distinct value ------------
        leaf = self._leaf
        word_indices = run_tags >> self._literal_bits
        touched = np.unique(word_indices)
        before = int(
            popcount_array(leaf[touched], np, bits=self._branching).sum()
        )
        masks = np.left_shift(
            leaf.dtype.type(1),
            (run_tags & (self._branching - 1)).astype(leaf.dtype),
        )
        np.bitwise_or.at(leaf, word_indices, masks)
        after = int(
            popcount_array(leaf[touched], np, bits=self._branching).sum()
        )
        if after != before:
            self._tree_count += after - before
            self._upper_dirty = True
        self._trans[run_tags] = run_tails

        self._count += count
        if was_empty:
            self._head_tag = int(sorted_tags[0])

        run_count = int(run_tags.size)
        self._stats_storage.record_bulk(
            reads=count, writes=count + run_count
        )
        self._stats_translation.record_bulk(
            reads=0 if was_empty else 1, writes=run_count
        )
        leaf_stats = self._stats_tree[-1]
        leaf_stats.record_bulk(
            reads=int(touched.size), writes=int(touched.size)
        )
        for stats in self._stats_tree[:-1]:
            stats.reads += 1
        self.cycles += FIXED_OP_CYCLES * count
        self.operations += count

        out = np.empty(count, dtype=np.int64)
        out[order] = addresses
        return out.tolist()

    def dequeue_batch(self, count: int) -> List[ServedTag]:
        """Serve the ``count`` smallest tags as one set of array ops.

        Same raise-before-mutate over-ask contract as the gate batch.
        Bucket drains run as one vectorized chain-step loop whose
        iteration count is the longest duplicate run served, not the
        batch size.
        """
        if count < 0:
            raise ConfigurationError("dequeue count must be non-negative")
        if count > self._count:
            raise EmptyStructureError(
                f"dequeue_batch({count}) from a circuit holding {self._count}"
            )
        if count == 0:
            return []
        np = self._xp
        head = self._head_tag
        bucket_count = self._bucket_count
        if self.modular:
            rolled = np.roll(bucket_count, -head)
            relative = np.flatnonzero(rolled)
            live_tags = (relative + head) % self._tag_space
            live_counts = rolled[relative]
        else:
            live_tags = np.flatnonzero(bucket_count)
            live_counts = bucket_count[live_tags]
        cumulative = np.cumsum(live_counts)
        last = int(np.searchsorted(cumulative, count))
        already = int(cumulative[last - 1]) if last else 0
        take_last = count - already
        partial = take_last < int(live_counts[last])

        selected = live_tags[: last + 1]
        quotas = live_counts[: last + 1].astype(np.int64).copy()
        quotas[last] = take_last
        bases = np.concatenate(([0], np.cumsum(quotas)[:-1]))
        cursors = self._bucket_head[selected].copy()
        positions = bases.copy()
        limits = bases + quotas
        out = np.empty(count, dtype=np.int64)
        entry_next = self._entry_next
        active = np.flatnonzero(positions < limits)
        while active.size:
            current = cursors[active]
            out[positions[active]] = current
            positions[active] += 1
            cursors[active] = entry_next[current]
            active = active[positions[active] < limits[active]]

        full_tags = selected[:last] if partial else selected
        if full_tags.size:
            self._bucket_head[full_tags] = -1
            self._bucket_tail[full_tags] = -1
            self._bucket_count[full_tags] = 0
        if partial:
            partial_tag = int(selected[last])
            self._bucket_head[partial_tag] = int(cursors[last])
            self._bucket_count[partial_tag] -= take_last

        cleared = np.zeros_like(self._occ)
        np.bitwise_or.at(
            cleared, out >> 6, np.uint64(1) << (out & 63).astype(np.uint64)
        )
        self._occ &= ~cleared
        self._free_stack[self._free_top : self._free_top + count] = out
        self._free_top += count
        self._count -= count

        if self.eager_marker_removal and full_tags.size:
            leaf = self._leaf
            word_indices = full_tags >> self._literal_bits
            touched = np.unique(word_indices)
            before = int(
                popcount_array(leaf[touched], np, bits=self._branching).sum()
            )
            masks = np.left_shift(
                leaf.dtype.type(1),
                (full_tags & (self._branching - 1)).astype(leaf.dtype),
            )
            drop = np.zeros_like(leaf)
            np.bitwise_or.at(drop, word_indices, masks)
            leaf &= ~drop
            after = int(
                popcount_array(leaf[touched], np, bits=self._branching).sum()
            )
            self._tree_count -= before - after
            self._upper_dirty = True
            self._trans[full_tags] = -1
            self._stats_translation.record_bulk(
                reads=count, writes=int(full_tags.size)
            )
            leaf_writes = int(touched.size)
            self._stats_tree[-1].record_bulk(
                reads=leaf_writes, writes=leaf_writes
            )

        if self._count == 0:
            self._head_tag = None
        elif partial:
            self._head_tag = int(selected[last])
        else:
            self._advance_head(int(selected[last]))

        tag_list = self._entry_tag[out].tolist()
        address_list = out.tolist()
        if self._payload_live:
            payload_cells = self._payload
            payload_list: List[Any] = []
            append_payload = payload_list.append
            cleared = 0
            for address in address_list:
                value = payload_cells[address]
                append_payload(value)
                if value is not None:
                    payload_cells[address] = None
                    cleared += 1
            self._payload_live -= cleared
        else:
            payload_list = [None] * count
        served: List[ServedTag] = list(
            map(
                _TUPLE_NEW,
                repeat(ServedTag),
                zip(tag_list, payload_list, address_list),
            )
        )

        self._stats_storage.record_bulk(reads=count, writes=count)
        self.cycles += FIXED_OP_CYCLES * count
        self.operations += count
        return served

    _MIXED_KINDS = frozenset(("insert", "dequeue", "remove", "retag"))

    def run_mixed(self, operations: Iterable[Tuple]) -> List[ServedTag]:
        """Execute a mixed op stream, coalescing runs into batch calls.

        Identical contract to the gate engine: the stream is validated
        for known kinds before anything executes, consecutive inserts
        and dequeues collapse into one array op each, and dynamic
        updates flush pending batches so stream order is preserved.
        """
        ops = [tuple(operation) for operation in operations]
        for operation in ops:
            if not operation or operation[0] not in self._MIXED_KINDS:
                kind = operation[0] if operation else None
                raise ConfigurationError(
                    f"unknown mixed operation kind {kind!r}"
                )
        served: List[ServedTag] = []
        pending_inserts: List[Tuple[int, Any]] = []
        pending_dequeues = 0

        def flush() -> None:
            nonlocal pending_inserts, pending_dequeues
            if pending_inserts:
                self.insert_batch(
                    [tag for tag, _ in pending_inserts],
                    [payload for _, payload in pending_inserts],
                )
                pending_inserts = []
            if pending_dequeues:
                served.extend(self.dequeue_batch(pending_dequeues))
                pending_dequeues = 0

        for operation in ops:
            kind = operation[0]
            if kind == "insert":
                if pending_dequeues:
                    served.extend(self.dequeue_batch(pending_dequeues))
                    pending_dequeues = 0
                payload = operation[2] if len(operation) > 2 else None
                pending_inserts.append((operation[1], payload))
            elif kind == "dequeue":
                if pending_inserts:
                    self.insert_batch(
                        [tag for tag, _ in pending_inserts],
                        [payload for _, payload in pending_inserts],
                    )
                    pending_inserts = []
                pending_dequeues += 1
            elif kind == "remove":
                flush()
                self.remove(operation[1])
            else:  # retag
                flush()
                self.retag(operation[1], operation[2])
        flush()
        return served

    # ------------------------------------------------------------------
    # dynamic updates (remove-by-handle, retag)

    def is_live_handle(self, handle: int) -> bool:
        """Whether ``handle`` names a live (not yet retired) entry."""
        try:
            handle = _as_index(handle)
        except TypeError:
            return False
        return 0 <= handle < self.capacity and self._is_live(handle)

    def handle_tag(self, handle: int) -> Optional[int]:
        """The tag a live handle was issued for (None when stale)."""
        if not self.is_live_handle(handle):
            return None
        return int(self._entry_tag[handle])

    def handle_payload(self, handle: int) -> Any:
        """A live handle's payload (debug peek, no access accounting)."""
        if not self.is_live_handle(handle):
            raise ProtocolError(
                f"handle {handle} does not name a live entry"
            )
        return self._payload[handle]

    def remove(self, handle: int) -> ServedTag:
        """Unlink the live entry at ``handle``, wherever it sits."""
        return self._remove_core(handle)

    def retag(self, handle: int, new_tag: int) -> int:
        """Move the live entry at ``handle`` to ``new_tag`` (repin)."""
        self._validate_retag(handle, new_tag)
        removed = self._remove_core(handle)
        return VectorSortRetrieveCircuit.insert(
            self, new_tag, removed.payload
        )

    def _validate_retag(self, handle: int, new_tag: int) -> None:
        if not self.is_live_handle(handle):
            raise ProtocolError(
                f"handle {handle} does not name a live entry"
            )
        self.fmt.check_value(new_tag)
        if not self.eager_marker_removal:
            minimum = self._head_tag
            if minimum is not None and handle == int(
                self._bucket_head[minimum]
            ):
                # Removing the head promotes its successor.
                next_address = int(self._entry_next[handle])
                if next_address >= 0:
                    minimum = int(self._entry_tag[next_address])
                elif self._count > 1:
                    start = minimum + 1
                    if self.modular:
                        start %= self._tag_space
                    minimum = self._next_live_tag(start)
                else:
                    minimum = None
            self._check_monotone_against(new_tag, minimum)

    def _remove_core(self, handle: int) -> ServedTag:
        if not self.is_live_handle(handle):
            raise ProtocolError(
                f"handle {handle} does not name a live entry"
            )
        handle = _as_index(handle)
        tag = int(self._entry_tag[handle])
        extra_cycles = 0
        predecessor: Optional[int] = None
        head_address = self._head_address()
        if handle == head_address:
            # Head removal: exactly a dequeue's mechanics.
            next_address = int(self._entry_next[handle])
            self._bucket_head[tag] = next_address
            if next_address < 0:
                self._bucket_tail[tag] = -1
            self._stats_storage.reads += 1
            self._stats_storage.writes += 1
        else:
            bucket_head = int(self._bucket_head[tag])
            if bucket_head == handle:
                # Leads its duplicate run but is not the global head:
                # the anchor is the previous value's newest link.
                self._bucket_head[tag] = int(self._entry_next[handle])
                if int(self._bucket_tail[tag]) == handle:
                    self._bucket_tail[tag] = -1
                self._charge_tree(reads=1)
                self._stats_storage.reads += 2
                self._stats_storage.writes += 2
            else:
                previous = bucket_head
                steps = 0
                while True:
                    following = int(self._entry_next[previous])
                    if following == handle:
                        break
                    previous = following
                    steps += 1
                self._entry_next[previous] = self._entry_next[handle]
                if int(self._bucket_tail[tag]) == handle:
                    self._bucket_tail[tag] = previous
                predecessor = previous
                extra_cycles = steps
                if tag != self._head_tag:
                    self._charge_tree(reads=1)
                self._stats_storage.reads += steps + 2
                self._stats_storage.writes += 2
        payload = self._payload[handle]
        if payload is not None:
            self._payload[handle] = None
            self._payload_live -= 1
        self._bucket_count[tag] -= 1
        self._release(handle)
        self._count -= 1
        # Translation/marker maintenance is eager in both marker modes
        # (an arbitrary removal can leave a stale marker above the
        # minimum, where a search would find it) — same rule as gate.
        self._stats_translation.reads += 1
        if int(self._trans[tag]) == handle:
            if predecessor is not None:
                self._trans[tag] = predecessor
            else:
                self._trans[tag] = -1
                self._clear_leaf_marker(tag)
                self._charge_tree(reads=1, writes=1)
            self._stats_translation.writes += 1
        if handle == head_address and int(self._bucket_count[tag]) == 0:
            self._advance_head(tag)
        self.cycles += FIXED_OP_CYCLES + extra_cycles
        self.operations += 1
        return ServedTag(tag=tag, payload=payload, address=handle)

    # ------------------------------------------------------------------
    # stale-section maintenance (Fig. 6)

    def flush_stale_markers(self) -> None:
        """Initialization-mode reset: wipe last busy period's markers."""
        if self._count:
            raise ProtocolError(
                f"cannot flush markers with {self._count} live "
                "tags in storage"
            )
        if not self.eager_marker_removal and self._tree_count:
            self._clear_tree()

    def clear_stale_section(self, root_literal: int) -> int:
        """Bulk-delete the markers of one vacated section of tag space."""
        if not 0 <= root_literal < self._branching:
            raise ConfigurationError(
                f"root literal {root_literal} outside "
                f"[0, {self._branching})"
            )
        low = root_literal << self._section_bits
        high = low + (1 << self._section_bits) - 1
        live = int(self._bucket_count[low : high + 1].sum())
        if live:
            segment = self._bucket_count[low : high + 1]
            offender = low + int((segment > 0).argmax())
            raise ProtocolError(
                f"section {root_literal} still holds {live} live "
                f"tags (e.g. {offender}); cannot clear"
            )
        np = self._xp
        first_word = low >> self._literal_bits
        last_word = high >> self._literal_bits
        if first_word == last_word:
            mask = ((1 << (high - low + 1)) - 1) << (
                low & (self._branching - 1)
            )
            word = int(self._leaf[first_word])
            purged = popcount_word(word & mask)
            self._leaf[first_word] = word & ~mask
            self._stats_tree[-1].writes += 1
        else:
            segment = self._leaf[first_word : last_word + 1]
            purged = int(
                popcount_array(segment, np, bits=self._branching).sum()
            )
            segment[:] = 0
            self._stats_tree[-1].writes += int(segment.size)
        if purged:
            self._tree_count -= purged
            self._upper_dirty = True
        return purged

    # ------------------------------------------------------------------
    # walk / checkpoint / restore (gate-shaped interchange format)

    def walk(self) -> List[Tuple[int, int]]:
        """Every live ``(tag, address)`` in service order (peek-only)."""
        head = self._head_tag
        if head is None:
            return []
        np = self._xp
        bucket_count = self._bucket_count
        if self.modular:
            relative = np.flatnonzero(np.roll(bucket_count, -head))
            tag_order = ((relative + head) % self._tag_space).tolist()
        else:
            tag_order = np.flatnonzero(bucket_count).tolist()
        entry_next = self._entry_next
        out: List[Tuple[int, int]] = []
        for tag in tag_order:
            address = int(self._bucket_head[tag])
            while address >= 0:
                out.append((tag, address))
                address = int(entry_next[address])
        return out

    def to_state(self) -> dict:
        """Exact gate-shaped snapshot (any engine restores it)."""
        np = self._xp
        self._rebuild_upper()
        walked = self.walk()
        cells: List[Optional[list]] = [None] * self.capacity
        total = len(walked)
        for position, (tag, address) in enumerate(walked):
            if position + 1 < total:
                next_tag, next_address = walked[position + 1]
            else:
                next_tag = next_address = None
            cells[address] = [tag, next_address, next_tag, self._payload[address]]
        for position in range(self._free_top):
            address = int(self._free_stack[position])
            next_free = (
                int(self._free_stack[position - 1]) if position else None
            )
            cells[address] = [-1, next_free, None, None]
        live = np.flatnonzero(self._bucket_count)
        if self._fast_mode:
            live_tags: List[Tuple[int, int]] = []
        else:
            live_tags = [
                (int(tag), int(self._bucket_count[tag])) for tag in live
            ]
        handle_bits = np.unpackbits(
            self._occ.view(np.uint8), bitorder="little"
        )[: self.capacity]
        handles = [
            (int(address), int(self._entry_tag[address]))
            for address in np.flatnonzero(handle_bits)
        ]
        section_live = (
            self._bucket_count.reshape(self._branching, -1)
            .sum(axis=1)
            .tolist()
        )
        return {
            "kind": "sort_retrieve_circuit",
            "config": self.describe(),
            "cycles": self.cycles,
            "operations": self.operations,
            "live_tags": live_tags,
            "handles": handles,
            "section_live": section_live,
            "tree": {
                "kind": "multi_bit_tree",
                "levels": self.fmt.levels,
                "literal_bits": self.fmt.literal_bits,
                "nodes": [level.tolist() for level in self._levels_arr],
                "count": self._tree_count,
                "stats": [stats.to_dict() for stats in self._stats_tree],
            },
            "translation": {
                "kind": "translation_table",
                "levels": self.fmt.levels,
                "literal_bits": self.fmt.literal_bits,
                "address_bits": 24,
                "cells": [
                    int(address) if address >= 0 else None
                    for address in self._trans.tolist()
                ],
                "stats": self._stats_translation.to_dict(),
            },
            "storage": {
                "kind": "tag_storage",
                "capacity": self.capacity,
                "modular": self.modular,
                "word_bits": 64,
                "cells": cells,
                "init_counter": self._counter_next,
                "empty_head": (
                    int(self._free_stack[self._free_top - 1])
                    if self._free_top
                    else None
                ),
                "head_address": walked[0][1] if walked else None,
                "head_tag": walked[0][0] if walked else None,
                "count": self._count,
                "stats": self._stats_storage.to_dict(),
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore a gate- or vector-produced snapshot into this engine."""
        if state.get("kind") != "sort_retrieve_circuit":
            raise ConfigurationError(
                f"not a circuit snapshot: kind={state.get('kind')!r}"
            )
        snapshot_config = dict(state["config"])
        mine = self.describe()
        snapshot_config.pop("turbo", None)
        mine.pop("turbo", None)
        if snapshot_config != mine:
            raise ConfigurationError(
                f"snapshot config {state['config']} does not match this "
                f"circuit's {self.describe()}"
            )
        storage = state["storage"]
        if storage.get("kind") != "tag_storage":
            raise ConfigurationError(
                f"not a tag storage snapshot: kind={storage.get('kind')!r}"
            )
        if storage["capacity"] != self.capacity:
            raise ConfigurationError(
                f"snapshot capacity {storage['capacity']} != {self.capacity}"
            )
        cells = storage["cells"]
        self._bucket_head.fill(-1)
        self._bucket_tail.fill(-1)
        self._bucket_count.fill(0)
        self._entry_next.fill(-1)
        self._entry_tag.fill(-1)
        self._payload = [None] * self.capacity
        self._payload_live = 0
        self._occ.fill(0)
        address = storage["head_address"]
        walked = 0
        while address is not None:
            tag, next_address, _, payload = cells[address]
            self._append_entry(tag, int(address), payload)
            address = next_address
            walked += 1
        self._count = walked
        if walked != storage["count"]:
            raise ConfigurationError(
                f"snapshot walk found {walked} live links, header says "
                f"{storage['count']}"
            )
        chain: List[int] = []
        free = storage["empty_head"]
        while free is not None:
            chain.append(int(free))
            free = cells[free][1]
        self._free_top = len(chain)
        if chain:
            self._free_stack[: len(chain)] = chain[::-1]
        self._counter_next = storage["init_counter"]
        self._head_tag = storage["head_tag"]
        self._stats_storage.reads = storage["stats"]["reads"]
        self._stats_storage.writes = storage["stats"]["writes"]

        tree = state["tree"]
        if tree.get("kind") != "multi_bit_tree":
            raise ConfigurationError(
                f"not a tree snapshot: kind={tree.get('kind')!r}"
            )
        for level, nodes in zip(self._levels_arr, tree["nodes"]):
            if len(nodes) != level.size:
                raise ConfigurationError(
                    f"tree snapshot level holds {len(nodes)} nodes, "
                    f"array holds {level.size}"
                )
            level[:] = nodes
        self._tree_count = tree["count"]
        self._upper_dirty = False
        for stats, snapshot in zip(self._stats_tree, tree["stats"]):
            stats.reads = snapshot["reads"]
            stats.writes = snapshot["writes"]

        translation = state["translation"]
        if translation.get("kind") != "translation_table":
            raise ConfigurationError(
                f"not a translation snapshot: "
                f"kind={translation.get('kind')!r}"
            )
        self._trans[:] = [
            -1 if cell is None else int(cell)
            for cell in translation["cells"]
        ]
        self._stats_translation.reads = translation["stats"]["reads"]
        self._stats_translation.writes = translation["stats"]["writes"]

        self.cycles = state["cycles"]
        self.operations = state["operations"]

    @classmethod
    def from_state(cls, state: dict, *, tracer=None) -> "VectorSortRetrieveCircuit":
        """Reconstruct a vector engine from any engine's snapshot."""
        config = state["config"]
        fmt = WordFormat(
            levels=config["levels"], literal_bits=config["literal_bits"]
        )
        circuit = cls(
            fmt,
            capacity=config["capacity"],
            eager_marker_removal=config["eager_marker_removal"],
            modular=config["modular"],
            fast_mode=config["fast_mode"],
        )
        circuit.load_state(state)
        if tracer is not None:
            circuit.attach_tracer(tracer)
        return circuit

    # ------------------------------------------------------------------
    # telemetry (same attach/detach shadowing scheme as gate)

    def attach_tracer(self, tracer) -> None:
        """Start emitting gate-shaped telemetry events to ``tracer``."""
        if tracer is None or not getattr(tracer, "enabled", False):
            self.detach_tracer()
            return
        self.tracer = tracer
        self.insert = self._traced_insert
        self.dequeue_min = self._traced_dequeue_min
        self.insert_and_dequeue = self._traced_insert_and_dequeue
        self.insert_batch = self._traced_insert_batch
        self.dequeue_batch = self._traced_dequeue_batch
        self.remove = self._traced_remove
        self.retag = self._traced_retag
        self.clear_stale_section = self._traced_clear_stale_section
        self.flush_stale_markers = self._traced_flush_stale_markers

    def detach_tracer(self) -> None:
        """Stop tracing and restore the uninstrumented hot paths."""
        self.tracer = NULL_TRACER
        for name in (
            "insert",
            "dequeue_min",
            "insert_and_dequeue",
            "insert_batch",
            "dequeue_batch",
            "remove",
            "retag",
            "clear_stale_section",
            "flush_stale_markers",
        ):
            self.__dict__.pop(name, None)

    def _op_attrs(self) -> dict:
        return {
            "cycles": FIXED_OP_CYCLES,
            "occupancy": self._count,
            "free_list_depth": self._free_top,
        }

    def _traced_insert(self, tag: int, payload: Any = None) -> int:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        try:
            address = VectorSortRetrieveCircuit.insert(self, tag, payload)
        except BaseException as error:
            tracer.event(
                "insert",
                deltas=self.registry.deltas_since(before),
                tag=tag,
                failed=True,
                error=type(error).__name__,
            )
            raise
        fault = self.fault_injection
        if fault is not None:
            fault._after_insert(self)
        tracer.event(
            "insert",
            deltas=self.registry.deltas_since(before),
            tag=tag,
            address=address,
            used_backup=False,
            **self._op_attrs(),
        )
        return address

    def _traced_dequeue_min(self) -> ServedTag:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        try:
            served = VectorSortRetrieveCircuit.dequeue_min(self)
        except BaseException as error:
            tracer.event(
                "dequeue",
                deltas=self.registry.deltas_since(before),
                failed=True,
                error=type(error).__name__,
            )
            raise
        fault = self.fault_injection
        if fault is not None:
            fault._after_dequeue(self)
        tracer.event(
            "dequeue",
            deltas=self.registry.deltas_since(before),
            tag=(
                served.tag
                if fault is None
                else fault._reported_tag(self, served.tag)
            ),
            address=served.address,
            **self._op_attrs(),
        )
        return served

    def _traced_insert_and_dequeue(
        self, tag: int, payload: Any = None
    ) -> Tuple[ServedTag, int]:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        try:
            served, address = VectorSortRetrieveCircuit.insert_and_dequeue(
                self, tag, payload
            )
        except BaseException as error:
            tracer.event(
                "insert_dequeue",
                deltas=self.registry.deltas_since(before),
                tag=tag,
                failed=True,
                error=type(error).__name__,
            )
            raise
        fault = self.fault_injection
        if fault is not None:
            fault._after_insert(self)
        tracer.event(
            "insert_dequeue",
            deltas=self.registry.deltas_since(before),
            tag=tag,
            address=address,
            served_tag=(
                served.tag
                if fault is None
                else fault._reported_tag(self, served.tag)
            ),
            served_address=served.address,
            used_backup=False,
            **self._op_attrs(),
        )
        return served, address

    def _traced_insert_batch(
        self,
        tags: Sequence[int],
        payloads: Optional[Sequence[Any]] = None,
    ) -> List[int]:
        tags = list(tags)
        if self.eager_marker_removal:
            # Falls back to per-op inserts, whose traced wrappers emit
            # one event each.
            return VectorSortRetrieveCircuit.insert_batch(
                self, tags, payloads
            )
        tracer = self.tracer
        start = self._count
        with tracer.span(
            "insert_batch", registry=self.registry, count=len(tags)
        ):
            addresses = VectorSortRetrieveCircuit.insert_batch(
                self, tags, payloads
            )
            fault = self.fault_injection
            if fault is not None:
                fault._after_insert(self, count=len(tags))
            for position, (tag, address) in enumerate(zip(tags, addresses)):
                tracer.event(
                    "insert",
                    tag=tag,
                    address=address,
                    cycles=FIXED_OP_CYCLES,
                    occupancy=start + position + 1,
                    used_backup=False,
                    batched=True,
                )
        return addresses

    def _traced_dequeue_batch(self, count: int) -> List[ServedTag]:
        tracer = self.tracer
        start = self._count
        with tracer.span(
            "dequeue_batch", registry=self.registry, count=count
        ):
            served = VectorSortRetrieveCircuit.dequeue_batch(self, count)
            fault = self.fault_injection
            if fault is not None:
                fault._after_dequeue(self, count=count)
            for position, entry in enumerate(served):
                tracer.event(
                    "dequeue",
                    tag=(
                        entry.tag
                        if fault is None
                        else fault._reported_tag(self, entry.tag)
                    ),
                    address=entry.address,
                    cycles=FIXED_OP_CYCLES,
                    occupancy=start - position - 1,
                    batched=True,
                )
        return served

    def _traced_remove(self, handle: int) -> ServedTag:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        cycles_before = self.cycles
        was_head = handle == self._head_address()
        try:
            removed = self._remove_core(handle)
        except BaseException as error:
            tracer.event(
                "remove",
                deltas=self.registry.deltas_since(before),
                address=handle,
                failed=True,
                error=type(error).__name__,
            )
            raise
        fault = self.fault_injection
        if fault is not None:
            fault._after_remove(self)
        tracer.event(
            "remove",
            deltas=self.registry.deltas_since(before),
            tag=removed.tag,
            address=(
                handle if fault is None else fault._reported_handle(handle)
            ),
            head=was_head,
            cycles=self.cycles - cycles_before,
            occupancy=self._count,
            free_list_depth=self._free_top,
        )
        return removed

    def _traced_retag(self, handle: int, new_tag: int) -> int:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        cycles_before = self.cycles
        old_tag = self.handle_tag(handle)
        try:
            address = VectorSortRetrieveCircuit.retag(self, handle, new_tag)
        except BaseException as error:
            tracer.event(
                "retag",
                deltas=self.registry.deltas_since(before),
                address=handle,
                new_tag=new_tag,
                failed=True,
                error=type(error).__name__,
            )
            raise
        fault = self.fault_injection
        if fault is not None:
            fault._after_remove(self)
        tracer.event(
            "retag",
            deltas=self.registry.deltas_since(before),
            tag=old_tag,
            new_tag=new_tag,
            address=(
                handle if fault is None else fault._reported_handle(handle)
            ),
            new_address=address,
            cycles=self.cycles - cycles_before,
            occupancy=self._count,
            free_list_depth=self._free_top,
        )
        return address

    def _traced_clear_stale_section(self, root_literal: int) -> int:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        try:
            purged = VectorSortRetrieveCircuit.clear_stale_section(
                self, root_literal
            )
        except BaseException as error:
            tracer.event(
                "section_clear",
                deltas=self.registry.deltas_since(before),
                root_literal=root_literal,
                failed=True,
                error=type(error).__name__,
            )
            raise
        tracer.event(
            "section_clear",
            deltas=self.registry.deltas_since(before),
            root_literal=root_literal,
            purged=purged,
        )
        return purged

    def _traced_flush_stale_markers(self) -> None:
        tracer = self.tracer
        before = self.registry.snapshot_all()
        VectorSortRetrieveCircuit.flush_stale_markers(self)
        tracer.event(
            "marker_flush", deltas=self.registry.deltas_since(before)
        )

    # ------------------------------------------------------------------
    # verification

    def check_invariants(self) -> None:
        """Deep-verify the array state against first principles."""
        np = self._xp
        if int(self._bucket_count.sum()) != self._count:
            raise ProtocolError(
                f"bucket counts sum to {int(self._bucket_count.sum())}, "
                f"count register says {self._count}"
            )
        walked = self.walk()
        if len(walked) != self._count:
            raise ProtocolError(
                f"walk found {len(walked)} entries, count register says "
                f"{self._count}"
            )
        live_addresses = {address for _, address in walked}
        if len(live_addresses) != len(walked):
            raise ProtocolError("storage chain visits an address twice")
        occupancy_bits = np.unpackbits(
            self._occ.view(np.uint8), bitorder="little"
        )[: self.capacity]
        occupied = set(np.flatnonzero(occupancy_bits).tolist())
        if occupied != live_addresses:
            raise ProtocolError(
                f"occupancy bitmap tracks {len(occupied)} slots, walk "
                f"found {len(live_addresses)}"
            )
        free = self._free_stack[: self._free_top].tolist()
        if len(set(free)) != len(free):
            raise ProtocolError("free stack holds a duplicate address")
        if occupied & set(free):
            raise ProtocolError("free stack holds a live address")
        live_payloads = sum(
            1 for value in self._payload if value is not None
        )
        if live_payloads != self._payload_live:
            raise ProtocolError(
                f"payload-live counter says {self._payload_live}, "
                f"{live_payloads} cells hold a payload"
            )
        if self._free_top + (self.capacity - self._counter_next) + self._count != self.capacity:
            raise ProtocolError(
                f"slot accounting broken: {self._free_top} free + "
                f"{self.capacity - self._counter_next} unissued + "
                f"{self._count} live != {self.capacity}"
            )
        if walked:
            if self._head_tag != walked[0][0]:
                raise ProtocolError(
                    f"head register {self._head_tag} != first walked tag "
                    f"{walked[0][0]}"
                )
        elif self._head_tag is not None:
            raise ProtocolError(
                f"head register {self._head_tag} set on an empty circuit"
            )
        for tag, address in walked:
            if int(self._entry_tag[address]) != tag:
                raise ProtocolError(
                    f"entry {address} tagged "
                    f"{int(self._entry_tag[address])}, walk says {tag}"
                )
        self._rebuild_upper()
        marked = set()
        for word_index in np.flatnonzero(self._leaf).tolist():
            word = int(self._leaf[word_index])
            base = word_index << self._literal_bits
            for bit in range(self._branching):
                if (word >> bit) & 1:
                    marked.add(base + bit)
        if len(marked) != self._tree_count:
            raise ProtocolError(
                f"marker count {self._tree_count} != marked bits "
                f"{len(marked)}"
            )
        stored_values = {tag for tag, _ in walked}
        for value in stored_values:
            if value not in marked:
                raise ProtocolError(f"live tag {value} lost its tree marker")
        if self.eager_marker_removal:
            for value in marked:
                if value not in stored_values:
                    raise ProtocolError(
                        f"eager mode left a stale marker for {value}"
                    )
        # Upper levels must agree with the leaf words.
        b = self._branching
        for level in range(len(self._levels_arr) - 1):
            parent = self._levels_arr[level]
            child = self._levels_arr[level + 1]
            expected = (child.reshape(parent.size, b) != 0)
            for node_index in range(parent.size):
                word = int(parent[node_index])
                for bit in range(b):
                    if bool((word >> bit) & 1) != bool(
                        expected[node_index, bit]
                    ):
                        raise ProtocolError(
                            f"tree level {level} node {node_index} bit "
                            f"{bit} disagrees with its child word"
                        )
        newest = {}
        for tag, address in walked:
            newest[tag] = address
        for value, address in newest.items():
            recorded = int(self._trans[value])
            if recorded != address:
                raise ProtocolError(
                    f"translation entry for {value} points at {recorded}, "
                    f"newest duplicate is at {address}"
                )


class VectorPlane:
    """Stacks many vector circuits' tree levels into shared matrices.

    The fabric adopts its shards' circuits into one plane; the lazy
    upper-level rebuild then runs as **one** reshape-and-pack array op
    per level across all shards (``(shards, words)`` matrices), so a
    checkpoint or invariant sweep over N shards costs the same number
    of array dispatches as one.
    """

    def __init__(self) -> None:
        self._circuits: List[VectorSortRetrieveCircuit] = []
        self._stacks: List[Any] = []

    @property
    def circuits(self) -> List[VectorSortRetrieveCircuit]:
        return list(self._circuits)

    def adopt(self, circuits: Sequence[VectorSortRetrieveCircuit]) -> None:
        """Re-home the circuits' level arrays as rows of shared stacks."""
        circuits = list(circuits)
        if not circuits:
            return
        if self._circuits:
            raise ConfigurationError("plane already adopted a shard set")
        fmt = circuits[0].fmt
        np = circuits[0]._xp
        for circuit in circuits:
            if not isinstance(circuit, VectorSortRetrieveCircuit):
                raise ConfigurationError(
                    "VectorPlane can only adopt vector-engine circuits"
                )
            if circuit.fmt != fmt:
                raise ConfigurationError(
                    "adopted circuits must share one word format"
                )
            if circuit._plane is not None:
                raise ConfigurationError(
                    "circuit already belongs to a plane"
                )
        rows = len(circuits)
        for level in range(fmt.levels):
            template = circuits[0]._levels_arr[level]
            stack = np.zeros((rows, template.size), dtype=template.dtype)
            for row, circuit in enumerate(circuits):
                stack[row] = circuit._levels_arr[level]
                circuit._levels_arr[level] = stack[row]
            self._stacks.append(stack)
        for circuit in circuits:
            circuit._leaf = circuit._levels_arr[-1]
            circuit._plane = self
        self._circuits = circuits

    def rebuild(self) -> None:
        """One stacked array op per level advances every shard at once."""
        if not self._circuits:
            return
        if not any(circuit._upper_dirty for circuit in self._circuits):
            return
        np = self._circuits[0]._xp
        b = self._circuits[0]._branching
        weights = (np.uint64(1) << np.arange(b, dtype=np.uint64))
        rows = len(self._circuits)
        for level in range(len(self._stacks) - 1, 0, -1):
            child = self._stacks[level]
            parent = self._stacks[level - 1]
            present = (
                child.reshape(rows, parent.shape[1], b) != 0
            ).astype(np.uint64)
            parent[:, :] = (present * weights).sum(axis=2).astype(
                parent.dtype
            )
        for circuit in self._circuits:
            circuit._upper_dirty = False

    # The fabric calls this around its batch windows / checkpoints.
    sync = rebuild
