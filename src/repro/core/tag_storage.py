"""The tag storage memory: a linked list in flat SRAM (Section III-C).

Every *link* stores a tag value, a pointer to the next-larger link, and a
payload (the packet-buffer pointer of Fig. 1).  Links are kept sorted by
tag value, so the head of the list is always the smallest tag — the next
packet to serve — and service is a fixed-cost head removal, never a
search.

Free-space management follows Fig. 10: an initialization counter hands
out addresses 0..M-1 first; links freed by service join an *empty list*
threaded through the same memory, and once the counter is exhausted all
allocations pop the empty list.

Two fidelity notes relative to the paper's prose:

* Each link also carries the *tag of its successor* (``next_tag``).  This
  costs no extra memory accesses (the successor tag is always in hand
  when a link is written) and lets a head removal learn the new minimum
  tag from the single read of the departing link — which is how the
  combined insert+dequeue fits the four-access budget of Fig. 9.
* The paper frees a link by "leaving the link and its pointer unchanged",
  relying on stale pointers to thread the empty list.  That shortcut is
  only sound if no insertion ever lands between a served tag and its
  successor before the successor is itself served; since WFQ permits such
  insertions, this implementation writes the freed link onto the empty
  list explicitly (one write, inside the same four-cycle budget).

Insert cost is exactly the Fig. 9 sequence — two reads and two writes —
and the simultaneous insert+dequeue of Section III-C reuses the departing
head's slot within the same four accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..hwsim.counters import SaturatingCounter
from ..hwsim.errors import (
    CapacityError,
    ConfigurationError,
    EmptyStructureError,
    HardwareSimulationError,
)
from ..hwsim.memory import SinglePortSRAM
from ..hwsim.stats import AccessStats

#: The fixed clock budget of one storage operation (2 reads + 2 writes).
CYCLES_PER_OPERATION = 4


class StorageCorruptionError(HardwareSimulationError):
    """The linked-list structure lost consistency (a simulator bug)."""


@dataclass
class Link:
    """One linked-list entry in the tag storage memory."""

    tag: int
    next_address: Optional[int]
    next_tag: Optional[int]
    payload: Any = None


class TagStorageMemory:
    """Sorted linked list of tags with an empty list and init counter.

    With ``modular=True`` the list is sorted in *logical* (wrapped) tag
    order rather than raw order: raw values may wrap once within the live
    window (Fig. 6's cyclical tag space), so the raw-order assertions are
    relaxed to "at most one descent along the list".  The caller (the
    sort/retrieve circuit) is responsible for computing wrap-correct
    predecessors.
    """

    def __init__(
        self, capacity: int, *, word_bits: int = 64, modular: bool = False
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be at least 1")
        self.capacity = capacity
        self.modular = modular
        self._memory = SinglePortSRAM(
            capacity,
            name="tag_storage",
            word_bits=word_bits,
            enforce_port=False,
        )
        self._init_counter = SaturatingCounter(capacity)
        self._empty_head: Optional[int] = None
        self._head_address: Optional[int] = None
        self._head_tag: Optional[int] = None
        self._count = 0

    # ------------------------------------------------------------------
    # registers and accounting

    @property
    def stats(self) -> AccessStats:
        """Access counters of the storage SRAM."""
        return self._memory.stats

    @property
    def count(self) -> int:
        """Live tags currently stored."""
        return self._count

    @property
    def is_empty(self) -> bool:
        """True when no tags are stored."""
        return self._count == 0

    @property
    def is_full(self) -> bool:
        """True when every memory location holds a live tag."""
        return self._count == self.capacity

    @property
    def head_address(self) -> Optional[int]:
        """Physical address of the smallest tag (a register in hardware)."""
        return self._head_address

    @property
    def min_tag(self) -> Optional[int]:
        """The smallest stored tag (register; zero-cost to read)."""
        return self._head_tag

    @property
    def allocations_remaining_in_counter(self) -> int:
        """Fresh addresses the init counter can still hand out (Fig. 10)."""
        return self.capacity - self._init_counter.value

    def peek_head(self) -> Optional[Tuple[int, Any, int]]:
        """The head link's ``(tag, payload, address)``, at zero cost.

        Hardware latches the full head link in registers whenever a link
        becomes the head (it was read by the very operation that promoted
        it), so observing the head costs no memory access and no port.
        Returns None when the memory is empty.
        """
        if self._head_address is None:
            return None
        link = self._memory.peek(self._head_address)
        return link.tag, link.payload, self._head_address

    # ------------------------------------------------------------------
    # free-space management (Fig. 10)

    def _allocate(self) -> int:
        """Next free address: init counter first, then the empty list."""
        if self._count >= self.capacity:
            raise CapacityError(
                f"tag storage full ({self.capacity} links in use)"
            )
        if not self._init_counter.saturated:
            return self._init_counter.take()
        if self._empty_head is None:
            raise StorageCorruptionError(
                "counter exhausted and empty list empty, but count < capacity"
            )
        address = self._empty_head
        link = self._memory.read(address)
        self._empty_head = link.next_address
        return address

    def _free(self, address: int, *, reuse: bool = False) -> None:
        """Return ``address`` to the empty list (skipped when reused)."""
        if reuse:
            return
        self._memory.write(
            address,
            Link(tag=-1, next_address=self._empty_head, next_tag=None),
        )
        self._empty_head = address

    def empty_list_addresses(self) -> List[int]:
        """Walk the empty list (debug view matching Fig. 10)."""
        addresses = []
        cursor = self._empty_head
        while cursor is not None:
            addresses.append(cursor)
            link = self._memory.peek(cursor)
            cursor = link.next_address
            if len(addresses) > self.capacity:
                raise StorageCorruptionError("empty list contains a cycle")
        return addresses

    # ------------------------------------------------------------------
    # insertion (Fig. 9)

    def insert_first(self, tag: int, payload: Any = None) -> int:
        """Insert into an empty memory (initialization mode)."""
        if not self.is_empty:
            raise ConfigurationError("insert_first requires an empty memory")
        address = self._allocate()
        self._memory.write(
            address, Link(tag=tag, next_address=None, next_tag=None, payload=payload)
        )
        self._head_address = address
        self._head_tag = tag
        self._count += 1
        return address

    def insert_at_head(self, tag: int, payload: Any = None) -> int:
        """Insert a tag smaller than (or equal to) the current minimum.

        Not needed under WFQ (new tags are never below the current
        minimum) but required for general priority-queue use.
        """
        if self.is_empty:
            return self.insert_first(tag, payload)
        if self._head_tag is not None and tag > self._head_tag:
            raise ConfigurationError(
                f"insert_at_head: tag {tag} exceeds current minimum "
                f"{self._head_tag}"
            )
        address = self._allocate()
        self._memory.write(
            address,
            Link(
                tag=tag,
                next_address=self._head_address,
                next_tag=self._head_tag,
                payload=payload,
            ),
        )
        self._head_address = address
        self._head_tag = tag
        self._count += 1
        return address

    def insert_after(
        self, predecessor_address: int, tag: int, payload: Any = None
    ) -> int:
        """The Fig. 9 insert: link ``tag`` directly after a predecessor.

        The four accesses are (1) read a free location, (2) read the
        predecessor, (3) write the predecessor with a pointer to the new
        link, (4) write the new link pointing at the predecessor's old
        successor.
        """
        address = self._allocate()  # access 1 (a read when from empty list)
        predecessor = self._memory.read(predecessor_address)  # access 2
        if predecessor.tag > tag and not self.modular:
            raise ConfigurationError(
                f"sorted-order violation: inserting {tag} after "
                f"{predecessor.tag}"
            )
        new_link = Link(
            tag=tag,
            next_address=predecessor.next_address,
            next_tag=predecessor.next_tag,
            payload=payload,
        )
        self._memory.write(  # access 3
            predecessor_address,
            Link(
                tag=predecessor.tag,
                next_address=address,
                next_tag=tag,
                payload=predecessor.payload,
            ),
        )
        self._memory.write(address, new_link)  # access 4
        self._count += 1
        return address

    def insert_monotone_batch(
        self,
        entries: List[Tuple[int, Any]],
        predecessor_address: Optional[int],
        *,
        key=None,
    ) -> List[int]:
        """Insert a nondecreasing run of ``(tag, payload)`` links.

        The amortized fast path: instead of one search per link, the
        caller supplies the predecessor of the *first* entry (one tree
        search for the whole run) and the insert finger then walks the
        list forward — each link it passes is read once, and each insert
        costs the same two writes as the per-op Fig. 9 sequence.  Over a
        monotone run the walk telescopes, so the batch costs
        O(run length + links skipped) accesses instead of one full
        search per link.

        ``entries`` must be nondecreasing under ``key`` (identity by
        default; modular callers pass a wrap-aware key) and every entry
        must belong at or after the predecessor link.  Pass
        ``predecessor_address=None`` only when the memory is empty.
        Equal tags are appended after existing duplicates, preserving
        the per-op FCFS discipline.  Accounting is flushed to the SRAM
        stats once per batch.  Returns the new addresses in entry order.
        """
        if not entries:
            return []
        if self._count + len(entries) > self.capacity:
            raise CapacityError(
                f"batch of {len(entries)} links overflows tag storage "
                f"({self._count} of {self.capacity} in use)"
            )
        if key is None:
            key = lambda value: value  # noqa: E731 - identity key
        cells = self._memory._cells
        reads = 0
        writes = 0

        def allocate() -> int:
            nonlocal reads
            if not self._init_counter.saturated:
                return self._init_counter.take()
            address = self._empty_head
            if address is None:
                raise StorageCorruptionError(
                    "counter exhausted and empty list empty, "
                    "but count < capacity"
                )
            link = cells[address]
            reads += 1
            self._empty_head = link.next_address
            return address

        addresses: List[int] = []
        start = 0
        if predecessor_address is None:
            if not self.is_empty:
                raise ConfigurationError(
                    "insert_monotone_batch without a predecessor requires "
                    "an empty memory"
                )
            tag, payload = entries[0]
            address = allocate()
            finger = Link(
                tag=tag, next_address=None, next_tag=None, payload=payload
            )
            cells[address] = finger
            writes += 1
            self._head_address = address
            self._head_tag = tag
            self._count += 1
            addresses.append(address)
            finger_address = address
            start = 1
        else:
            finger_address = predecessor_address
            finger = cells[finger_address]
            reads += 1  # the predecessor read of the per-op sequence
            if key(finger.tag) > key(entries[0][0]):
                raise ConfigurationError(
                    f"sorted-order violation: inserting {entries[0][0]} "
                    f"after {finger.tag}"
                )

        for tag, payload in entries[start:]:
            target = key(tag)
            while (
                finger.next_address is not None
                and key(finger.next_tag) <= target
            ):
                finger_address = finger.next_address
                finger = cells[finger_address]
                reads += 1
            address = allocate()
            new_link = Link(
                tag=tag,
                next_address=finger.next_address,
                next_tag=finger.next_tag,
                payload=payload,
            )
            cells[finger_address] = Link(
                tag=finger.tag,
                next_address=address,
                next_tag=tag,
                payload=finger.payload,
            )
            cells[address] = new_link
            writes += 2
            self._count += 1
            addresses.append(address)
            finger_address = address
            finger = new_link

        self._memory.stats.record_bulk(reads=reads, writes=writes)
        return addresses

    # ------------------------------------------------------------------
    # service (head removal)

    def dequeue_min(self) -> Tuple[int, Any, int]:
        """Remove and return the smallest tag.

        Returns ``(tag, payload, address)``; the freed address joins the
        empty list.  One read (the departing link, which carries the new
        head's tag) plus one write (threading the empty list).
        """
        if self.is_empty:
            raise EmptyStructureError("dequeue from an empty tag storage")
        address = self._head_address
        link = self._memory.read(address)
        self._head_address = link.next_address
        self._head_tag = link.next_tag
        self._free(address)
        self._count -= 1
        return link.tag, link.payload, address

    def dequeue_batch(self, count: int) -> List[Tuple[int, Any, int]]:
        """Remove the ``count`` smallest tags in one amortized pass.

        Retire discipline and costs match ``count`` per-op head removals
        — one read (the departing link) plus one write (threading the
        empty list) each, and freed links join the empty list in the
        same LIFO order — but the accounting is flushed once per batch.
        Returns ``(tag, payload, address)`` triples in service order.

        **Over-ask contract (raise-before-mutate):** when ``count``
        exceeds the current occupancy the call raises
        :class:`EmptyStructureError` *before touching the list* — no
        link is served and no slot is freed.  This deliberately differs
        from ``count`` literal :meth:`dequeue_min` calls, which would
        serve the remaining occupancy before raising on the first empty
        pop.  The batch layers at both storage and circuit level share
        this all-or-nothing contract.
        """
        if count < 0:
            raise ConfigurationError("dequeue count must be non-negative")
        if count > self._count:
            raise EmptyStructureError(
                f"dequeue_batch({count}) from a storage holding {self._count}"
            )
        if count == 0:
            return []
        cells = self._memory._cells
        served: List[Tuple[int, Any, int]] = []
        address = self._head_address
        next_address = address
        next_tag = self._head_tag
        for _ in range(count):
            link = cells[address]
            served.append((link.tag, link.payload, address))
            next_address = link.next_address
            next_tag = link.next_tag
            # Recycle the resident Link in place — the same free-list
            # discipline as ``_free`` / ``turbo_dequeue_min`` — so batch
            # and per-op retire paths thread identical cell objects.
            link.tag = -1
            link.next_address = self._empty_head
            link.next_tag = None
            link.payload = None
            self._empty_head = address
            address = next_address
        self._head_address = next_address
        self._head_tag = next_tag
        self._count -= count
        self._memory.stats.record_bulk(reads=count, writes=count)
        return served

    def replace_min(
        self, predecessor_address: Optional[int], tag: int, payload: Any = None
    ) -> Tuple[int, Any, int, int]:
        """Simultaneous insert + dequeue within one four-access window.

        The departing head's slot is reused for the incoming tag instead
        of cycling through the empty list (Section III-C).  Returns
        ``(served_tag, served_payload, served_address, new_address)``.

        ``predecessor_address`` is the linked-list position the tree
        search produced for the incoming tag; pass None when the new tag
        belongs at the head.  When the predecessor *is* the departing
        head, the insert is re-anchored to the new head.
        """
        if self.is_empty:
            raise EmptyStructureError("replace_min on an empty tag storage")
        head_address = self._head_address
        head = self._memory.read(head_address)  # access 1: serves + frees
        served = (head.tag, head.payload, head_address)
        self._head_address = head.next_address
        self._head_tag = head.next_tag
        self._count -= 1

        if self.is_empty:
            # The memory emptied; the incoming tag restarts the list in
            # the reused slot.
            self._memory.write(
                head_address,
                Link(tag=tag, next_address=None, next_tag=None, payload=payload),
            )
            self._head_address = head_address
            self._head_tag = tag
            self._count += 1
            return served[0], served[1], served[2], head_address

        if predecessor_address == head_address or predecessor_address is None:
            if self._head_tag is not None and tag <= self._head_tag:
                # New head in the reused slot.
                self._memory.write(
                    head_address,
                    Link(
                        tag=tag,
                        next_address=self._head_address,
                        next_tag=self._head_tag,
                        payload=payload,
                    ),
                )
                self._head_address = head_address
                self._head_tag = tag
                self._count += 1
                return served[0], served[1], served[2], head_address
            # The served head was the predecessor; the new tag now follows
            # the new head instead.
            predecessor_address = self._head_address

        predecessor = self._memory.read(predecessor_address)  # access 2
        if predecessor.tag > tag and not self.modular:
            raise ConfigurationError(
                f"sorted-order violation: inserting {tag} after "
                f"{predecessor.tag}"
            )
        new_link = Link(
            tag=tag,
            next_address=predecessor.next_address,
            next_tag=predecessor.next_tag,
            payload=payload,
        )
        self._memory.write(  # access 3
            predecessor_address,
            Link(
                tag=predecessor.tag,
                next_address=head_address,
                next_tag=tag,
                payload=predecessor.payload,
            ),
        )
        self._memory.write(head_address, new_link)  # access 4 (slot reuse)
        self._count += 1
        return served[0], served[1], served[2], head_address

    # ------------------------------------------------------------------
    # dynamic updates (unlink by address)

    def remove_at(
        self, address: int, predecessor_address: Optional[int]
    ) -> Tuple[int, Any]:
        """Unlink the link at ``address`` and return its slot to the
        empty list.

        ``predecessor_address`` names the link immediately before the
        victim; pass None when the victim *is* the head.  Head removal
        is exactly :meth:`dequeue_min` (one read + one write); mid-list
        removal costs two reads (predecessor + victim) and two writes
        (splicing the predecessor past the victim, then threading the
        empty list) — the same four-access budget as a Fig. 9 insert.
        The predecessor's ``next_tag`` is rewritten from the victim's,
        so the successor-tag channel stays exact.  Returns
        ``(tag, payload)``.
        """
        if self.is_empty:
            raise EmptyStructureError("remove from an empty tag storage")
        if predecessor_address is None:
            if address != self._head_address:
                raise ConfigurationError(
                    f"remove_at: address {address} is not the head but no "
                    "predecessor was supplied"
                )
            tag, payload, _ = self.dequeue_min()
            return tag, payload
        predecessor = self._memory.read(predecessor_address)  # access 1
        if predecessor.next_address != address:
            raise ConfigurationError(
                f"remove_at: link {predecessor_address} does not precede "
                f"{address}"
            )
        victim = self._memory.read(address)  # access 2
        self._memory.write(  # access 3: splice past the victim
            predecessor_address,
            Link(
                tag=predecessor.tag,
                next_address=victim.next_address,
                next_tag=victim.next_tag,
                payload=predecessor.payload,
            ),
        )
        self._free(address)  # access 4: thread the empty list
        self._count -= 1
        return victim.tag, victim.payload

    def unlink(
        self, address: int, start_address: int
    ) -> Tuple[int, Any, int, int, int]:
        """Walk from ``start_address`` to the link preceding ``address``,
        splice the victim out, and thread its slot onto the empty list.

        The caller supplies a walk anchor at or before the victim's
        position — the newest link of the closest smaller value, or the
        head when the victim shares the minimum tag.  Each walked link
        costs one read; the unlink then adds the victim read plus two
        writes, so an immediate predecessor lands exactly on the Fig. 9
        four-access budget (2R + 2W) and each extra duplicate walked
        adds one read.  The head cannot be removed this way (it has no
        predecessor); use :meth:`remove_at` with ``predecessor_address=
        None``.  Returns ``(tag, payload, predecessor_address,
        predecessor_tag, reads)``.
        """
        if self.is_empty:
            raise EmptyStructureError("remove from an empty tag storage")
        if address == self._head_address or address == start_address:
            raise ConfigurationError(
                f"unlink needs a strict predecessor anchor for address "
                f"{address} (got start {start_address})"
            )
        reads = 0
        cursor = start_address
        predecessor = self._memory.read(cursor)
        reads += 1
        while predecessor.next_address != address:
            if predecessor.next_address is None or reads > self.capacity:
                raise StorageCorruptionError(
                    f"address {address} not reachable from {start_address}"
                )
            cursor = predecessor.next_address
            predecessor = self._memory.read(cursor)
            reads += 1
        victim = self._memory.read(address)
        reads += 1
        self._memory.write(
            cursor,
            Link(
                tag=predecessor.tag,
                next_address=victim.next_address,
                next_tag=victim.next_tag,
                payload=predecessor.payload,
            ),
        )
        self._free(address)
        self._count -= 1
        return victim.tag, victim.payload, cursor, predecessor.tag, reads

    # ------------------------------------------------------------------
    # turbo hot paths (access-fused, accounting-identical)
    #
    # Each turbo_* method performs the exact same link-list transition as
    # its gate-accurate twin above and charges the exact same reads and
    # writes to the same AccessStats counters — it just skips the
    # per-access memory-object indirection (check_address, port claims,
    # record_read/record_write calls) and mutates resident Link objects
    # in place instead of allocating fresh ones.  Nothing aliases the
    # cell-resident links (peek/walk return or copy fields, and the gate
    # paths always *replace* cells with fresh Links), so in-place
    # mutation is observationally identical.

    def turbo_insert_after(
        self, predecessor_address: int, tag: int, payload: Any = None
    ) -> int:
        """Access-fused :meth:`insert_after` (same Fig. 9 accounting)."""
        if self._count >= self.capacity:
            raise CapacityError(
                f"tag storage full ({self.capacity} links in use)"
            )
        cells = self._memory._cells
        reads = 1  # the predecessor read (access 2)
        recycled = None
        if not self._init_counter.saturated:
            address = self._init_counter.take()  # access 1: counter, free
        else:
            address = self._empty_head
            if address is None:
                raise StorageCorruptionError(
                    "counter exhausted and empty list empty, "
                    "but count < capacity"
                )
            reads += 1  # access 1: read a free location
            recycled = cells[address]
            self._empty_head = recycled.next_address
        predecessor = cells[predecessor_address]
        if predecessor.tag > tag and not self.modular:
            raise ConfigurationError(
                f"sorted-order violation: inserting {tag} after "
                f"{predecessor.tag}"
            )
        if recycled is None:
            cells[address] = Link(
                tag=tag,
                next_address=predecessor.next_address,
                next_tag=predecessor.next_tag,
                payload=payload,
            )
        else:
            # Free-list slots keep their resident Link object: nothing
            # aliases a freed link, so rewriting it in place is the
            # hardware's access-4 cell write without an allocation.
            recycled.tag = tag
            recycled.next_address = predecessor.next_address
            recycled.next_tag = predecessor.next_tag
            recycled.payload = payload
        predecessor.next_address = address  # access 3 (in-place rewrite)
        predecessor.next_tag = tag
        stats = self._memory.stats
        stats.reads += reads
        stats.writes += 2  # accesses 3 and 4
        self._count += 1
        return address

    def turbo_dequeue_min(self) -> Tuple[int, Any, int]:
        """Access-fused :meth:`dequeue_min` (one read + one write)."""
        if self._count == 0:
            raise EmptyStructureError("dequeue from an empty tag storage")
        address = self._head_address
        link = self._memory._cells[address]
        served = (link.tag, link.payload, address)
        self._head_address = link.next_address
        self._head_tag = link.next_tag
        # Thread the freed slot onto the empty list by rewriting the
        # departing link in place (the gate path writes a fresh Link).
        link.tag = -1
        link.next_address = self._empty_head
        link.next_tag = None
        link.payload = None
        self._empty_head = address
        stats = self._memory.stats
        stats.reads += 1
        stats.writes += 1
        self._count -= 1
        return served

    def turbo_replace_min(
        self, predecessor_address: Optional[int], tag: int, payload: Any = None
    ) -> Tuple[int, Any, int, int]:
        """Access-fused :meth:`replace_min` (same branch-by-branch costs)."""
        if self._count == 0:
            raise EmptyStructureError("replace_min on an empty tag storage")
        cells = self._memory._cells
        stats = self._memory.stats
        head_address = self._head_address
        head = cells[head_address]
        stats.reads += 1  # access 1: serves + frees
        served = (head.tag, head.payload, head_address)
        self._head_address = head.next_address
        self._head_tag = head.next_tag
        self._count -= 1

        if self._count == 0:
            # The memory emptied; the incoming tag restarts the list in
            # the reused slot.
            head.tag = tag
            head.next_address = None
            head.next_tag = None
            head.payload = payload
            stats.writes += 1
            self._head_address = head_address
            self._head_tag = tag
            self._count += 1
            return served[0], served[1], served[2], head_address

        if predecessor_address == head_address or predecessor_address is None:
            if self._head_tag is not None and tag <= self._head_tag:
                # New head in the reused slot.
                head.tag = tag
                head.next_address = self._head_address
                head.next_tag = self._head_tag
                head.payload = payload
                stats.writes += 1
                self._head_address = head_address
                self._head_tag = tag
                self._count += 1
                return served[0], served[1], served[2], head_address
            # The served head was the predecessor; the new tag now follows
            # the new head instead.
            predecessor_address = self._head_address

        predecessor = cells[predecessor_address]
        stats.reads += 1  # access 2
        if predecessor.tag > tag and not self.modular:
            raise ConfigurationError(
                f"sorted-order violation: inserting {tag} after "
                f"{predecessor.tag}"
            )
        # Reuse the departing head's slot for the new link (access 4),
        # then splice the predecessor onto it (access 3).
        head.tag = tag
        head.next_address = predecessor.next_address
        head.next_tag = predecessor.next_tag
        head.payload = payload
        predecessor.next_address = head_address
        predecessor.next_tag = tag
        stats.writes += 2
        self._count += 1
        return served[0], served[1], served[2], head_address

    def turbo_remove_at(
        self, address: int, predecessor_address: Optional[int]
    ) -> Tuple[int, Any]:
        """Access-fused :meth:`remove_at` (same branch-by-branch costs)."""
        if self._count == 0:
            raise EmptyStructureError("remove from an empty tag storage")
        if predecessor_address is None:
            if address != self._head_address:
                raise ConfigurationError(
                    f"remove_at: address {address} is not the head but no "
                    "predecessor was supplied"
                )
            tag, payload, _ = self.turbo_dequeue_min()
            return tag, payload
        cells = self._memory._cells
        stats = self._memory.stats
        predecessor = cells[predecessor_address]
        if predecessor.next_address != address:
            raise ConfigurationError(
                f"remove_at: link {predecessor_address} does not precede "
                f"{address}"
            )
        victim = cells[address]
        removed = (victim.tag, victim.payload)
        predecessor.next_address = victim.next_address  # access 3
        predecessor.next_tag = victim.next_tag
        # Access 4: recycle the victim's resident Link onto the empty list.
        victim.tag = -1
        victim.next_address = self._empty_head
        victim.next_tag = None
        victim.payload = None
        self._empty_head = address
        stats.reads += 2  # accesses 1 and 2
        stats.writes += 2
        self._count -= 1
        return removed

    def turbo_unlink(
        self, address: int, start_address: int
    ) -> Tuple[int, Any, int, int, int]:
        """Access-fused :meth:`unlink` (same walk and splice costs)."""
        if self._count == 0:
            raise EmptyStructureError("remove from an empty tag storage")
        if address == self._head_address or address == start_address:
            raise ConfigurationError(
                f"unlink needs a strict predecessor anchor for address "
                f"{address} (got start {start_address})"
            )
        cells = self._memory._cells
        stats = self._memory.stats
        reads = 0
        cursor = start_address
        predecessor = cells[cursor]
        reads += 1
        while predecessor.next_address != address:
            if predecessor.next_address is None or reads > self.capacity:
                raise StorageCorruptionError(
                    f"address {address} not reachable from {start_address}"
                )
            cursor = predecessor.next_address
            predecessor = cells[cursor]
            reads += 1
        victim = cells[address]
        reads += 1
        removed_tag = victim.tag
        removed_payload = victim.payload
        predecessor_tag = predecessor.tag
        predecessor.next_address = victim.next_address
        predecessor.next_tag = victim.next_tag
        # Recycle the victim's resident Link onto the empty list.
        victim.tag = -1
        victim.next_address = self._empty_head
        victim.next_tag = None
        victim.payload = None
        self._empty_head = address
        stats.reads += reads
        stats.writes += 2
        self._count -= 1
        return removed_tag, removed_payload, cursor, predecessor_tag, reads

    # ------------------------------------------------------------------
    # checkpoint / restore

    def to_state(self) -> dict:
        """Exact serializable snapshot of the storage memory.

        Captures everything needed to resume mid-stream with identical
        behaviour *and* identical accounting: the full cell array (live
        links and the threaded empty list, Fig. 10), the initialization
        counter, the head registers, and the SRAM access stats.  The
        result is a plain dict of JSON-compatible values (payloads that
        are themselves JSON-compatible survive a JSON round trip; any
        picklable payload survives pickling, which is what the fabric's
        process-parallel backend uses).
        """
        cells: List[Optional[list]] = []
        for cell in self._memory._cells:
            if cell is None:
                cells.append(None)
            else:
                cells.append(
                    [cell.tag, cell.next_address, cell.next_tag, cell.payload]
                )
        return {
            "kind": "tag_storage",
            "capacity": self.capacity,
            "modular": self.modular,
            "word_bits": self._memory.word_bits,
            "cells": cells,
            "init_counter": self._init_counter.value,
            "empty_head": self._empty_head,
            "head_address": self._head_address,
            "head_tag": self._head_tag,
            "count": self._count,
            "stats": self._memory.stats.to_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this instance.

        The instance must have been constructed with the same capacity
        and mode; the existing :class:`AccessStats` object is mutated in
        place so external registrations (a circuit's stats registry)
        stay live across the restore.
        """
        if state.get("kind") != "tag_storage":
            raise ConfigurationError(
                f"not a tag storage snapshot: kind={state.get('kind')!r}"
            )
        if state["capacity"] != self.capacity:
            raise ConfigurationError(
                f"snapshot capacity {state['capacity']} != {self.capacity}"
            )
        if bool(state["modular"]) != self.modular:
            raise ConfigurationError("snapshot modular mode mismatch")
        counter_value = state["init_counter"]
        if not 0 <= counter_value <= self.capacity:
            raise ConfigurationError(
                f"init counter value {counter_value} outside "
                f"[0, {self.capacity}]"
            )
        cells = self._memory._cells
        for address, cell in enumerate(state["cells"]):
            if cell is None:
                cells[address] = None
            else:
                tag, next_address, next_tag, payload = cell
                cells[address] = Link(
                    tag=tag,
                    next_address=next_address,
                    next_tag=next_tag,
                    payload=payload,
                )
        self._init_counter.value = counter_value
        self._empty_head = state["empty_head"]
        self._head_address = state["head_address"]
        self._head_tag = state["head_tag"]
        self._count = state["count"]
        self._memory.stats.reads = state["stats"]["reads"]
        self._memory.stats.writes = state["stats"]["writes"]

    @classmethod
    def from_state(cls, state: dict) -> "TagStorageMemory":
        """Reconstruct a storage memory from a :meth:`to_state` snapshot."""
        memory = cls(
            state["capacity"],
            word_bits=state.get("word_bits", 64),
            modular=bool(state["modular"]),
        )
        memory.load_state(state)
        return memory

    # ------------------------------------------------------------------
    # verification helpers

    def walk(self) -> List[Tuple[int, int]]:
        """The live list as ``(tag, address)`` pairs, head first (debug)."""
        out = []
        cursor = self._head_address
        while cursor is not None:
            link = self._memory.peek(cursor)
            out.append((link.tag, cursor))
            cursor = link.next_address
            if len(out) > self.capacity:
                raise StorageCorruptionError("live list contains a cycle")
        return out

    def check_invariants(self) -> None:
        """Verify sortedness, counts, and pointer consistency."""
        live = self.walk()
        if len(live) != self._count:
            raise StorageCorruptionError(
                f"live count {self._count} != walked length {len(live)}"
            )
        tags = [tag for tag, _ in live]
        if self.modular:
            descents = sum(
                1 for a, b in zip(tags, tags[1:]) if b < a
            )
            if descents > 1:
                raise StorageCorruptionError(
                    f"modular list wraps more than once: {tags}"
                )
        elif tags != sorted(tags):
            raise StorageCorruptionError(f"list out of order: {tags}")
        if live:
            if self._head_tag != tags[0]:
                raise StorageCorruptionError(
                    f"head tag register {self._head_tag} != actual {tags[0]}"
                )
            cursor = self._head_address
            while cursor is not None:
                link = self._memory.peek(cursor)
                if link.next_address is not None:
                    successor = self._memory.peek(link.next_address)
                    if link.next_tag != successor.tag:
                        raise StorageCorruptionError(
                            f"stale next_tag at address {cursor}: "
                            f"{link.next_tag} != {successor.tag}"
                        )
                cursor = link.next_address
        free = len(self.empty_list_addresses())
        unallocated = self.capacity - self._init_counter.value
        if free + unallocated + self._count != self.capacity:
            raise StorageCorruptionError(
                f"slot accounting broken: {free} free + {unallocated} "
                f"unallocated + {self._count} live != {self.capacity}"
            )
