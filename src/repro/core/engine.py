"""Pluggable data-plane engines behind one formal protocol.

The circuit grew three interchangeable execution engines:

``gate``
    The paper-faithful reference: every memory access goes through the
    gate-accurate :class:`~repro.hwsim.memory.SinglePortSRAM` models
    (:class:`~repro.core.sort_retrieve.TagSortRetrieveCircuit` with
    ``turbo=False``).
``turbo``
    The access-fused bit-parallel engine (same class, ``turbo=True``)
    — asserted cycle- and access-identical to gate.
``vector``
    The numpy array data plane
    (:class:`~repro.core.vector.VectorSortRetrieveCircuit`) — tree
    levels, occupancy words, and the free list held as contiguous
    arrays, batch operations executed as whole-array ops.  Served
    order, addresses, and structural snapshots are gate-identical;
    cycle counters and per-structure access counters are *reported
    per-engine* (modeled, not asserted equal to gate) — see
    DESIGN.md §15 for the contract split.

:class:`DataPlaneEngine` is the formal protocol every engine
implements; :func:`make_circuit` / :func:`circuit_from_state` are the
only constructors the systems layers (``net/``, ``fabric/``, bench,
serve) should use, keyed by the ``mode`` string.  numpy is a graceful
optional dependency: requesting ``--mode vector`` without numpy raises
one clear :class:`~repro.hwsim.errors.ConfigurationError` (never a
bare ``ImportError``), via :func:`require_numpy`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - typing_extensions never needed on 3.9+
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from ..hwsim.errors import ConfigurationError
from .sort_retrieve import ServedTag, TagSortRetrieveCircuit
from .words import PAPER_FORMAT, WordFormat

#: Engine modes accepted everywhere a ``--mode`` / ``mode=`` knob exists.
VALID_MODES: Tuple[str, ...] = ("gate", "turbo", "vector")

_UNSET = object()
_NUMPY: Any = _UNSET


def numpy_or_none():
    """The numpy module when importable, else None (cached)."""
    global _NUMPY
    if _NUMPY is _UNSET:
        try:
            import numpy  # noqa: PLC0415 - optional dependency probe

            _NUMPY = numpy
        except ImportError:  # pragma: no cover - exercised via monkeypatch
            _NUMPY = None
    return _NUMPY


def require_numpy(feature: str):
    """Return numpy or raise one clear :class:`ConfigurationError`.

    Every vectorized entry point (``--mode vector``, bulk traffic
    synthesis) funnels through here so a missing numpy surfaces as a
    configuration problem with a remedy, not an ImportError from deep
    inside an array kernel.
    """
    np = numpy_or_none()
    if np is None:
        raise ConfigurationError(
            f"{feature} requires numpy, which is not installed; install "
            "numpy or choose a scalar engine (--mode gate / --mode turbo)"
        )
    return np


def resolve_mode(mode: Optional[str] = None, turbo: bool = False) -> str:
    """Normalize the (mode, legacy turbo flag) pair to one mode string.

    ``turbo=True`` predates the mode knob; it keeps working as a
    synonym for ``mode="turbo"`` but conflicts with an explicit
    contradictory mode.
    """
    if mode is None:
        return "turbo" if turbo else "gate"
    if mode not in VALID_MODES:
        raise ConfigurationError(
            f"unknown engine mode {mode!r} (expected one of {VALID_MODES})"
        )
    if turbo and mode != "turbo":
        raise ConfigurationError(
            f"mode={mode!r} conflicts with turbo=True"
        )
    return mode


@runtime_checkable
class DataPlaneEngine(Protocol):
    """The contract every sort/retrieve engine implements.

    Shared, engine-independent guarantees (the differential-parity
    suite pins these pairwise across all engines):

    * **Served order** — identical :class:`ServedTag` streams (tag,
      payload, address) for identical operation streams, per-op or
      batched.
    * **Addresses** — the init-counter + LIFO free-list allocation
      discipline of Fig. 10, so handles are portable across engines.
    * **Snapshots** — ``to_state()`` produces the gate-shaped circuit
      snapshot; any engine restores any engine's snapshot and
      continues the exact service order.

    Per-engine (reported, not asserted identical): ``cycles`` and the
    per-structure access counters in ``registry`` — gate/turbo count
    gate-accurate memory traffic, vector reports a modeled cost that
    stays within the invariant monitors' architectural budgets.
    """

    fmt: WordFormat
    modular: bool
    eager_marker_removal: bool
    cycles: int
    operations: int

    # -- observers ----------------------------------------------------
    @property
    def count(self) -> int: ...

    @property
    def is_empty(self) -> bool: ...

    @property
    def free_list_depth(self) -> int: ...

    def peek_min(self) -> Optional[int]: ...

    def peek_head(self) -> Optional[ServedTag]: ...

    def describe(self) -> dict: ...

    # -- the paper's operations ----------------------------------------
    def insert(self, tag: int, payload: Any = None) -> int: ...

    def dequeue_min(self) -> ServedTag: ...

    def insert_and_dequeue(
        self, tag: int, payload: Any = None
    ) -> Tuple[ServedTag, int]: ...

    def insert_batch(
        self,
        tags: Sequence[int],
        payloads: Optional[Sequence[Any]] = None,
    ) -> List[int]: ...

    def dequeue_batch(self, count: int) -> List[ServedTag]: ...

    def run_mixed(self, operations) -> List[ServedTag]: ...

    # -- dynamic updates ------------------------------------------------
    def remove(self, handle: int) -> ServedTag: ...

    def retag(self, handle: int, new_tag: int) -> int: ...

    def is_live_handle(self, handle: int) -> bool: ...

    def handle_tag(self, handle: int) -> Optional[int]: ...

    def handle_payload(self, handle: int) -> Any: ...

    # -- maintenance / checkpoint ----------------------------------------
    def flush_stale_markers(self) -> None: ...

    def clear_stale_section(self, root_literal: int) -> int: ...

    def to_state(self) -> dict: ...

    def load_state(self, state: dict) -> None: ...

    def check_invariants(self) -> None: ...

    def attach_tracer(self, tracer) -> None: ...

    def detach_tracer(self) -> None: ...


def make_circuit(
    fmt: WordFormat = PAPER_FORMAT,
    *,
    mode: Optional[str] = None,
    turbo: bool = False,
    capacity: int = 4096,
    eager_marker_removal: bool = False,
    modular: bool = False,
    fast_mode: bool = False,
    tracer=None,
    matcher_factory=None,
) -> DataPlaneEngine:
    """Construct the engine selected by ``mode`` (or legacy ``turbo``)."""
    mode = resolve_mode(mode, turbo)
    if mode == "vector":
        from .vector import VectorSortRetrieveCircuit  # noqa: PLC0415

        return VectorSortRetrieveCircuit(
            fmt,
            capacity=capacity,
            eager_marker_removal=eager_marker_removal,
            modular=modular,
            fast_mode=fast_mode,
            tracer=tracer,
        )
    kwargs: Dict[str, Any] = {}
    if matcher_factory is not None:
        kwargs["matcher_factory"] = matcher_factory
    return TagSortRetrieveCircuit(
        fmt,
        capacity=capacity,
        eager_marker_removal=eager_marker_removal,
        modular=modular,
        fast_mode=fast_mode,
        turbo=(mode == "turbo"),
        tracer=tracer,
        **kwargs,
    )


def circuit_from_state(
    state: dict,
    *,
    mode: Optional[str] = None,
    turbo: bool = False,
    tracer=None,
) -> DataPlaneEngine:
    """Reconstruct a circuit snapshot under the engine ``mode`` names.

    Snapshots are engine-neutral (the gate shape is the interchange
    format), so the hosting process picks the engine at restore time —
    exactly like the pre-existing gate/turbo checkpoint portability.
    When ``mode`` is omitted the snapshot's own legacy ``turbo`` flag
    decides between gate and turbo.
    """
    if mode is None and not turbo:
        config = state.get("config", {})
        mode = "turbo" if config.get("turbo", False) else "gate"
    mode = resolve_mode(mode, turbo)
    if mode == "vector":
        from .vector import VectorSortRetrieveCircuit  # noqa: PLC0415

        return VectorSortRetrieveCircuit.from_state(state, tracer=tracer)
    circuit = TagSortRetrieveCircuit.from_state(state, tracer=tracer)
    circuit.turbo = mode == "turbo"
    return circuit


def engine_name(circuit) -> str:
    """The mode string of a live engine instance."""
    from .vector import VectorSortRetrieveCircuit  # noqa: PLC0415

    if isinstance(circuit, VectorSortRetrieveCircuit):
        return "vector"
    return "turbo" if getattr(circuit, "turbo", False) else "gate"
