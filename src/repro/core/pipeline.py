"""Cycle-accurate pipelined model of the sort/retrieve circuit.

The paper's Section III-A fixes the timing contract: the three-level
tree plus the translation table throughput one tag in four clock cycles,
deliberately matched to the tag storage memory's four-cycle (two-read,
two-write) insert, "allow[ing] the operations of the separate components
to be synchronized most efficiently".  Because the two halves use
*disjoint memories*, they pipeline: while the storage memory splices tag
i, the tree and translation table are already looking up tag i+1.

:class:`PipelinedSortRetrieve` executes that schedule cycle by cycle on
a real :class:`~repro.hwsim.clock.Clock`:

* **stage A (lookup, 4 cycles)** — tree levels 0/1 (registers, cycle 0),
  tree level 2 (single-port SRAM, cycle 1), translation-table read
  (cycle 2), tree marker write-back + translation update (cycle 3);
* **stage B (splice, 4 cycles)** — the Fig. 9 storage sequence: free-
  location read, predecessor read, predecessor write, new-link write.

Single-port constraints are enforced per cycle on the level-2 SRAM, the
translation table, and the tag storage; a schedule that double-booked a
port would raise :class:`~repro.hwsim.errors.PortConflictError` instead
of silently serializing.

The model demonstrates and *measures* the paper's two headline timing
properties:

* steady-state throughput of one operation per four cycles;
* a fixed per-operation latency of eight cycles (two full stages),
  independent of occupancy.

Functional results are delegated to :class:`TagSortRetrieveCircuit` (the
behavioural golden model); this class adds the cycle schedule on top and
cross-checks against it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional

from ..hwsim.clock import Clock
from ..hwsim.errors import ConfigurationError, ProtocolError
from .sort_retrieve import ServedTag, TagSortRetrieveCircuit
from .words import PAPER_FORMAT, WordFormat

#: cycles per pipeline stage (Section III-A)
STAGE_CYCLES = 4
#: end-to-end latency of one operation: lookup stage + splice stage
OPERATION_LATENCY_CYCLES = 2 * STAGE_CYCLES


@dataclass
class _Operation:
    """One in-flight circuit operation."""

    kind: str  # "insert" | "dequeue" | "insert_dequeue"
    tag: Optional[int]
    payload: Any
    issue_cycle: int
    port_trace: List[str] = field(default_factory=list)
    retired_cycle: Optional[int] = None
    result: Optional[ServedTag] = None
    address: Optional[int] = None


#: which port each cycle of each stage claims, for conflict auditing
_STAGE_A_PORTS = ("tree_regs", "tree_sram", "translation", "translation")
_STAGE_B_PORTS = ("storage", "storage", "storage", "storage")


class PipelinedSortRetrieve:
    """Two-stage, four-cycles-per-stage pipeline over the circuit."""

    def __init__(
        self,
        fmt: WordFormat = PAPER_FORMAT,
        *,
        capacity: int = 4096,
        clock: Optional[Clock] = None,
        eager_marker_removal: bool = True,
    ) -> None:
        self.circuit = TagSortRetrieveCircuit(
            fmt,
            capacity=capacity,
            eager_marker_removal=eager_marker_removal,
        )
        self.clock = clock if clock is not None else Clock()
        self._pending: Deque[_Operation] = deque()
        self._stage_a: Optional[_Operation] = None
        self._stage_b: Optional[_Operation] = None
        self._stage_a_cycle = 0
        self._stage_b_cycle = 0
        self.retired: List[_Operation] = []
        self._ports_this_cycle: List[str] = []

    # ------------------------------------------------------------------
    # issue interface

    def submit_insert(self, tag: int, payload: Any = None) -> None:
        """Queue an insert operation."""
        self.circuit.fmt.check_value(tag)
        self._pending.append(
            _Operation(
                kind="insert",
                tag=tag,
                payload=payload,
                issue_cycle=self.clock.cycle,
            )
        )

    def submit_dequeue(self) -> None:
        """Queue a dequeue of the current minimum."""
        self._pending.append(
            _Operation(
                kind="dequeue",
                tag=None,
                payload=None,
                issue_cycle=self.clock.cycle,
            )
        )

    def submit_insert_dequeue(self, tag: int, payload: Any = None) -> None:
        """Queue a simultaneous insert + dequeue (Section III-C)."""
        self.circuit.fmt.check_value(tag)
        self._pending.append(
            _Operation(
                kind="insert_dequeue",
                tag=tag,
                payload=payload,
                issue_cycle=self.clock.cycle,
            )
        )

    @property
    def in_flight(self) -> int:
        """Operations accepted but not yet retired."""
        active = sum(
            1 for stage in (self._stage_a, self._stage_b) if stage is not None
        )
        return len(self._pending) + active

    # ------------------------------------------------------------------
    # cycle execution

    def _claim_port(self, port: str) -> None:
        if port in self._ports_this_cycle:
            raise ProtocolError(
                f"pipeline schedule bug: port {port!r} double-booked in "
                f"cycle {self.clock.cycle}"
            )
        self._ports_this_cycle.append(port)

    def tick(self) -> None:
        """Advance the pipeline by one clock cycle."""
        self._ports_this_cycle = []

        # Stage B (splice) executes first so its hand-off slot frees up
        # within this cycle, exactly like a register between stages.
        if self._stage_b is not None:
            operation = self._stage_b
            self._claim_port(_STAGE_B_PORTS[self._stage_b_cycle])
            operation.port_trace.append(
                f"B{self._stage_b_cycle}:{_STAGE_B_PORTS[self._stage_b_cycle]}"
            )
            self._stage_b_cycle += 1
            if self._stage_b_cycle == STAGE_CYCLES:
                self._retire(operation)
                self._stage_b = None
                self._stage_b_cycle = 0

        # Stage A (lookup).
        if self._stage_a is not None:
            operation = self._stage_a
            self._claim_port(_STAGE_A_PORTS[self._stage_a_cycle])
            operation.port_trace.append(
                f"A{self._stage_a_cycle}:{_STAGE_A_PORTS[self._stage_a_cycle]}"
            )
            self._stage_a_cycle += 1
            if self._stage_a_cycle == STAGE_CYCLES and self._stage_b is None:
                self._stage_b = operation
                self._stage_a = None
                self._stage_a_cycle = 0
        elif self._pending:
            # Issue into stage A at the top of the cycle.
            self._stage_a = self._pending.popleft()
            self._claim_port(_STAGE_A_PORTS[0])
            self._stage_a.port_trace.append(f"A0:{_STAGE_A_PORTS[0]}")
            self._stage_a_cycle = 1

        self.clock.step(1)

    def _retire(self, operation: _Operation) -> None:
        """Commit the operation's architectural effect (golden model)."""
        if operation.kind == "insert":
            operation.address = self.circuit.insert(
                operation.tag, operation.payload
            )
        elif operation.kind == "dequeue":
            operation.result = self.circuit.dequeue_min()
        else:
            served, address = self.circuit.insert_and_dequeue(
                operation.tag, operation.payload
            )
            operation.result = served
            operation.address = address
        operation.retired_cycle = self.clock.cycle + 1
        self.retired.append(operation)

    def run_until_drained(self, *, max_cycles: int = 1_000_000) -> int:
        """Tick until every submitted operation has retired."""
        start = self.clock.cycle
        while self.in_flight:
            if self.clock.cycle - start > max_cycles:
                raise ConfigurationError("pipeline failed to drain")
            self.tick()
        return self.clock.cycle - start

    # ------------------------------------------------------------------
    # measured timing properties

    def steady_state_cycles_per_operation(self) -> float:
        """Retirement-to-retirement spacing once the pipeline is full."""
        retire_cycles = [
            op.retired_cycle
            for op in self.retired
            if op.retired_cycle is not None
        ]
        if len(retire_cycles) < 3:
            raise ConfigurationError("need at least 3 retirements")
        gaps = [
            later - earlier
            for earlier, later in zip(retire_cycles[1:], retire_cycles[2:])
        ]
        return sum(gaps) / len(gaps)

    def operation_latencies(self) -> List[int]:
        """Issue-to-retire latency of each retired operation, in cycles.

        For back-pressured operations this includes queueing; the *fixed*
        part (first-in-line issue to retire) is
        :data:`OPERATION_LATENCY_CYCLES`.
        """
        return [
            op.retired_cycle - op.issue_cycle
            for op in self.retired
            if op.retired_cycle is not None
        ]
