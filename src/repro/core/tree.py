"""The multi-bit search tree (trie) of paper Section III-A.

The tree records, for every tag value currently in the scheduler, a *tag
marker*: one presence bit per literal per level.  A node at level ``d`` is
a ``b``-bit word (b = branching factor) whose bit ``i`` says "some stored
value has literal ``i`` here under this prefix".

The search implemented by :meth:`MultiBitTree.closest_at_most` is the
paper's closest-match discipline (Figs. 4 and 5):

* at each level the matching circuit returns an exact-or-next-smallest
  **primary** match and a **backup** match (next set bit below the
  primary);
* the moment the primary match is *non-exact*, every deeper level simply
  follows its maximum set bit ("all subsequent levels return their
  maximum value");
* if the primary search fails at some level (no set bit at or below the
  target literal — possible only while still on the exact-prefix path),
  the deepest recorded backup is taken and the remaining levels again
  follow maximum set bits (Fig. 5);
* if no backup exists anywhere, no stored value <= the key exists.  Under
  WFQ this means the tree is empty (new tags are never smaller than the
  current minimum) and the circuit enters initialization mode; the method
  returns ``None`` so the caller can handle both WFQ and general use.

Storage follows the silicon layout: the first two levels live in
registers, deeper levels in single-port SRAM
(:func:`repro.hwsim.memory.make_tree_level_memory`).  Stale-section
deletion for the wrapping tag space (Fig. 6) is provided by
:meth:`clear_root_section`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..hwsim.errors import ConfigurationError, HardwareSimulationError
from ..hwsim.memory import make_tree_level_memory
from ..hwsim.stats import AccessStats
from .matching import DEFAULT_MATCHER, MatchingCircuit, highest_set_bit
from .words import WordFormat


class TreeInvariantError(HardwareSimulationError):
    """The tree's structural invariant was violated.

    Invariant: a set marker bit at level ``d`` implies its child node at
    level ``d+1`` is non-empty.  A violation means marker bookkeeping
    (insert/remove/section-clear) is buggy.
    """


class SearchOutcome:
    """Full instrumentation of one closest-match search.

    Hand-rolled with ``__slots__`` (rather than a dataclass): one of
    these is allocated per tree search, so it sits on the per-operation
    hot path alongside :class:`~repro.core.matching.base.MatchResult`.
    """

    __slots__ = (
        "key",
        "result",
        "exact",
        "used_backup",
        "fail_level",
        "path_literals",
        "sequential_node_reads",
        "parallel_node_reads",
    )

    def __init__(
        self,
        key: int,
        result: Optional[int],
        exact: bool = False,
        used_backup: bool = False,
        fail_level: Optional[int] = None,
        path_literals: Optional[List[int]] = None,
        sequential_node_reads: int = 0,
        parallel_node_reads: int = 0,
    ) -> None:
        self.key = key
        self.result = result
        self.exact = exact
        self.used_backup = used_backup
        self.fail_level = fail_level
        self.path_literals = [] if path_literals is None else path_literals
        self.sequential_node_reads = sequential_node_reads
        self.parallel_node_reads = parallel_node_reads

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SearchOutcome):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in SearchOutcome.__slots__
        )

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in SearchOutcome.__slots__
        )
        return f"SearchOutcome({fields})"

    @property
    def total_node_reads(self) -> int:
        """All node words fetched, primary plus backup path."""
        return self.sequential_node_reads + self.parallel_node_reads


class MultiBitTree:
    """A multi-bit trie of tag markers with closest-match search."""

    def __init__(
        self,
        fmt: WordFormat,
        *,
        matcher_factory=DEFAULT_MATCHER,
        register_levels: int = 2,
    ) -> None:
        self.fmt = fmt
        b = fmt.branching_factor
        self._levels = [
            make_tree_level_memory(
                level, b, b**level, register_levels=register_levels
            )
            for level in range(fmt.levels)
        ]
        # The paper uses identical matching circuits at every level
        # ("three identical matching circuits are required").
        self.matchers: List[MatchingCircuit] = [
            matcher_factory(b) for _ in range(fmt.levels)
        ]
        self._count = 0
        #: cached ``fmt.max_value`` so the turbo paths can bounds-check
        #: without walking the word-format property chain per call.
        self._turbo_max = fmt.max_value
        #: per-level ``(cells, stats)`` pairs for the fused walks.  Both
        #: objects are identity-stable for the memory's lifetime (every
        #: reset path — clear_all, section clears, load_state — mutates
        #: them in place), so the hot loops skip two attribute hops per
        #: level per access.
        self._turbo_walk = tuple(
            (level._cells, level.stats) for level in self._levels
        )
        self._turbo_depth = len(self._turbo_walk)
        self._turbo_shift0 = (self._turbo_depth - 1) * fmt.literal_bits
        #: instrumentation of the most recent :meth:`search` (telemetry
        #: probe: lets a tracer report backup-path activations without
        #: re-running the search).
        self.last_outcome: Optional[SearchOutcome] = None
        for level in self._levels:
            for address in range(level.size):
                level.poke(address, 0)

    # ------------------------------------------------------------------
    # basic properties

    @property
    def marker_count(self) -> int:
        """Number of distinct tag values currently marked."""
        return self._count

    @property
    def is_empty(self) -> bool:
        """True when no markers are stored (initialization mode trigger)."""
        return self._count == 0

    def level_stats(self, level: int) -> AccessStats:
        """Access counters of one level's memory."""
        return self._levels[level].stats

    def total_stats(self) -> AccessStats:
        """Summed access counters across all levels."""
        combined = AccessStats()
        for level in self._levels:
            combined.reads += level.stats.reads
            combined.writes += level.stats.writes
        return combined

    # ------------------------------------------------------------------
    # marker maintenance

    def contains(self, value: int) -> bool:
        """Whether ``value`` is marked (reads one node per level)."""
        self.fmt.check_value(value)
        prefix = 0
        b = self.fmt.branching_factor
        for level, literal in enumerate(self.fmt.literals(value)):
            node = self._levels[level].read(prefix)
            if not node >> literal & 1:
                return False
            prefix = prefix * b + literal
        return True

    def insert_marker(self, value: int) -> bool:
        """Mark ``value`` as present.

        Returns True if the marker was new, False if it already existed
        (duplicate tag values share one marker; the translation table and
        linked list handle the duplicates, Fig. 11).  Only nodes whose bit
        is actually clear are written — in the Fig. 4 walkthrough a single
        node update suffices.
        """
        self.fmt.check_value(value)
        prefix = 0
        b = self.fmt.branching_factor
        new_marker = False
        for level, literal in enumerate(self.fmt.literals(value)):
            memory = self._levels[level]
            node = memory.read(prefix)
            if not node >> literal & 1:
                memory.write(prefix, node | (1 << literal))
                new_marker = True
            prefix = prefix * b + literal
        if new_marker:
            self._count += 1
        return new_marker

    def insert_markers(self, values) -> int:
        """Mark many values, amortizing node fetches across the batch.

        The node words along the previous value's path stay latched in
        registers, so a value sharing a path prefix with its predecessor
        re-reads only the levels below the first differing literal — the
        hardware analogue of keeping the last search path as a
        node-register cache.  Sorted (or monotone-run) inputs maximize
        prefix sharing; correctness holds for any order.  Access
        accounting is flushed to each level's stats once per batch.
        Returns the number of new distinct markers.
        """
        b = self.fmt.branching_factor
        depth = self.fmt.levels
        reads = [0] * depth
        writes = [0] * depth
        cells = [level._cells for level in self._levels]
        cached_literals: List[int] = []
        cached_prefixes: List[int] = []
        cached_nodes: List[int] = []
        added = 0
        for value in values:
            literals = self.fmt.literals(value)
            shared = 0
            while (
                shared < len(cached_literals)
                and cached_literals[shared] == literals[shared]
            ):
                shared += 1
            if shared == depth:
                continue  # duplicate of the previous value: bits all set
            new_marker = False
            prefix = cached_prefixes[shared] if shared < len(cached_prefixes) else 0
            del cached_literals[shared:]
            del cached_prefixes[shared:]
            for level in range(shared, depth):
                literal = literals[level]
                if level == shared and level < len(cached_nodes):
                    # Same node address as the cached path: reuse the
                    # latched word instead of re-reading it.
                    node = cached_nodes[level]
                else:
                    node = cells[level][prefix] or 0
                    reads[level] += 1
                if not node >> literal & 1:
                    node |= 1 << literal
                    cells[level][prefix] = node
                    writes[level] += 1
                    new_marker = True
                if level < len(cached_nodes):
                    cached_nodes[level] = node
                else:
                    cached_nodes.append(node)
                cached_literals.append(literal)
                cached_prefixes.append(prefix)
                prefix = prefix * b + literal
            del cached_nodes[depth:]
            if new_marker:
                added += 1
        for level in range(depth):
            if reads[level] or writes[level]:
                self._levels[level].stats.record_bulk(
                    reads=reads[level], writes=writes[level]
                )
        self._count += added
        return added

    def insert_marker_fast(self, value: int) -> bool:
        """Turbo variant of :meth:`insert_marker`: same state transition,
        same per-level accounting (one read per level, one write per
        newly set bit), minus the memory-object indirection.  The node
        words are touched through the raw cell arrays and the access
        charges land directly on each level's :class:`AccessStats`.
        """
        fmt = self.fmt
        if not (isinstance(value, int) and 0 <= value <= self._turbo_max):
            fmt.check_value(value)  # raises the canonical error
        k = fmt.literal_bits
        b = 1 << k
        lit_mask = b - 1
        walk = self._turbo_walk
        shift = self._turbo_shift0
        prefix = 0
        new_marker = False
        for cells, stats in walk:
            literal = (value >> shift) & lit_mask
            shift -= k
            node = cells[prefix] or 0
            stats.reads += 1
            if not node >> literal & 1:
                cells[prefix] = node | (1 << literal)
                stats.writes += 1
                new_marker = True
            prefix = prefix * b + literal
        if new_marker:
            self._count += 1
        return new_marker

    def remove_marker(self, value: int) -> bool:
        """Unmark ``value``; prunes now-empty ancestors bottom-up.

        The downward verify pass latches each level's node word in a
        path register, so the upward clear phase is write-only: one read
        plus at most one write per level, never a re-read.  (Each word
        on the path is read exactly once, before any word is modified,
        and clearing a bit at level ``d`` only changes level ``d``'s
        word — the latched parents stay valid.)

        Returns True if a marker was removed, False if ``value`` was not
        marked.
        """
        self.fmt.check_value(value)
        b = self.fmt.branching_factor
        literals = self.fmt.literals(value)
        # Collect the path (and verify presence) top-down first.
        prefix = 0
        path: List[Tuple[int, int, int, int]] = []
        for level, literal in enumerate(literals):
            node = self._levels[level].read(prefix)
            if not node >> literal & 1:
                return False
            path.append((level, prefix, literal, node))
            prefix = prefix * b + literal
        # Clear bottom-up, stopping once a node stays non-empty.
        for level, node_prefix, literal, node in reversed(path):
            node &= ~(1 << literal)
            self._levels[level].write(node_prefix, node)
            if node != 0:
                break
        self._count -= 1
        return True

    def clear_all(self) -> None:
        """Global marker reset (the paper's initialization mode).

        When the scheduler drains completely the circuit re-enters
        initialization mode (Section III-A); stale markers left by
        deferred deletion are flushed with a parallel reset line, modeled
        as one root write plus direct zeroing of the deeper levels.
        """
        self._levels[0].write(0, 0)
        for level in self._levels[1:]:
            for address in range(level.size):
                level.poke(address, 0)
        self._count = 0

    def clear_root_section(self, root_literal: int) -> int:
        """Bulk-delete one sixteenth of the tag space (Fig. 6).

        When the wrapping WFQ tag space vacates the range behind the
        current minimum, the corresponding root bit is cleared and "all
        child nodes stemming from this bit are isolated and deleted at the
        same time".  The hardware performs the subtree reset as a parallel
        section clear, so only the root update is accounted as a memory
        access; descendant words are zeroed directly.

        Returns the number of distinct marker values deleted.
        """
        b = self.fmt.branching_factor
        if not 0 <= root_literal < b:
            raise ConfigurationError(
                f"root literal {root_literal} outside [0, {b})"
            )
        root_memory = self._levels[0]
        root = root_memory.read(0)
        if not root >> root_literal & 1:
            return 0
        removed = self._count_section(root_literal)
        root_memory.write(0, root & ~(1 << root_literal))
        for level in range(1, self.fmt.levels):
            span = b ** (level - 1)
            start = root_literal * span
            memory = self._levels[level]
            for address in range(start, start + span):
                memory.poke(address, 0)
        self._count -= removed
        return removed

    def _count_section(self, root_literal: int) -> int:
        """Distinct marked values under one root literal (no accounting)."""
        if self.fmt.levels == 1:
            return 1  # presence already checked by the caller
        return self._popcount_subtree(level=1, prefix=root_literal)

    def _popcount_subtree(self, level: int, prefix: int) -> int:
        node = self._levels[level].peek(prefix)
        if node is None:
            node = 0
        if level == self.fmt.levels - 1:
            return bin(node).count("1")
        b = self.fmt.branching_factor
        total = 0
        for literal in range(b):
            if node >> literal & 1:
                total += self._popcount_subtree(level + 1, prefix * b + literal)
        return total

    # ------------------------------------------------------------------
    # the closest-match search (Figs. 4 and 5)

    def closest_at_most(self, key: int) -> Optional[int]:
        """Largest marked value <= ``key``, or None if none exists."""
        return self.search(key).result

    def search(self, key: int) -> SearchOutcome:
        """Run the full primary+backup search, with instrumentation."""
        self.fmt.check_value(key)
        outcome = SearchOutcome(key=key, result=None)
        self.last_outcome = outcome
        b = self.fmt.branching_factor
        literals = self.fmt.literals(key)
        backups: List[Tuple[int, int, int]] = []  # (level, prefix, bit)
        prefix = 0
        exact = True
        for level, target in enumerate(literals):
            node = self._levels[level].read(prefix)
            outcome.sequential_node_reads += 1
            if exact:
                match = self.matchers[level].search(node, target)
                if match.primary is None:
                    # Primary search failed (Fig. 5 point A): take the
                    # deepest backup recorded so far.
                    outcome.fail_level = level
                    outcome.used_backup = True
                    outcome.result = self._follow_backup(backups, outcome)
                    return outcome
                if match.backup is not None:
                    backups.append((level, prefix, match.backup))
                if match.primary == target:
                    outcome.path_literals.append(target)
                    prefix = prefix * b + target
                else:
                    # Non-exact: deeper levels follow their maxima.
                    exact = False
                    outcome.path_literals.append(match.primary)
                    prefix = prefix * b + match.primary
            else:
                top = highest_set_bit(node, b)
                if top is None:
                    raise TreeInvariantError(
                        f"empty node at level {level}, prefix {prefix:#x} "
                        "below a set marker bit"
                    )
                outcome.path_literals.append(top)
                prefix = prefix * b + top
        outcome.result = self.fmt.combine(outcome.path_literals)
        outcome.exact = outcome.result == key
        return outcome

    def search_fast(self, key: int) -> SearchOutcome:
        """Turbo variant of :meth:`search`: identical outcome, identical
        per-level access accounting, computed with machine-word bit
        tricks instead of the structural matcher circuits.

        Every visited level is charged exactly one sequential read (the
        hardware always performs the fixed-time node fetch); a primary
        failure charges the backup descent's parallel reads level by
        level, just like :meth:`_follow_backup`.  The per-node
        primary/backup encode is the
        :meth:`~repro.core.matching.base.MatchingCircuit.search_fast`
        kernel inlined, so a full search does no matcher-object calls
        and no :class:`MatchResult` allocations at all.
        """
        fmt = self.fmt
        if not (isinstance(key, int) and 0 <= key <= self._turbo_max):
            fmt.check_value(key)  # raises the canonical error
        outcome = SearchOutcome(key=key, result=None)
        self.last_outcome = outcome
        k = fmt.literal_bits
        b = 1 << k
        levels = self._levels
        depth = len(levels)
        lit_mask = b - 1
        shift = (depth - 1) * k
        path = outcome.path_literals
        # Deepest backup recorded so far, as scalars (the gate model
        # keeps a list; only the last entry is ever followed).
        backup_level = -1
        backup_prefix = 0
        backup_bit = 0
        prefix = 0
        exact = True
        sequential = 0
        for level in range(depth):
            memory = levels[level]
            node = memory._cells[prefix] or 0
            memory.stats.reads += 1
            sequential += 1
            if exact:
                target = (key >> shift) & lit_mask
                shift -= k
                masked = node & ((2 << target) - 1)
                if not masked:
                    # Primary search failed (Fig. 5 point A): take the
                    # deepest backup recorded so far.
                    outcome.sequential_node_reads = sequential
                    outcome.fail_level = level
                    outcome.used_backup = True
                    if backup_level < 0:
                        # No smaller value exists anywhere: under WFQ
                        # this only happens when the tree is empty
                        # (initialization mode).
                        return outcome
                    new_path = path[:backup_level]
                    new_path.append(backup_bit)
                    bprefix = backup_prefix * b + backup_bit
                    for deeper in range(backup_level + 1, depth):
                        deep_memory = levels[deeper]
                        deep_node = deep_memory._cells[bprefix] or 0
                        deep_memory.stats.reads += 1
                        outcome.parallel_node_reads += 1
                        if not deep_node:
                            raise TreeInvariantError(
                                f"empty node on backup path at level {deeper}"
                            )
                        top = deep_node.bit_length() - 1
                        new_path.append(top)
                        bprefix = bprefix * b + top
                    outcome.path_literals = new_path
                    # After a full descent the running prefix *is* the
                    # reassembled tag (prefix accumulates literal-by-
                    # literal in base b), so no combine() call is needed.
                    outcome.result = bprefix
                    return outcome
                primary = masked.bit_length() - 1
                below = masked ^ (1 << primary)
                if below:
                    backup_level = level
                    backup_prefix = prefix
                    backup_bit = below.bit_length() - 1
                path.append(primary)
                if primary != target:
                    # Non-exact: deeper levels follow their maxima.
                    exact = False
                prefix = prefix * b + primary
            else:
                if not node:
                    raise TreeInvariantError(
                        f"empty node at level {level}, prefix {prefix:#x} "
                        "below a set marker bit"
                    )
                top = node.bit_length() - 1
                path.append(top)
                prefix = prefix * b + top
        outcome.sequential_node_reads = sequential
        outcome.result = prefix
        outcome.exact = prefix == key
        return outcome

    def closest_fast(self, key: int) -> Optional[int]:
        """Result-only :meth:`search_fast`: the closest marked value at
        or below ``key`` (or ``None``), with the identical per-level
        read accounting, but no :class:`SearchOutcome` and no path-list
        allocation.  The untraced turbo insert path uses this — nothing
        consumes :attr:`last_outcome` between untraced operations, so
        building it per insert is pure overhead (it is cleared here so a
        stale probe can never be misread).
        """
        fmt = self.fmt
        if not (isinstance(key, int) and 0 <= key <= self._turbo_max):
            fmt.check_value(key)  # raises the canonical error
        self.last_outcome = None
        k = fmt.literal_bits
        b = 1 << k
        walk = self._turbo_walk
        depth = self._turbo_depth
        lit_mask = b - 1
        shift = self._turbo_shift0
        backup_level = -1
        backup_prefix = 0
        backup_bit = 0
        prefix = 0
        level = 0
        # Exact phase: follow the key's literals while they match.
        for cells, stats in walk:
            node = cells[prefix] or 0
            stats.reads += 1
            target = (key >> shift) & lit_mask
            shift -= k
            masked = node & ((2 << target) - 1)
            if not masked:
                if backup_level < 0:
                    return None
                bprefix = backup_prefix * b + backup_bit
                for deeper in range(backup_level + 1, depth):
                    deep_cells, deep_stats = walk[deeper]
                    deep_node = deep_cells[bprefix] or 0
                    deep_stats.reads += 1
                    if not deep_node:
                        raise TreeInvariantError(
                            f"empty node on backup path at level {deeper}"
                        )
                    bprefix = bprefix * b + (deep_node.bit_length() - 1)
                return bprefix
            primary = masked.bit_length() - 1
            below = masked ^ (1 << primary)
            if below:
                backup_level = level
                backup_prefix = prefix
                backup_bit = below.bit_length() - 1
            prefix = prefix * b + primary
            level += 1
            if primary != target:
                break
        # Non-exact tail: deeper levels follow their maximum set bits.
        for deeper in range(level, depth):
            cells, stats = walk[deeper]
            node = cells[prefix] or 0
            stats.reads += 1
            if not node:
                raise TreeInvariantError(
                    f"empty node at level {deeper}, prefix {prefix:#x} "
                    "below a set marker bit"
                )
            prefix = prefix * b + (node.bit_length() - 1)
        return prefix

    def _follow_backup(
        self,
        backups: List[Tuple[int, int, int]],
        outcome: SearchOutcome,
    ) -> Optional[int]:
        """Descend from the deepest backup, following maximum set bits.

        The backup search runs in parallel with the primary search in the
        hardware (Section III-A), so its node fetches are accounted as
        parallel reads: they cost memory bandwidth but do not extend the
        fixed search latency.
        """
        if not backups:
            # No smaller value exists anywhere: under WFQ this only
            # happens when the tree is empty (initialization mode).
            return None
        level, prefix, bit = backups[-1]
        b = self.fmt.branching_factor
        path = outcome.path_literals[:level] + [bit]
        prefix = prefix * b + bit
        for deeper in range(level + 1, self.fmt.levels):
            node = self._levels[deeper].read(prefix)
            outcome.parallel_node_reads += 1
            top = highest_set_bit(node, b)
            if top is None:
                raise TreeInvariantError(
                    f"empty node on backup path at level {deeper}"
                )
            path.append(top)
            prefix = prefix * b + top
        outcome.path_literals = path
        return self.fmt.combine(path)

    # ------------------------------------------------------------------
    # checkpoint / restore

    def to_state(self) -> dict:
        """Exact serializable snapshot: every node word plus accounting."""
        return {
            "kind": "multi_bit_tree",
            "levels": self.fmt.levels,
            "literal_bits": self.fmt.literal_bits,
            "nodes": [list(level._cells) for level in self._levels],
            "count": self._count,
            "stats": [level.stats.to_dict() for level in self._levels],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this instance."""
        if state.get("kind") != "multi_bit_tree":
            raise ConfigurationError(
                f"not a tree snapshot: kind={state.get('kind')!r}"
            )
        if (
            state["levels"] != self.fmt.levels
            or state["literal_bits"] != self.fmt.literal_bits
        ):
            raise ConfigurationError(
                f"snapshot format L={state['levels']}/k="
                f"{state['literal_bits']} != L={self.fmt.levels}/k="
                f"{self.fmt.literal_bits}"
            )
        for level, nodes in zip(self._levels, state["nodes"]):
            if len(nodes) != level.size:
                raise ConfigurationError(
                    f"{level.name}: snapshot holds {len(nodes)} nodes, "
                    f"memory holds {level.size}"
                )
            level._cells[:] = nodes
        self._count = state["count"]
        for level, stats in zip(self._levels, state["stats"]):
            level.stats.reads = stats["reads"]
            level.stats.writes = stats["writes"]
        self.last_outcome = None

    @classmethod
    def from_state(
        cls, state: dict, *, matcher_factory=DEFAULT_MATCHER
    ) -> "MultiBitTree":
        """Reconstruct a tree from a :meth:`to_state` snapshot."""
        fmt = WordFormat(
            levels=state["levels"], literal_bits=state["literal_bits"]
        )
        tree = cls(fmt, matcher_factory=matcher_factory)
        tree.load_state(state)
        return tree

    # ------------------------------------------------------------------
    # whole-tree queries (used by experiments and invariant checks)

    def min_marked(self) -> Optional[int]:
        """Smallest marked value, or None when empty (follows min bits)."""
        return self._extreme(smallest=True)

    def max_marked(self) -> Optional[int]:
        """Largest marked value, or None when empty (follows max bits)."""
        return self._extreme(smallest=False)

    def _extreme(self, *, smallest: bool) -> Optional[int]:
        if self.is_empty:
            return None
        b = self.fmt.branching_factor
        prefix = 0
        path = []
        for level in range(self.fmt.levels):
            node = self._levels[level].read(prefix)
            if node == 0:
                raise TreeInvariantError(
                    f"empty node at level {level} in a non-empty tree"
                )
            if smallest:
                literal = (node & -node).bit_length() - 1
            else:
                literal = node.bit_length() - 1
            path.append(literal)
            prefix = prefix * b + literal
        return self.fmt.combine(path)

    def marked_values(self) -> List[int]:
        """All marked values in ascending order (debug/verification walk)."""
        values: List[int] = []
        self._walk(0, 0, values)
        return values

    def _walk(self, level: int, prefix: int, out: List[int]) -> None:
        node = self._levels[level].peek(prefix)
        if not node:
            return
        b = self.fmt.branching_factor
        for literal in range(b):
            if not node >> literal & 1:
                continue
            if level == self.fmt.levels - 1:
                out.append(prefix * b + literal)
            else:
                self._walk(level + 1, prefix * b + literal, out)

    def check_invariants(self) -> None:
        """Verify structural consistency; raises TreeInvariantError."""
        values = self.marked_values()
        if len(values) != self._count:
            raise TreeInvariantError(
                f"marker count {self._count} != walked count {len(values)}"
            )
        b = self.fmt.branching_factor
        for level in range(self.fmt.levels - 1):
            memory = self._levels[level]
            child_memory = self._levels[level + 1]
            for prefix in range(memory.size):
                node = memory.peek(prefix) or 0
                for literal in range(b):
                    child = child_memory.peek(prefix * b + literal) or 0
                    bit_set = bool(node >> literal & 1)
                    if bit_set and child == 0:
                        raise TreeInvariantError(
                            f"set bit over empty child: level {level}, "
                            f"prefix {prefix}, literal {literal}"
                        )
                    if not bit_set and child != 0:
                        raise TreeInvariantError(
                            f"clear bit over non-empty child: level {level}, "
                            f"prefix {prefix}, literal {literal}"
                        )
